"""Tests for the allocation algorithms."""

from __future__ import annotations

import pytest

from repro.allocators import (
    BestFit,
    FirstFit,
    FirstFitPowerSaving,
    MinIncrementalEnergy,
    PowerAwareFirstFit,
    RandomFit,
    RoundRobin,
    WorstFit,
)
from repro.allocators.registry import allocator_names, make_allocator
from repro.energy.cost import allocation_cost
from repro.exceptions import AllocationError, ValidationError
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.workload.generator import generate_vms

from conftest import make_vm

SMALL = ServerSpec("small", cpu_capacity=4.0, memory_capacity=4.0,
                   p_idle=20.0, p_peak=40.0, transition_time=1.0)
BIG = ServerSpec("big", cpu_capacity=16.0, memory_capacity=16.0,
                 p_idle=80.0, p_peak=160.0, transition_time=1.0)

ALL_ALGOS = sorted(allocator_names())


@pytest.fixture(params=ALL_ALGOS)
def any_allocator(request):
    return make_allocator(request.param, seed=7)


class TestCommonBehaviour:
    def test_places_every_vm(self, any_allocator):
        vms = generate_vms(40, mean_interarrival=1.0, seed=3)
        cluster = Cluster.paper_all_types(20)
        allocation = any_allocator.allocate(vms, cluster)
        allocation.validate(vms=vms)
        assert len(allocation) == 40

    def test_deterministic_given_seed(self, any_allocator):
        vms = generate_vms(30, mean_interarrival=1.0, seed=5)
        cluster = Cluster.paper_all_types(15)
        name = any_allocator.name
        first = make_allocator(name, seed=11).allocate(vms, cluster)
        second = make_allocator(name, seed=11).allocate(vms, cluster)
        assert {vm.vm_id: s for vm, s in first.items()} == \
            {vm.vm_id: s for vm, s in second.items()}

    def test_raises_when_nothing_fits(self, any_allocator):
        cluster = Cluster.homogeneous(SMALL, 2)
        huge = make_vm(0, 1, 2, cpu=100.0)
        with pytest.raises(AllocationError) as err:
            any_allocator.allocate([huge], cluster)
        assert err.value.vm_id == 0

    def test_respects_capacity_over_time(self, any_allocator):
        # Heavy overlap forces spreading; the result must stay feasible.
        vms = [make_vm(i, 1, 10, cpu=3.0, memory=3.0) for i in range(10)]
        cluster = Cluster.homogeneous(SMALL, 10)
        allocation = any_allocator.allocate(vms, cluster)
        allocation.validate(vms=vms)

    def test_empty_workload(self, any_allocator):
        cluster = Cluster.homogeneous(SMALL, 1)
        allocation = any_allocator.allocate([], cluster)
        assert len(allocation) == 0


class TestMinIncrementalEnergy:
    def test_consolidates_overlapping_load(self):
        # Two simultaneous small VMs: one active server is cheaper.
        vms = [make_vm(0, 1, 5, cpu=1.0), make_vm(1, 1, 5, cpu=1.0)]
        cluster = Cluster.homogeneous(BIG, 2)
        allocation = MinIncrementalEnergy().allocate(vms, cluster)
        assert len(allocation.used_servers()) == 1

    def test_prefers_cheaper_server_type(self):
        # An isolated small VM costs less on the small server.
        vms = [make_vm(0, 1, 5, cpu=1.0)]
        cluster = Cluster.from_specs([BIG, SMALL])
        allocation = MinIncrementalEnergy().allocate(vms, cluster)
        assert allocation.server_of(vms[0]) == 1

    def test_prefers_low_transition_cost_when_all_asleep(self):
        # Same power curves, different transition times (paper Sec. III
        # reason 3).
        slow = ServerSpec("slow", 8.0, 8.0, 40.0, 80.0, transition_time=5.0)
        fast = ServerSpec("fast", 8.0, 8.0, 40.0, 80.0, transition_time=0.5)
        cluster = Cluster.from_specs([slow, fast])
        vm = make_vm(0, 1, 3)
        allocation = MinIncrementalEnergy().allocate([vm], cluster)
        assert allocation.server_of(vm) == 1

    def test_back_to_back_reuses_active_server(self):
        # Second VM starts right after the first ends: extending the busy
        # segment (no idle, no wake) beats waking the other server.
        vms = [make_vm(0, 1, 3, cpu=1.0), make_vm(1, 4, 6, cpu=1.0)]
        cluster = Cluster.homogeneous(SMALL, 2)
        allocation = MinIncrementalEnergy().allocate(vms, cluster)
        assert allocation.server_of(vms[0]) == allocation.server_of(vms[1])

    def test_tie_break_is_lowest_id(self):
        vms = [make_vm(0, 1, 2)]
        cluster = Cluster.homogeneous(SMALL, 3)
        allocation = MinIncrementalEnergy().allocate(vms, cluster)
        assert allocation.server_of(vms[0]) == 0

    def test_beats_ffps_at_light_load(self):
        # The paper's headline claim, averaged over seeds.
        reductions = []
        for seed in range(6):
            vms = generate_vms(80, mean_interarrival=8.0, seed=seed)
            cluster = Cluster.paper_all_types(40)
            ours = allocation_cost(
                MinIncrementalEnergy().allocate(vms, cluster)).total
            ffps = allocation_cost(
                FirstFitPowerSaving(seed=seed).allocate(vms, cluster)).total
            reductions.append((ffps - ours) / ffps)
        assert sum(reductions) / len(reductions) > 0.05


class TestFFPS:
    def test_uses_one_random_order(self):
        # All VMs fit the first server in the (shuffled) order, so a
        # sequential workload must land on a single server.
        vms = [make_vm(i, 1 + 3 * i, 2 + 3 * i, cpu=1.0) for i in range(5)]
        cluster = Cluster.homogeneous(SMALL, 5)
        allocation = FirstFitPowerSaving(seed=0).allocate(vms, cluster)
        assert len(allocation.used_servers()) == 1

    def test_different_seeds_can_differ(self):
        vms = [make_vm(0, 1, 2)]
        cluster = Cluster.homogeneous(SMALL, 50)
        chosen = {
            FirstFitPowerSaving(seed=s).allocate(vms, cluster)
            .server_of(vms[0])
            for s in range(20)
        }
        assert len(chosen) > 1  # the order really is random

    def test_overflows_to_next_server(self):
        vms = [make_vm(i, 1, 5, cpu=4.0) for i in range(3)]
        cluster = Cluster.homogeneous(SMALL, 3)
        allocation = FirstFitPowerSaving(seed=1).allocate(vms, cluster)
        assert len(allocation.used_servers()) == 3


class TestFirstFit:
    def test_scans_in_id_order(self):
        vms = [make_vm(0, 1, 2), make_vm(1, 1, 2)]
        cluster = Cluster.homogeneous(SMALL, 4)
        allocation = FirstFit().allocate(vms, cluster)
        assert allocation.server_of(vms[0]) == 0
        assert allocation.server_of(vms[1]) == 0

    def test_skips_full_server(self):
        vms = [make_vm(0, 1, 5, cpu=4.0), make_vm(1, 1, 5, cpu=4.0)]
        cluster = Cluster.homogeneous(SMALL, 2)
        allocation = FirstFit().allocate(vms, cluster)
        assert allocation.server_of(vms[1]) == 1


class TestBestWorstFit:
    def test_best_fit_picks_tightest(self):
        # small leaves less spare for a 3-cu VM than big.
        vms = [make_vm(0, 1, 2, cpu=3.0, memory=3.0)]
        cluster = Cluster.from_specs([BIG, SMALL])
        allocation = BestFit().allocate(vms, cluster)
        assert allocation.server_of(vms[0]) == 1

    def test_worst_fit_picks_loosest(self):
        vms = [make_vm(0, 1, 2, cpu=3.0, memory=3.0)]
        cluster = Cluster.from_specs([BIG, SMALL])
        allocation = WorstFit().allocate(vms, cluster)
        assert allocation.server_of(vms[0]) == 0

    def test_best_fit_considers_existing_load(self):
        cluster = Cluster.homogeneous(BIG, 2)
        first = make_vm(0, 1, 5, cpu=8.0)
        second = make_vm(1, 2, 4, cpu=2.0)
        allocation = BestFit().allocate([first, second], cluster)
        # Server 0 already half full -> tighter for the second VM.
        assert allocation.server_of(second) == 0


class TestRoundRobin:
    def test_cycles_servers(self):
        vms = [make_vm(i, 1, 2, cpu=1.0) for i in range(4)]
        cluster = Cluster.homogeneous(SMALL, 4)
        allocation = RoundRobin().allocate(vms, cluster)
        assert sorted(allocation.server_of(vm) for vm in vms) == [0, 1, 2, 3]

    def test_skips_infeasible(self):
        vms = [make_vm(0, 1, 5, cpu=4.0), make_vm(1, 1, 5, cpu=4.0),
               make_vm(2, 1, 5, cpu=4.0)]
        cluster = Cluster.homogeneous(SMALL, 2)
        with pytest.raises(AllocationError):
            RoundRobin().allocate(vms, cluster)


class TestPowerAware:
    def test_prefers_efficient_watts_per_cu(self):
        efficient = ServerSpec("eff", 8.0, 8.0, 40.0, 64.0)    # 8 W/cu
        wasteful = ServerSpec("waste", 8.0, 8.0, 60.0, 96.0)   # 12 W/cu
        cluster = Cluster.from_specs([wasteful, efficient])
        vm = make_vm(0, 1, 2)
        allocation = PowerAwareFirstFit().allocate([vm], cluster)
        assert allocation.server_of(vm) == 1


class TestRandomFit:
    def test_spreads_across_feasible(self):
        vms = [make_vm(i, 1, 2, cpu=1.0) for i in range(30)]
        cluster = Cluster.homogeneous(BIG, 10)
        allocation = RandomFit(seed=0).allocate(vms, cluster)
        assert len(allocation.used_servers()) > 3


class TestRegistry:
    def test_contains_paper_algorithms(self):
        assert "min-energy" in allocator_names()
        assert "ffps" in allocator_names()

    def test_make_allocator_unknown_raises(self):
        with pytest.raises(ValidationError, match="min-energy"):
            make_allocator("simulated-annealing")

    def test_names_match_instances(self):
        for name in allocator_names():
            assert make_allocator(name).name == name
