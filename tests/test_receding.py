"""Tests for the receding-horizon exact solver."""

from __future__ import annotations

import pytest

from repro.allocators import make_allocator
from repro.energy.cost import allocation_cost
from repro.exceptions import ValidationError
from repro.ilp import RecedingHorizonSolver, solve_ilp
from repro.model.cluster import Cluster
from repro.model.catalog import STANDARD_VM_TYPES
from repro.workload.generator import PoissonWorkload, generate_vms


def small_instance(seed: int, count: int = 10):
    wl = PoissonWorkload(mean_interarrival=2.0, mean_duration=5.0,
                         vm_types=STANDARD_VM_TYPES)
    return wl.generate(count, rng=seed), Cluster.paper_all_types(4)


class TestValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ValidationError):
            RecedingHorizonSolver(window_length=0)

    def test_rejects_empty_workload(self):
        cluster = Cluster.paper_all_types(2)
        with pytest.raises(ValidationError):
            RecedingHorizonSolver().allocate([], cluster)


class TestOptimality:
    def test_giant_window_equals_exact(self):
        vms, cluster = small_instance(seed=0)
        exact = solve_ilp(vms, cluster)
        receding = RecedingHorizonSolver(
            window_length=100_000).allocate(vms, cluster)
        assert receding.windows == 1
        assert receding.total_energy == pytest.approx(exact.objective,
                                                      rel=1e-9)

    @pytest.mark.parametrize("window", [5, 10, 20])
    def test_never_below_optimum(self, window):
        vms, cluster = small_instance(seed=1)
        exact = solve_ilp(vms, cluster)
        receding = RecedingHorizonSolver(
            window_length=window).allocate(vms, cluster)
        assert receding.total_energy >= exact.objective - 1e-6

    def test_windows_counted(self):
        vms, cluster = small_instance(seed=2, count=12)
        span = max(v.start for v in vms) - min(v.start for v in vms)
        window = max(2, span // 3)
        result = RecedingHorizonSolver(
            window_length=window).allocate(vms, cluster)
        assert result.windows >= 2


class TestPlanQuality:
    def test_valid_allocation(self):
        vms, cluster = small_instance(seed=3, count=15)
        result = RecedingHorizonSolver(
            window_length=10).allocate(vms, cluster)
        result.allocation.validate(vms=vms)
        assert len(result.allocation) == 15

    def test_energy_matches_analytic_accounting(self):
        vms, cluster = small_instance(seed=4)
        result = RecedingHorizonSolver(
            window_length=8).allocate(vms, cluster)
        assert result.total_energy == pytest.approx(
            allocation_cost(result.allocation).total, rel=1e-12)

    def test_competitive_with_heuristic_on_average(self):
        wins = 0
        total = 4
        for seed in range(total):
            vms, cluster = small_instance(seed=seed, count=12)
            receding = RecedingHorizonSolver(
                window_length=15).allocate(vms, cluster)
            heuristic = allocation_cost(
                make_allocator("min-energy").allocate(vms, cluster)).total
            if receding.total_energy <= heuristic + 1e-6:
                wins += 1
        assert wins >= total - 1  # allowed one stitching-artefact loss

    def test_mixed_vm_types_with_full_fleet(self):
        vms = generate_vms(12, mean_interarrival=2.0, seed=5)
        cluster = Cluster.paper_all_types(5)
        result = RecedingHorizonSolver(
            window_length=10).allocate(vms, cluster)
        result.allocation.validate(vms=vms)
