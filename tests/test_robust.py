"""Γ-robust placement: config surface, ledger, probes, wire, replay.

The contracts pinned here:

* :class:`RobustnessConfig` validates its budget and mode and computes
  the Bertsimas–Sim ``(drop, threshold)`` accumulators exactly;
* the extended :class:`EngineConfig` spec grammar (``gamma=``/``mode=``)
  round-trips through spec strings, records and store snapshots, and
  the dense engine rejects robustness;
* :class:`RobustSkyline` agrees with a brute-force per-time-unit oracle
  over random add/subtract histories, and the vectorized kernel path is
  a bit-exact mirror of the scalar robust probe;
* VM records round-trip the radius fields while radius-free records —
  and therefore existing journals and traces — keep their exact bytes;
* the service protocol accepts radius fields only at v3, rejecting
  v1/v2 senders loudly instead of silently planning nominal;
* the realized-demand replay harness shows Γ>0 buying a strictly lower
  overload rate than the nominal plan on an uncertain workload.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.allocators import allocator_names, make_allocator
from repro.allocators.gamma_ff import GammaFF
from repro.allocators.state import ServerState
from repro.exceptions import ServiceError, ValidationError
from repro.model.cluster import Cluster
from repro.model.intervals import TimeInterval
from repro.model.phases import DemandPhase, PhasedVM
from repro.model.server import Server, ServerSpec
from repro.model.vm import VM, VMSpec
from repro.placement import EngineConfig, FleetKernel
from repro.robust import RobustnessConfig, RobustSkyline, sweep_gamma
from repro.robust.evaluate import overload_rate, realized_overload
from repro.service.protocol import (
    PROTOCOL_VERSION,
    encode,
    parse_request,
    place_batch_request,
    place_request,
)
from repro.service.state import ClusterStateStore
from repro.workload.phased import PhasedWorkload
from repro.workload.trace import vm_from_record, vm_to_record

from conftest import make_vm

SPEC = ServerSpec("box", cpu_capacity=10.0, memory_capacity=12.0,
                  p_idle=100.0, p_peak=200.0, transition_time=2.0)
_TOL = 1e-9


def make_uncertain_vm(vm_id, start, end, cpu=2.0, memory=2.0,
                      cpu_radius=0.0, mem_radius=0.0):
    return VM(vm_id=vm_id,
              spec=VMSpec("u", cpu=cpu, memory=memory,
                          cpu_radius=cpu_radius, mem_radius=mem_radius),
              interval=TimeInterval(start, end))


class TestRobustnessConfig:
    def test_defaults_inactive(self):
        config = RobustnessConfig()
        assert config.gamma == 0 and config.mode == "gamma"
        assert not config.active

    def test_active_budgets(self):
        assert RobustnessConfig(gamma=1).active
        assert RobustnessConfig(mode="box").active
        assert not RobustnessConfig(gamma=0).active

    @pytest.mark.parametrize("bad", [-1, 1.5, "2", True])
    def test_bad_gamma_rejected(self, bad):
        with pytest.raises(ValidationError):
            RobustnessConfig(gamma=bad)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValidationError):
            RobustnessConfig(mode="budget")

    def test_accumulate_gamma(self):
        radii = (5.0, 3.0, 2.0)
        # drop = sum of the Γ-1 largest, threshold = the Γ-th largest.
        assert RobustnessConfig(gamma=1).accumulate(radii) == (0.0, 5.0)
        assert RobustnessConfig(gamma=2).accumulate(radii) == (5.0, 3.0)
        assert RobustnessConfig(gamma=3).accumulate(radii) == (8.0, 2.0)
        # Fewer residents than budget: everything drops, no threshold.
        assert RobustnessConfig(gamma=4).accumulate(radii) == (10.0, 0.0)
        assert RobustnessConfig(gamma=2).accumulate(()) == (0.0, 0.0)

    def test_accumulate_box(self):
        config = RobustnessConfig(mode="box")
        assert config.accumulate((5.0, 3.0, 2.0)) == (10.0, 0.0)
        assert config.accumulate(()) == (0.0, 0.0)


class TestEngineConfigRobustness:
    def test_spec_round_trips(self):
        for spec in ("indexed:gamma=2", "indexed:kernel=off,gamma=1",
                     "indexed:gamma=3,mode=box"):
            config = EngineConfig.parse(spec)
            assert EngineConfig.parse(config.spec) == config

    def test_parse_builds_robustness(self):
        config = EngineConfig.parse("indexed:gamma=2")
        assert config.robustness == RobustnessConfig(gamma=2)
        assert EngineConfig.parse("indexed").robustness is None

    def test_gamma_zero_is_inactive(self):
        config = EngineConfig.parse("indexed:gamma=0")
        assert config.robustness == RobustnessConfig(gamma=0)
        assert config.active_robustness is None

    def test_dense_rejects_robustness(self):
        with pytest.raises(ValidationError, match="indexed"):
            EngineConfig.parse("dense:gamma=1")
        with pytest.raises(ValidationError, match="indexed"):
            EngineConfig(engine="dense",
                         robustness=RobustnessConfig(mode="box"))

    def test_record_round_trips(self):
        config = EngineConfig.parse("indexed:gamma=2,mode=box")
        assert EngineConfig.from_record(config.to_record()) == config
        # Legacy records (no gamma/mode keys) restore radius-free.
        legacy = EngineConfig().to_record()
        assert "gamma" not in legacy
        assert EngineConfig.from_record(legacy).robustness is None


class TestVMSpecRadii:
    def test_radius_defaults_zero(self):
        spec = VMSpec("t", cpu=2.0, memory=3.0)
        assert spec.cpu_radius == 0.0 and spec.mem_radius == 0.0

    def test_vm_delegates_radii(self):
        vm = make_uncertain_vm(1, 0, 4, cpu_radius=0.5, mem_radius=0.25)
        assert vm.cpu_radius == 0.5 and vm.mem_radius == 0.25

    @pytest.mark.parametrize("kwargs", [
        dict(cpu_radius=-0.1), dict(mem_radius=-0.1),
        dict(cpu_radius=2.5), dict(mem_radius=3.5),
    ])
    def test_bad_radii_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            VMSpec("t", cpu=2.0, memory=3.0, **kwargs)


class TestRecordRoundTrip:
    def test_radius_fields_round_trip(self):
        vm = make_uncertain_vm(7, 2, 9, cpu=2.0, memory=3.0,
                               cpu_radius=0.5, mem_radius=0.75)
        back = vm_from_record(vm_to_record(vm))
        assert back.spec.cpu_radius == 0.5
        assert back.spec.mem_radius == 0.75
        assert back == vm

    def test_radius_zero_record_bytes_pinned(self):
        """Exact-demand records must keep the historic byte layout, so
        journals and snapshots written before the radius fields existed
        stay bit-identical on rewrite."""
        vm = make_vm(3, 1, 5, cpu=2.0, memory=4.0)
        line = encode({"record": vm_to_record(vm)})
        assert line == ('{"record":{"vm_id":3,"type":"t","cpu":2.0,'
                        '"memory":4.0,"start":1,"end":5}}\n')

    def test_phased_vm_keeps_radii(self):
        spec = VMSpec("p", cpu=4.0, memory=4.0, cpu_radius=1.0)
        vm = PhasedVM(vm_id=1, spec=spec, interval=TimeInterval(0, 3),
                      phases=(DemandPhase(2, 2.0, 4.0),
                              DemandPhase(2, 4.0, 4.0)))
        back = vm_from_record(vm_to_record(vm))
        assert isinstance(back, PhasedVM)
        assert back.spec.cpu_radius == 1.0
        assert back.phases == vm.phases


def oracle_probe(residents, probe, gamma_config, spec=SPEC):
    """Per-time-unit robust feasibility, straight from the definition."""
    from repro.model.phases import demand_at

    for t in range(probe.start, probe.end + 1):
        cpu_n = sum(demand_at(vm, t)[0] for vm in residents)
        mem_n = sum(demand_at(vm, t)[1] for vm in residents)
        rc = sorted((vm.cpu_radius for vm in residents
                     if vm.active_at(t) and vm.cpu_radius > 0.0),
                    reverse=True)
        rm = sorted((vm.mem_radius for vm in residents
                     if vm.active_at(t) and vm.mem_radius > 0.0),
                    reverse=True)
        dc, tc = gamma_config.accumulate(tuple(rc))
        dm, tm = gamma_config.accumulate(tuple(rm))
        pc, pm = demand_at(probe, t)
        if cpu_n + (dc + max(probe.cpu_radius, tc)) + pc \
                > spec.cpu_capacity + _TOL:
            return f"cpu:overlap@{t}"
        if mem_n + (dm + max(probe.mem_radius, tm)) + pm \
                > spec.memory_capacity + _TOL:
            return f"mem:overlap@{t}"
    return None


class TestRobustSkylineOracle:
    @pytest.mark.parametrize("gamma,mode", [(1, "gamma"), (2, "gamma"),
                                            (3, "gamma"), (0, "box")])
    def test_random_histories_match_oracle(self, gamma, mode):
        config = RobustnessConfig(gamma=gamma, mode=mode)
        rng = np.random.default_rng(gamma * 17 + (mode == "box"))
        for _ in range(30):
            engine = EngineConfig(robustness=config)
            state = ServerState(Server(0, SPEC), engine=engine)
            residents = []
            for vm_id in range(int(rng.integers(0, 7))):
                start = int(rng.integers(0, 15))
                cpu = float(rng.uniform(0.5, 3.0))
                memory = float(rng.uniform(0.5, 3.0))
                vm = make_uncertain_vm(
                    vm_id, start, start + int(rng.integers(1, 8)),
                    cpu=cpu, memory=memory,
                    cpu_radius=cpu * float(rng.choice([0.0, 0.25, 0.6])),
                    mem_radius=memory * float(rng.choice([0.0, 0.5])))
                if state.probe(vm).feasible:
                    state.place_trusted(vm)
                    residents.append(vm)
            # Remove a random resident: radii must unwind symmetrically.
            if residents and rng.random() < 0.5:
                victim = residents.pop(int(rng.integers(len(residents))))
                state.remove(victim)
            start = int(rng.integers(0, 18))
            cpu = float(rng.uniform(0.5, 4.0))
            memory = float(rng.uniform(0.5, 4.0))
            probe = make_uncertain_vm(
                999, start, start + int(rng.integers(1, 6)),
                cpu=cpu, memory=memory,
                cpu_radius=cpu * float(rng.choice([0.0, 0.3, 0.9])),
                mem_radius=memory * float(rng.choice([0.0, 0.5])))
            result = state.probe(probe)
            expected = oracle_probe(residents, probe, config)
            if probe.cpu + probe.cpu_radius > SPEC.cpu_capacity:
                expected = "cpu:capacity"
            elif probe.memory + probe.mem_radius > SPEC.memory_capacity:
                expected = "mem:capacity"
            assert result.reason == expected
            assert result.feasible == (expected is None)

    def test_static_check_includes_own_radius(self):
        state = ServerState(
            Server(0, SPEC),
            engine=EngineConfig(robustness=RobustnessConfig(gamma=1)))
        # Nominal fits, nominal + own radius cannot ever fit.
        probe = make_uncertain_vm(1, 0, 3, cpu=8.0, cpu_radius=3.0)
        result = state.probe(probe)
        assert not result.feasible and result.reason == "cpu:capacity"

    def test_subtract_unknown_radius_raises(self):
        skyline = RobustSkyline(RobustnessConfig(gamma=1))
        skyline.add_radius(0, 4, 1.0, 0.0)
        with pytest.raises(ValueError):
            skyline.subtract_radius(0, 4, 2.0, 0.0)


class TestKernelRobustParity:
    def _fleet(self, gamma, rng):
        engine = EngineConfig(robustness=RobustnessConfig(gamma=gamma))
        states = []
        for i in range(5):
            state = ServerState(Server(i, SPEC), engine=engine)
            for vm_id in range(int(rng.integers(0, 6))):
                start = int(rng.integers(0, 12))
                cpu = float(rng.uniform(0.5, 2.5))
                memory = float(rng.uniform(0.5, 2.5))
                vm = make_uncertain_vm(
                    100 * i + vm_id, start, start + int(rng.integers(1, 7)),
                    cpu=cpu, memory=memory,
                    cpu_radius=cpu * float(rng.choice([0.0, 0.25, 0.7])),
                    mem_radius=memory * float(rng.choice([0.0, 0.4])))
                if state.probe(vm).feasible:
                    state.place_trusted(vm)
            states.append(state)
        return states

    @pytest.mark.parametrize("gamma", [1, 2, 4])
    def test_probe_fleet_matches_scalar(self, gamma):
        rng = np.random.default_rng(gamma)
        states = self._fleet(gamma, rng)
        kernel = FleetKernel(states)
        for trial in range(20):
            start = int(rng.integers(0, 15))
            cpu = float(rng.uniform(0.5, 4.0))
            memory = float(rng.uniform(0.5, 4.0))
            probe = make_uncertain_vm(
                9000 + trial, start, start + int(rng.integers(1, 6)),
                cpu=cpu, memory=memory,
                cpu_radius=cpu * float(rng.choice([0.0, 0.3, 0.8])),
                mem_radius=memory * float(rng.choice([0.0, 0.5])))
            batch = kernel.probe_fleet(probe)
            for i, state in enumerate(states):
                scalar = state.probe(probe)
                view = batch[i]
                assert view.feasible == scalar.feasible, (gamma, trial, i)
                assert view.reason == scalar.reason, (gamma, trial, i)
                assert view.peak_cpu == scalar.peak_cpu
                assert view.peak_mem == scalar.peak_mem
                assert view.headroom_cpu == scalar.headroom_cpu
                assert view.headroom_mem == scalar.headroom_mem

    def test_phased_probe_matches_scalar(self):
        rng = np.random.default_rng(11)
        states = self._fleet(2, rng)
        kernel = FleetKernel(states)
        spec = VMSpec("p", cpu=3.0, memory=3.0, cpu_radius=1.0,
                      mem_radius=0.5)
        probe = PhasedVM(vm_id=7777, spec=spec,
                         interval=TimeInterval(2, 7),
                         phases=(DemandPhase(3, 1.5, 3.0),
                                 DemandPhase(3, 3.0, 3.0)))
        batch = kernel.probe_fleet(probe)
        for i, state in enumerate(states):
            scalar = state.probe(probe)
            assert batch[i].feasible == scalar.feasible, i
            assert batch[i].reason == scalar.reason, i
            assert batch[i].peak_cpu == scalar.peak_cpu


class TestGammaFF:
    def test_registered(self):
        assert "gamma-ff" in allocator_names()

    def test_ctor_knobs_build_robustness(self):
        allocator = make_allocator("gamma-ff", gamma=2)
        assert allocator.engine_config.robustness == \
            RobustnessConfig(gamma=2)
        assert allocator.gamma == 2

    def test_engine_spec_wins_over_knobs(self):
        allocator = GammaFF(gamma=2,
                            engine=EngineConfig.parse("indexed:gamma=5"))
        assert allocator.gamma == 5

    def test_box_mode(self):
        allocator = make_allocator("gamma-ff", gamma=0, mode="box")
        assert allocator.engine_config.robustness.mode == "box"

    def test_robust_plan_reserves_margin(self):
        vms = [make_uncertain_vm(i, 0, 9, cpu=3.0, memory=1.0,
                                 cpu_radius=1.5) for i in range(6)]
        cluster = Cluster.homogeneous(SPEC, 6)
        nominal = make_allocator("first-fit").allocate_batch(vms, cluster)
        robust = make_allocator("gamma-ff", gamma=2).allocate_batch(
            vms, cluster)
        servers_used = lambda ds: len(
            {d.server_id for d in ds if d.placed})
        # 10-cap server: nominal packs 3 VMs of cpu 3; with Γ=2 each
        # pair's two 1.5-radii must also fit, so packs are looser.
        assert servers_used(robust) > servers_used(nominal)


class TestProtocolRadii:
    def _line(self, vm, version=None):
        request = place_request(vm)
        if version is not None:
            request["v"] = version
        elif "v" in request:
            del request["v"]
        return json.dumps(request)

    def test_place_request_stamps_v3_for_radii(self):
        plain = place_request(make_vm(1, 0, 3))
        assert "v" not in plain
        uncertain = place_request(
            make_uncertain_vm(1, 0, 3, cpu_radius=0.5))
        assert uncertain["v"] == PROTOCOL_VERSION

    def test_v3_accepts_radii(self):
        vm = make_uncertain_vm(1, 0, 3, cpu_radius=0.5, mem_radius=0.25)
        message = parse_request(self._line(vm, version=3))
        assert message["_vm"].spec.cpu_radius == 0.5

    @pytest.mark.parametrize("version", [None, 2])
    def test_pre_v3_rejects_radii(self, version):
        vm = make_uncertain_vm(1, 0, 3, cpu_radius=0.5)
        with pytest.raises(ServiceError, match="version 3"):
            parse_request(self._line(vm, version=version))

    def test_pre_v3_plain_vm_still_accepted(self):
        message = parse_request(self._line(make_vm(1, 0, 3)))
        assert message["_vm"].vm_id == 1

    def test_batch_rejects_radii_below_v3(self):
        vms = [make_vm(1, 0, 3),
               make_uncertain_vm(2, 0, 3, mem_radius=0.5)]
        request = place_batch_request(vms)
        request["v"] = 2
        with pytest.raises(ServiceError, match=r"vms\[1\].*version 3"):
            parse_request(json.dumps(request))
        assert parse_request(json.dumps(place_batch_request(vms)))


class TestSnapshotRoundTrip:
    def test_gamma_engine_and_radii_survive_snapshot(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3),
                                  engine="indexed:gamma=1")
        vms = [make_uncertain_vm(i, 0, 5, cpu=3.0, cpu_radius=1.0)
               for i in range(4)]
        for vm in vms:
            sid = next(i for i, s in enumerate(store.states)
                       if s.probe(vm).feasible)
            store.commit(vm, sid)
        document = store.to_snapshot()
        assert document["engine"] == "indexed:gamma=1"
        restored = ClusterStateStore.from_snapshot(
            json.loads(json.dumps(document)))
        assert restored.engine_config == store.engine_config
        assert restored.placements == store.placements
        assert restored.energy_accumulated == store.energy_accumulated
        # The restored planning state enforces the same robust margin.
        probe = make_uncertain_vm(99, 0, 5, cpu=3.0, cpu_radius=1.0)
        for state, restored_state in zip(store.states, restored.states):
            assert state.probe(probe).reason == \
                restored_state.probe(probe).reason


class TestPhasedWorkloadUncertainty:
    def test_zero_uncertainty_bit_identical(self):
        base = PhasedWorkload(mean_interarrival=1.0)
        tagged = PhasedWorkload(mean_interarrival=1.0, uncertainty=0.0)
        assert base.generate(40, rng=5) == tagged.generate(40, rng=5)

    def test_uncertainty_scales_radii(self):
        workload = PhasedWorkload(mean_interarrival=1.0, uncertainty=0.25)
        for vm in workload.generate(30, rng=5):
            assert vm.cpu_radius == 0.25 * vm.spec.cpu
            assert vm.mem_radius == 0.25 * vm.spec.memory

    def test_bad_uncertainty_rejected(self):
        with pytest.raises(ValidationError):
            PhasedWorkload(mean_interarrival=1.0, uncertainty=1.5)


class TestEvaluateHarness:
    def _workload(self):
        workload = PhasedWorkload(mean_interarrival=0.5,
                                  mean_duration=8.0, uncertainty=0.3)
        return workload.generate(120, rng=7), Cluster.paper_all_types(25)

    def test_overload_rate_deterministic(self):
        vms, cluster = self._workload()
        decisions = make_allocator("first-fit").allocate_batch(vms, cluster)
        first = overload_rate(decisions, cluster, draws=5, seed=3)
        assert first == overload_rate(decisions, cluster, draws=5, seed=3)

    def test_realized_overload_counts_units(self):
        vms, cluster = self._workload()
        decisions = make_allocator("first-fit").allocate_batch(vms, cluster)
        over, busy = realized_overload(decisions, cluster,
                                       np.random.default_rng(0))
        assert busy > 0 and 0 <= over <= busy

    def test_gamma_reduces_overload(self):
        """The headline claim: at the same workload, a Γ>0 plan overloads
        strictly less often than the nominal plan."""
        vms, cluster = self._workload()
        sweep = sweep_gamma(vms, cluster, gammas=(0, 2), draws=10, seed=3)
        nominal, robust = sweep.points
        assert nominal.gamma == 0 and robust.gamma == 2
        assert nominal.overload_rate > 0
        assert robust.overload_rate < nominal.overload_rate

    def test_box_anchors_the_frontier(self):
        vms, cluster = self._workload()
        sweep = sweep_gamma(vms, cluster, gammas=(), include_box=True,
                            draws=5, seed=3)
        (box,) = sweep.points
        assert box.mode == "box" and box.label == "box"
        assert box.overload_rate == 0.0

    def test_format_renders_table(self):
        vms, cluster = self._workload()
        sweep = sweep_gamma(vms, cluster, gammas=(0,), draws=2, seed=1)
        text = sweep.format()
        assert "budget" in text and "Γ=0" in text

    def test_empty_budget_rejected(self):
        vms, cluster = self._workload()
        with pytest.raises(ValidationError):
            sweep_gamma(vms, cluster, gammas=(), include_box=False)
