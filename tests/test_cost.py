"""Tests for the Eq. 15-17 cost computation and sleep policies."""

from __future__ import annotations


from repro.energy.cost import (
    CostBreakdown,
    SleepPolicy,
    allocation_cost,
    gap_cost,
    server_cost,
    sleeps_through,
)
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.intervals import TimeInterval
from repro.model.server import ServerSpec

from conftest import make_vm

# 10 cu, P_idle 50, P_peak 100, alpha = 100 (transition 1 unit).
SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestSleepDecision:
    def test_sleeps_when_alpha_cheaper(self):
        # gap of 3 units: idle cost 150 > alpha 100 -> sleep
        assert sleeps_through(SPEC, TimeInterval(1, 3))

    def test_stays_active_for_short_gap(self):
        # gap of 2 units: idle cost 100 == alpha 100 -> not strictly
        # cheaper, stay active
        assert not sleeps_through(SPEC, TimeInterval(1, 2))

    def test_never_sleep_policy(self):
        assert not sleeps_through(SPEC, TimeInterval(1, 50),
                                  SleepPolicy.NEVER_SLEEP)

    def test_always_sleep_policy(self):
        assert sleeps_through(SPEC, TimeInterval(1, 1),
                              SleepPolicy.ALWAYS_SLEEP)

    def test_gap_cost_is_min(self):
        assert gap_cost(SPEC, TimeInterval(1, 3)) == 100.0   # alpha
        assert gap_cost(SPEC, TimeInterval(1, 1)) == 50.0    # idle

    def test_gap_cost_never_sleep(self):
        assert gap_cost(SPEC, TimeInterval(1, 10),
                        SleepPolicy.NEVER_SLEEP) == 500.0

    def test_gap_cost_always_sleep(self):
        assert gap_cost(SPEC, TimeInterval(1, 1),
                        SleepPolicy.ALWAYS_SLEEP) == 100.0


class TestCostBreakdown:
    def test_total_sums_components(self):
        bd = CostBreakdown(run=1.0, busy_idle=2.0, gaps=3.0,
                           initial_wake=4.0)
        assert bd.total == 10.0

    def test_addition(self):
        a = CostBreakdown(1.0, 2.0, 3.0, 4.0)
        b = CostBreakdown(10.0, 20.0, 30.0, 40.0)
        assert (a + b).total == 110.0


class TestServerCost:
    def test_empty_server_costs_nothing(self):
        assert server_cost(SPEC, []).total == 0.0

    def test_single_vm_components(self):
        # VM: 2 cu for 4 units. run = 5*2*4 = 40; busy idle = 50*4 = 200;
        # no gaps; initial wake = alpha = 100.
        cost = server_cost(SPEC, [make_vm(0, 1, 4, cpu=2.0)])
        assert cost.run == 40.0
        assert cost.busy_idle == 200.0
        assert cost.gaps == 0.0
        assert cost.initial_wake == 100.0
        assert cost.total == 340.0

    def test_gap_cost_included(self):
        # Two 1-unit VMs separated by a 3-unit gap (sleep: alpha=100).
        vms = [make_vm(0, 1, 1, cpu=1.0), make_vm(1, 5, 5, cpu=1.0)]
        cost = server_cost(SPEC, vms)
        assert cost.run == 10.0          # 5*1*1 twice
        assert cost.busy_idle == 100.0   # 2 busy units
        assert cost.gaps == 100.0        # min(150, 100)
        assert cost.initial_wake == 100.0

    def test_short_gap_stays_active(self):
        # 1-unit gap: min(50, 100) = 50.
        vms = [make_vm(0, 1, 1), make_vm(1, 3, 3)]
        assert server_cost(SPEC, vms).gaps == 50.0

    def test_without_initial_wake(self):
        cost = server_cost(SPEC, [make_vm(0, 1, 1)],
                           include_initial_wake=False)
        assert cost.initial_wake == 0.0

    def test_never_sleep_policy_charges_idle(self):
        vms = [make_vm(0, 1, 1), make_vm(1, 10, 10)]
        cost = server_cost(SPEC, vms, policy=SleepPolicy.NEVER_SLEEP)
        assert cost.gaps == 50.0 * 8

    def test_always_sleep_policy_charges_alpha(self):
        vms = [make_vm(0, 1, 1), make_vm(1, 3, 3)]
        cost = server_cost(SPEC, vms, policy=SleepPolicy.ALWAYS_SLEEP)
        assert cost.gaps == 100.0

    def test_optimal_never_exceeds_other_policies(self):
        vms = [make_vm(0, 1, 2), make_vm(1, 5, 5), make_vm(2, 30, 31)]
        optimal = server_cost(SPEC, vms).total
        never = server_cost(SPEC, vms, policy=SleepPolicy.NEVER_SLEEP).total
        always = server_cost(SPEC, vms,
                             policy=SleepPolicy.ALWAYS_SLEEP).total
        assert optimal <= never
        assert optimal <= always

    def test_overlapping_vms_share_busy_idle(self):
        # Two fully-overlapping VMs: busy idle charged once.
        vms = [make_vm(0, 1, 4, cpu=2.0), make_vm(1, 1, 4, cpu=3.0)]
        cost = server_cost(SPEC, vms)
        assert cost.busy_idle == 200.0
        assert cost.run == 40.0 + 60.0


class TestAllocationCost:
    def test_sums_over_servers(self):
        cluster = Cluster.homogeneous(SPEC, 2)
        v0, v1 = make_vm(0, 1, 2, cpu=1.0), make_vm(1, 1, 2, cpu=1.0)
        split = allocation_cost(Allocation(cluster, {v0: 0, v1: 1}))
        together = allocation_cost(Allocation(cluster, {v0: 0, v1: 0}))
        # Splitting pays busy idle and wake twice.
        assert split.busy_idle == 2 * together.busy_idle
        assert split.initial_wake == 2 * together.initial_wake
        assert split.run == together.run

    def test_empty_allocation(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        assert allocation_cost(Allocation(cluster, {})).total == 0.0

    def test_consolidation_saves(self):
        cluster = Cluster.homogeneous(SPEC, 2)
        v0, v1 = make_vm(0, 1, 5, cpu=1.0), make_vm(1, 2, 6, cpu=1.0)
        split = allocation_cost(Allocation(cluster, {v0: 0, v1: 1})).total
        packed = allocation_cost(Allocation(cluster, {v0: 0, v1: 0})).total
        assert packed < split
