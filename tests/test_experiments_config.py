"""Tests for scenario configuration."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import DEFAULT_SEEDS, ScenarioConfig
from repro.model.catalog import SMALL_SERVER_TYPES, STANDARD_VM_TYPES


class TestValidation:
    def test_defaults_match_paper(self):
        config = ScenarioConfig()
        assert config.n_vms == 100
        assert config.mean_duration == 5.0
        assert config.transition_time == 1.0
        assert config.seeds == DEFAULT_SEEDS
        assert len(DEFAULT_SEEDS) == 5  # "averaged over 5 random runs"

    @pytest.mark.parametrize("kwargs", [
        dict(n_vms=0),
        dict(mean_interarrival=0.0),
        dict(mean_duration=-1.0),
        dict(transition_time=-0.1),
        dict(server_ratio=0.0),
        dict(seeds=()),
        dict(vm_types=()),
        dict(server_types=()),
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValidationError):
            ScenarioConfig(**kwargs)


class TestDerived:
    def test_servers_half_the_vms(self):
        assert ScenarioConfig(n_vms=100).n_servers == 50
        assert ScenarioConfig(n_vms=101).n_servers == 50  # banker's round

    def test_at_least_one_server(self):
        assert ScenarioConfig(n_vms=1).n_servers == 1

    def test_generate_vms_reproducible(self):
        config = ScenarioConfig(n_vms=20)
        a = config.generate_vms(3)
        b = config.generate_vms(3)
        assert [(v.start, v.end) for v in a] == [(v.start, v.end) for v in b]

    def test_build_cluster_applies_transition(self):
        config = ScenarioConfig(n_vms=10, transition_time=2.5)
        cluster = config.build_cluster()
        assert all(s.spec.transition_time == 2.5 for s in cluster)

    def test_build_cluster_respects_types(self):
        config = ScenarioConfig(n_vms=12, server_types=SMALL_SERVER_TYPES)
        cluster = config.build_cluster()
        assert set(cluster.spec_counts()) == \
            {s.name for s in SMALL_SERVER_TYPES}

    def test_with_(self):
        config = ScenarioConfig(n_vms=100)
        modified = config.with_(mean_interarrival=7.0)
        assert modified.mean_interarrival == 7.0
        assert modified.n_vms == 100
        assert config.mean_interarrival == 4.0  # original untouched

    def test_sweep(self):
        configs = ScenarioConfig.sweep(ScenarioConfig(), "n_vms",
                                       [100, 200])
        assert [c.n_vms for c in configs] == [100, 200]

    def test_workload_uses_vm_types(self):
        config = ScenarioConfig(vm_types=STANDARD_VM_TYPES)
        wl = config.workload()
        assert wl.vm_types == STANDARD_VM_TYPES
        vms = config.generate_vms(seed=0)
        assert {vm.spec.name for vm in vms} <= \
            {t.name for t in STANDARD_VM_TYPES}
