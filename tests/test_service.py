"""Tests for the online allocation service subsystem."""

from __future__ import annotations

import json
import re
import threading
import urllib.request

import pytest

from repro.allocators import MinIncrementalEnergy
from repro.exceptions import ServiceError, ValidationError
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.service import (
    OPS,
    AllocationDaemon,
    ClusterStateStore,
    AllocationClient,
    RequestJournal,
    SnapshotManager,
    parse_request,
    place_request,
    read_journal,
    replay_trace,
    serve_stdio,
    serve_tcp,
    start_metrics_server,
)
from repro.simulation import simulate_online
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


def online_order(vms):
    """The paper's arrival order: start time, ties by end then id."""
    return sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))


def stream(daemon, vms):
    for vm in online_order(vms):
        response = daemon.handle(place_request(vm))
        assert response["ok"], response
        yield response


class TestProtocol:
    def test_roundtrip_place(self):
        vm = make_vm(3, 2, 7, cpu=1.5)
        message = parse_request(json.dumps(place_request(vm)))
        assert message["_vm"] == vm
        assert message["_vm"].interval == vm.interval

    def test_rejects_bad_json(self):
        with pytest.raises(ServiceError):
            parse_request("{nope")

    def test_rejects_unknown_op(self):
        with pytest.raises(ServiceError):
            parse_request('{"op": "frobnicate"}')

    def test_rejects_bad_vm_record(self):
        with pytest.raises(ServiceError):
            parse_request('{"op": "place", "vm": {"vm_id": 1}}')

    def test_rejects_future_protocol_version(self):
        with pytest.raises(ServiceError):
            parse_request('{"op": "ping", "v": 99}')

    def test_rejects_bad_tick(self):
        with pytest.raises(ServiceError):
            parse_request('{"op": "tick", "now": -1}')


class TestClusterStateStore:
    def test_commit_and_advance_power_states(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        vm = make_vm(0, 2, 4, cpu=5.0)
        store.commit(vm, 0)
        assert store.servers_active() == 0
        store.advance_to(2)
        assert store.servers_active() == 1
        assert store.fleet_power() == pytest.approx(75.0)  # 50 + 5 cu * 5
        store.advance_to(5)  # vm retired at end of tick 4
        assert store.servers_active() == 0
        assert store.running_vms() == 0

    def test_telemetry_series(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        store.commit(make_vm(0, 1, 2, cpu=10.0), 0)
        store.run_to_completion()
        telemetry = store.telemetry()
        assert list(telemetry.power) == [100.0, 100.0]
        assert list(telemetry.active_servers) == [1, 1]

    def test_adjacent_vms_bridge_without_sleeping(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        store.commit(make_vm(0, 1, 2), 0)
        store.commit(make_vm(1, 3, 4), 0)
        store.advance_to(3)
        assert store.machines[0].transitions == 1  # stayed awake at t=2->3

    def test_clock_cannot_move_backwards(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        store.advance_to(5)
        with pytest.raises(ValidationError):
            store.advance_to(4)

    def test_energy_accumulated_matches_from_scratch(self):
        vms = generate_vms(40, mean_interarrival=2.0, seed=4)
        store = ClusterStateStore(Cluster.paper_all_types(20))
        allocator = MinIncrementalEnergy()
        allocator.prepare(store.states)
        for vm in online_order(vms):
            chosen = allocator.select(vm, store.states)
            store.commit(vm, chosen.server.server_id)
        assert store.energy_accumulated == pytest.approx(
            store.energy_total(), rel=1e-9)

    def test_snapshot_roundtrip_identity(self):
        vms = generate_vms(30, mean_interarrival=1.5, seed=2)
        store = ClusterStateStore(Cluster.paper_all_types(15))
        daemon = AllocationDaemon(store)
        for _ in stream(daemon, vms):
            pass
        document = json.loads(json.dumps(store.to_snapshot()))
        restored = ClusterStateStore.from_snapshot(document)
        assert restored.to_snapshot() == store.to_snapshot()
        assert restored.clock == store.clock
        assert restored.energy_accumulated == store.energy_accumulated
        for server_id, machine in store.machines.items():
            twin = restored.machines[server_id]
            # replay re-commits each placement at its recorded clock,
            # so even path statistics (transition counts) match
            assert twin.state is machine.state
            assert twin.resident_vms == machine.resident_vms
            assert twin.transitions == machine.transitions
            assert twin.transition_energy == machine.transition_energy

    def test_snapshot_save_load_file(self, tmp_path):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        store.commit(make_vm(0, 1, 3), 0)
        store.advance_to(2)
        path = tmp_path / "snap.json"
        store.save(path)
        restored = ClusterStateStore.load(path)
        assert restored.to_snapshot() == store.to_snapshot()

    def test_rejects_unknown_snapshot_version(self):
        with pytest.raises(ValidationError):
            ClusterStateStore.from_snapshot({"format_version": 99})

    def test_snapshot_replays_out_of_order_arrival_identically(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        store.commit(make_vm(0, 1, 3), 0)
        store.advance_to(5)
        # late arrival: nominal start is in the past, so the live store
        # admits it at the current clock — replay must do the same, not
        # start it at tick 2
        store.commit(make_vm(1, 2, 8), 1)
        store.advance_to(6)
        restored = ClusterStateStore.from_snapshot(store.to_snapshot())
        assert restored.telemetry().power.tolist() == \
            store.telemetry().power.tolist()
        assert restored.telemetry().active_servers.tolist() == \
            store.telemetry().active_servers.tolist()

    def test_snapshot_replays_sleep_wake_cycle_identically(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        store.commit(make_vm(0, 1, 2), 0)
        store.advance_to(3)  # emptied at close of tick 2 -> slept
        # the arrival was unknown when the server slept, so the live
        # path pays a second wake; a replay that schedules all starts
        # up front would bridge the gap and undercount transitions
        store.commit(make_vm(1, 3, 5), 0)
        store.advance_to(4)
        assert store.machines[0].transitions == 2
        restored = ClusterStateStore.from_snapshot(store.to_snapshot())
        assert restored.machines[0].transitions == 2
        assert restored.machines[0].transition_energy == \
            store.machines[0].transition_energy


class TestDaemon:
    def test_stream_matches_offline_simulation(self):
        vms = generate_vms(80, mean_interarrival=2.0, seed=5)
        store = ClusterStateStore(Cluster.paper_all_types(40))
        daemon = AllocationDaemon(store)
        responses = list(stream(daemon, vms))
        assert all(r["decision"] == "placed" for r in responses)
        store.run_to_completion()
        alloc, result = simulate_online(
            vms, Cluster.paper_all_types(40), MinIncrementalEnergy())
        assert store.energy_total() == pytest.approx(
            result.total_energy, rel=1e-12)
        offline = {vm.vm_id: sid for vm, sid in alloc.items()}
        online = {vm.vm_id: sid for vm, sid in store.allocation().items()}
        assert online == offline

    def test_rejects_when_fleet_full(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        placed = daemon.handle(place_request(make_vm(0, 1, 5, cpu=8.0)))
        assert placed["decision"] == "placed"
        overflow = daemon.handle(place_request(make_vm(1, 2, 4, cpu=8.0)))
        assert overflow["ok"] and overflow["decision"] == "rejected"
        assert daemon.metrics.requests["rejected"] == 1

    def test_queue_mode_delays_instead_of_rejecting(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store, max_delay=10)
        daemon.handle(place_request(make_vm(0, 1, 3, cpu=8.0)))
        response = daemon.handle(place_request(make_vm(1, 2, 4, cpu=8.0)))
        assert response["decision"] == "placed"
        assert response["delay"] == 2  # shifted past the blocker's end
        assert daemon.metrics.delayed == 1

    def test_domain_error_becomes_error_response(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        daemon.handle({"op": "tick", "now": 9})
        response = daemon.handle({"op": "tick", "now": 9})  # no-op is ok
        assert response["ok"]
        bad = daemon.handle_line('{"op": "nope"}')
        payload = json.loads(bad)
        assert payload["ok"] is False
        assert "'nope'" in payload["error"]
        # Unknown ops answer with the structured self-describing shape
        # (same idea as supported_versions on a version mismatch).
        assert payload["supported_ops"] == list(OPS)
        assert daemon.metrics.errors == 1

    def test_direct_tick_with_bad_now_is_domain_error(self):
        """handle() must not raise even when the dict API bypasses
        parse_request with a missing or malformed 'now'."""
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        for message in ({"op": "tick"},
                        {"op": "tick", "now": "soon"},
                        {"op": "tick", "now": None},
                        {"op": "tick", "now": True},
                        {"op": "tick", "now": -1}):
            response = daemon.handle(message)
            assert response["ok"] is False
            assert "now" in response["error"]
        assert daemon.metrics.errors == 5
        assert store.clock == 0

    def test_duplicate_vm_id_is_refused(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        assert daemon.handle(
            place_request(make_vm(5, 1, 3)))["decision"] == "placed"
        # same id again — even with identical spec/interval, which would
        # collide as a key in the Allocation view and undercount energy
        response = daemon.handle(place_request(make_vm(5, 1, 3)))
        assert response["ok"] is False
        assert "vm_id 5" in response["error"]
        assert len(store.placements) == 1
        assert store.energy_accumulated == pytest.approx(
            store.energy_total(), rel=1e-12)

    def test_kill_and_restore_matches_offline(self, tmp_path):
        """The acceptance scenario: >= 200 VMs streamed, a hard kill and
        restore mid-stream, and final energy identical to the offline
        simulate_online run (same tolerance as the engine tests)."""
        vms = generate_vms(220, mean_interarrival=2.0, seed=7)
        ordered = online_order(vms)
        store = ClusterStateStore(Cluster.paper_all_types(110))
        first = AllocationDaemon(store, data_dir=tmp_path,
                                 snapshot_every=40, fsync=False)
        for vm in ordered[:130]:
            assert first.handle(place_request(vm))["decision"] == "placed"
        del first  # hard kill: no shutdown, no final snapshot

        second = AllocationDaemon.restore(tmp_path, fsync=False)
        assert second.metrics.requests["placed"] == 130
        assert len(second.store.placements) == 130
        for vm in ordered[130:]:
            assert second.handle(place_request(vm))["decision"] == "placed"
        second.store.run_to_completion()

        alloc, result = simulate_online(
            vms, Cluster.paper_all_types(110), MinIncrementalEnergy())
        assert second.store.energy_total() == pytest.approx(
            result.total_energy, rel=1e-12)
        offline = {vm.vm_id: sid for vm, sid in alloc.items()}
        online = {vm.vm_id: sid
                  for vm, sid in second.store.allocation().items()}
        assert online == offline
        assert second.metrics.requests["rejected"] == 0

    def test_restore_preserves_counters_and_rejections(self, tmp_path):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store, data_dir=tmp_path, fsync=False)
        daemon.handle(place_request(make_vm(0, 1, 5, cpu=8.0)))
        daemon.handle(place_request(make_vm(1, 2, 4, cpu=8.0)))  # rejected
        restored = AllocationDaemon.restore(tmp_path, fsync=False)
        assert restored.metrics.requests == {"placed": 1, "rejected": 1}
        assert restored.store.clock == daemon.store.clock

    def test_fresh_daemon_refuses_existing_journal(self, tmp_path):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        AllocationDaemon(store, data_dir=tmp_path, fsync=False)
        with pytest.raises(ValidationError):
            AllocationDaemon(ClusterStateStore(
                Cluster.homogeneous(SPEC, 1)), data_dir=tmp_path,
                fsync=False)

    def test_shutdown_writes_final_snapshot(self, tmp_path):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store, data_dir=tmp_path,
                                  snapshot_every=0, fsync=False)
        daemon.handle(place_request(make_vm(0, 1, 3)))
        response = daemon.handle({"op": "shutdown"})
        assert response["ok"] and daemon.closed
        assert list(tmp_path.glob("snapshot-*.json"))
        refused = daemon.handle({"op": "ping"})
        assert not refused["ok"]


class TestPersistence:
    def test_torn_final_journal_line_is_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RequestJournal(path, fsync=False) as journal:
            journal.append({"op": "tick", "now": 3})
        with path.open("a") as fh:
            fh.write('{"seq": 2, "op": "tick", "now"')  # torn write
        entries = list(read_journal(path))
        assert [e["seq"] for e in entries] == [1]
        # reopening continues after the surviving prefix
        assert RequestJournal(path, fsync=False).next_seq == 2

    def test_append_after_torn_line_stays_parseable(self, tmp_path):
        """Crash-restart-crash: reopening truncates the torn tail, so a
        new append starts on a fresh line instead of welding onto the
        partial one (which would lose the new entry and poison every
        later read)."""
        path = tmp_path / "journal.jsonl"
        with RequestJournal(path, fsync=False) as journal:
            journal.append({"op": "tick", "now": 3})
        with path.open("a") as fh:
            fh.write('{"seq": 2, "op": "tick", "now"')  # torn write
        with RequestJournal(path, fsync=False) as journal:
            assert journal.next_seq == 2
            journal.append({"op": "tick", "now": 5})
            journal.append({"op": "tick", "now": 7})
        entries = list(read_journal(path))
        assert [e["seq"] for e in entries] == [1, 2, 3]
        assert [e["now"] for e in entries] == [3, 5, 7]

    def test_unterminated_valid_final_line_is_torn(self, tmp_path):
        """An append is only durable once its newline lands: a final
        line that parses but lacks the terminator was never
        acknowledged, so read and reopen agree it never happened."""
        path = tmp_path / "journal.jsonl"
        with RequestJournal(path, fsync=False) as journal:
            journal.append({"op": "tick", "now": 3})
        with path.open("a") as fh:
            fh.write('{"seq": 2, "op": "tick", "now": 4}')  # no newline
        assert [e["seq"] for e in read_journal(path)] == [1]
        with RequestJournal(path, fsync=False) as journal:
            assert journal.next_seq == 2
            journal.append({"op": "tick", "now": 9})
        assert [e["now"] for e in read_journal(path)] == [3, 9]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"seq": 1, "op": "tick", "now": 1}\n'
                        'garbage\n'
                        '{"seq": 3, "op": "tick", "now": 3}\n')
        with pytest.raises(ValidationError):
            list(read_journal(path))

    def test_snapshot_rotation_keeps_newest(self, tmp_path):
        manager = SnapshotManager(tmp_path, keep=2)
        for seq in (1, 2, 3):
            manager.save({"format_version": 1, "seq": seq}, seq)
        remaining = sorted(p.name for p in
                           tmp_path.glob("snapshot-*.json"))
        assert len(remaining) == 2
        assert manager.load_latest()["seq"] == 3

    def test_corrupt_latest_snapshot_falls_back(self, tmp_path):
        manager = SnapshotManager(tmp_path)
        manager.save({"marker": "good"}, 1)
        manager.path_for(2).write_text("{broken")
        assert manager.load_latest()["marker"] == "good"


_PROM_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,"
    r"[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[0-9]+)$")


class TestEndToEndTCP:
    def test_client_server_and_metrics_endpoint(self):
        vms = generate_vms(60, mean_interarrival=2.0, seed=3)
        store = ClusterStateStore(Cluster.paper_all_types(30))
        daemon = AllocationDaemon(store)
        server = serve_tcp(daemon, port=0)
        host, port = server.server_address
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        metrics_server = start_metrics_server(daemon, port=0)
        metrics_port = metrics_server.server_address[1]
        try:
            with AllocationClient(host, port) as client:
                assert client.ping()["ok"]
                summary = replay_trace(client, vms)
                assert summary.placed == 60
                assert summary.rejected == 0
                assert summary.energy_delta_total == pytest.approx(
                    store.energy_total(), rel=1e-9)
                body = urllib.request.urlopen(
                    f"http://127.0.0.1:{metrics_port}/metrics",
                    timeout=10).read().decode()
                for line in body.strip().splitlines():
                    assert _PROM_COMMENT.match(line) or \
                        _PROM_SAMPLE.match(line), line
                assert 'repro_requests_total{decision="placed"} 60' in body
                assert "repro_placement_latency_seconds" in body
                assert "repro_fleet_power_watts" in body
                health = urllib.request.urlopen(
                    f"http://127.0.0.1:{metrics_port}/healthz",
                    timeout=10).read()
                assert health == b"ok\n"
                # the metrics op serves the same exposition as HTTP
                exposition = client.metrics()
                assert 'repro_requests_total{decision="placed"} 60' \
                    in exposition
                assert "repro_placement_duration_seconds_bucket" \
                    in exposition
                assert client.shutdown()["ok"]
        finally:
            server.shutdown()
            server.server_close()
            metrics_server.shutdown()
            metrics_server.server_close()

    def test_malformed_line_gets_error_response(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        server = serve_tcp(daemon, port=0)
        host, port = server.server_address
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with AllocationClient(host, port) as client:
                response = client._request({"op": "place"})  # missing vm
                assert response["ok"] is False
                assert "vm" in response["error"]
        finally:
            server.shutdown()
            server.server_close()


class TestStdioTransport:
    def test_serve_stdio_round_trip(self):
        import io

        vm = make_vm(0, 1, 3)
        lines = (json.dumps(place_request(vm)) + "\n"
                 + '{"op": "stats"}\n'
                 + '{"op": "shutdown"}\n'
                 + '{"op": "ping"}\n')  # after shutdown: never served
        out = io.StringIO()
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        serve_stdio(daemon, io.StringIO(lines), out)
        responses = [json.loads(line) for line in
                     out.getvalue().splitlines()]
        assert len(responses) == 3  # the loop stopped at shutdown
        assert responses[0]["decision"] == "placed"
        assert responses[1]["placed"] == 1
        assert responses[2]["op"] == "shutdown"


class TestExplainProtocol:
    def test_place_with_explain_returns_candidate_breakdown(self):
        from repro.obs import PlacementExplanation

        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        response = daemon.handle(
            place_request(make_vm(0, 1, 5, cpu=2.0), explain=True))
        assert response["ok"] and response["decision"] == "placed"
        explanation = PlacementExplanation.from_record(
            response["explanation"])
        assert explanation.vm_id == 0
        assert explanation.decision == "placed"
        assert explanation.server_id == response["server_id"]
        assert len(explanation.candidates) == 2
        assert explanation.chosen is not None

    def test_rejected_place_explains_every_candidate(self):
        from repro.obs import PlacementExplanation

        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        response = daemon.handle(
            place_request(make_vm(0, 1, 5, cpu=99.0), explain=True))
        assert response["ok"] and response["decision"] == "rejected"
        explanation = PlacementExplanation.from_record(
            response["explanation"])
        assert explanation.decision == "rejected"
        assert explanation.feasible_count == 0
        assert all(v.reason == "cpu:capacity"
                   for v in explanation.candidates)

    def test_explain_response_is_json_round_trippable(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        response = daemon.handle(
            place_request(make_vm(0, 1, 3), explain=True))
        assert json.loads(json.dumps(response)) == response

    def test_plain_place_has_no_explanation(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        response = daemon.handle(place_request(make_vm(0, 1, 3)))
        assert "explanation" not in response

    def test_non_boolean_explain_is_rejected(self):
        vm_record = place_request(make_vm(0, 1, 3))["vm"]
        with pytest.raises(ServiceError):
            parse_request(json.dumps(
                {"op": "place", "vm": vm_record, "explain": "yes"}))

    def test_explained_delay_rides_along(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store, max_delay=5)
        first = daemon.handle(place_request(make_vm(0, 1, 4, cpu=8.0)))
        assert first["decision"] == "placed"
        response = daemon.handle(
            place_request(make_vm(1, 2, 4, cpu=8.0), explain=True))
        assert response["decision"] == "placed"
        assert response["delay"] == 3
        assert response["explanation"]["delay"] == 3

    def test_decision_counters_follow_the_stream(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        daemon.handle(place_request(make_vm(0, 1, 5, cpu=8.0)))
        daemon.handle(place_request(make_vm(1, 2, 4, cpu=8.0)))
        key = str(daemon.config["algorithm"])
        assert daemon.metrics.decisions[(key, "placed")] == 1
        assert daemon.metrics.decisions[(key, "rejected")] == 1
        assert daemon.metrics.latency_hist.count == 2
        assert daemon.metrics.candidates.count == 2

    def test_request_spans_recorded_when_tracing(self):
        from repro.obs import Tracer, use_tracer

        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        tracer = Tracer()
        with use_tracer(tracer):
            daemon.handle_line(json.dumps(place_request(make_vm(0, 1, 3))))
        names = {e.name for e in tracer.events}
        assert {"service.request", "service.ingest", "service.place",
                "service.allocate", "service.commit",
                "service.respond"} <= names
