"""Tests for affinity / anti-affinity placement constraints."""

from __future__ import annotations

import pytest

from repro.allocators import (
    MinIncrementalEnergy,
    make_allocator,
)
from repro.energy.cost import allocation_cost
from repro.exceptions import AllocationError, ValidationError
from repro.ilp import solve_ilp
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.model.server import ServerSpec
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestConstruction:
    def test_trivial(self):
        assert PlacementConstraints.build().is_trivial

    def test_rejects_singleton_group(self):
        with pytest.raises(ValidationError):
            PlacementConstraints.build(colocate=[{1}])

    def test_rejects_direct_contradiction(self):
        with pytest.raises(ValidationError, match="both"):
            PlacementConstraints.build(colocate=[{1, 2}],
                                       separate=[{1, 2}])

    def test_rejects_transitive_contradiction(self):
        # 1~2 and 2~3 force 1 and 3 together; separating them is invalid.
        with pytest.raises(ValidationError):
            PlacementConstraints.build(colocate=[{1, 2}, {2, 3}],
                                       separate=[{1, 3}])

    def test_affinity_classes_merge_chains(self):
        constraints = PlacementConstraints.build(
            colocate=[{1, 2}, {2, 3}, {7, 8}])
        classes = {frozenset(c) for c in constraints.affinity_classes()}
        assert frozenset({1, 2, 3}) in classes
        assert frozenset({7, 8}) in classes


class TestAllows:
    CONSTRAINTS = PlacementConstraints.build(colocate=[{0, 1}],
                                             separate=[{2, 3}])

    def test_affinity_binds_to_partner_server(self):
        assert self.CONSTRAINTS.allows(1, 5, {0: 5})
        assert not self.CONSTRAINTS.allows(1, 6, {0: 5})

    def test_affinity_free_until_partner_placed(self):
        assert self.CONSTRAINTS.allows(1, 9, {})

    def test_anti_affinity_blocks_shared_server(self):
        assert not self.CONSTRAINTS.allows(3, 4, {2: 4})
        assert self.CONSTRAINTS.allows(3, 5, {2: 4})

    def test_unconstrained_vm_is_free(self):
        assert self.CONSTRAINTS.allows(99, 4, {2: 4})


class TestAllocatorsHonourConstraints:
    def overlapping_vms(self, count=4):
        return [make_vm(i, 1, 5, cpu=2.0, memory=2.0)
                for i in range(count)]

    @pytest.mark.parametrize("algo", ["min-energy", "ffps", "best-fit",
                                      "first-fit", "round-robin"])
    def test_anti_affinity_spreads(self, algo):
        vms = self.overlapping_vms(4)
        cluster = Cluster.homogeneous(SPEC, 4)
        constraints = PlacementConstraints.build(
            separate=[{0, 1, 2, 3}])
        allocation = make_allocator(algo, seed=0).allocate(
            vms, cluster, constraints=constraints)
        constraints.validate_allocation(allocation)
        assert len(allocation.used_servers()) == 4

    @pytest.mark.parametrize("algo", ["min-energy", "ffps", "best-fit"])
    def test_affinity_packs(self, algo):
        vms = self.overlapping_vms(3)
        cluster = Cluster.homogeneous(SPEC, 3)
        constraints = PlacementConstraints.build(colocate=[{0, 1, 2}])
        allocation = make_allocator(algo, seed=0).allocate(
            vms, cluster, constraints=constraints)
        constraints.validate_allocation(allocation)
        assert len(allocation.used_servers()) == 1

    def test_infeasible_constraints_raise(self):
        # Three mutually-separated VMs, two servers.
        vms = self.overlapping_vms(3)
        cluster = Cluster.homogeneous(SPEC, 2)
        constraints = PlacementConstraints.build(separate=[{0, 1, 2}])
        with pytest.raises(AllocationError):
            MinIncrementalEnergy().allocate(vms, cluster,
                                            constraints=constraints)

    def test_affinity_capacity_interaction(self):
        # Two 6-cu VMs cannot share a 10-cu server; forcing them together
        # is infeasible.
        vms = [make_vm(0, 1, 3, cpu=6.0), make_vm(1, 1, 3, cpu=6.0)]
        cluster = Cluster.homogeneous(SPEC, 3)
        constraints = PlacementConstraints.build(colocate=[{0, 1}])
        with pytest.raises(AllocationError):
            MinIncrementalEnergy().allocate(vms, cluster,
                                            constraints=constraints)

    def test_constraints_cleared_between_runs(self):
        vms = self.overlapping_vms(3)
        cluster = Cluster.homogeneous(SPEC, 3)
        allocator = MinIncrementalEnergy()
        constrained = allocator.allocate(
            vms, cluster,
            constraints=PlacementConstraints.build(separate=[{0, 1, 2}]))
        assert len(constrained.used_servers()) == 3
        free = allocator.allocate(vms, cluster)
        assert len(free.used_servers()) == 1  # no leakage


class TestValidateAllocation:
    def test_detects_split_affinity_group(self):
        vms = [make_vm(0, 1, 2), make_vm(1, 1, 2)]
        cluster = Cluster.homogeneous(SPEC, 2)
        from repro.model.allocation import Allocation

        allocation = Allocation(cluster, {vms[0]: 0, vms[1]: 1})
        constraints = PlacementConstraints.build(colocate=[{0, 1}])
        assert not constraints.is_satisfied_by(allocation)

    def test_detects_collided_anti_affinity(self):
        vms = [make_vm(0, 1, 2), make_vm(1, 4, 5)]
        cluster = Cluster.homogeneous(SPEC, 2)
        from repro.model.allocation import Allocation

        allocation = Allocation(cluster, {vms[0]: 0, vms[1]: 0})
        constraints = PlacementConstraints.build(separate=[{0, 1}])
        with pytest.raises(ValidationError, match="share server"):
            constraints.validate_allocation(allocation)


class TestILPConstraints:
    def test_ilp_honours_anti_affinity(self):
        vms = [make_vm(0, 1, 3, cpu=1.0), make_vm(1, 1, 3, cpu=1.0)]
        cluster = Cluster.homogeneous(SPEC, 2)
        free = solve_ilp(vms, cluster)
        assert len(free.allocation.used_servers()) == 1  # consolidation
        constraints = PlacementConstraints.build(separate=[{0, 1}])
        result = solve_ilp(vms, cluster, constraints=constraints)
        constraints.validate_allocation(result.allocation)
        assert len(result.allocation.used_servers()) == 2
        assert result.objective >= free.objective

    def test_ilp_honours_affinity(self):
        # Three staggered VMs; force 0 and 2 together.
        vms = [make_vm(0, 1, 2, cpu=1.0), make_vm(1, 1, 2, cpu=1.0),
               make_vm(2, 10, 11, cpu=1.0)]
        cluster = Cluster.homogeneous(SPEC, 3)
        constraints = PlacementConstraints.build(colocate=[{0, 2}])
        result = solve_ilp(vms, cluster, constraints=constraints)
        constraints.validate_allocation(result.allocation)

    def test_ilp_rejects_unknown_group_member(self):
        vms = [make_vm(0, 1, 2)]
        cluster = Cluster.homogeneous(SPEC, 1)
        constraints = PlacementConstraints.build(separate=[{0, 999}])
        with pytest.raises(ValidationError, match="unknown VM ids"):
            solve_ilp(vms, cluster, constraints=constraints)

    def test_heuristic_vs_ilp_under_constraints(self):
        vms = generate_vms(8, mean_interarrival=2.0, seed=0)
        cluster = Cluster.paper_all_types(5)
        constraints = PlacementConstraints.build(
            separate=[{0, 1, 2}], colocate=[{3, 4}])
        exact = solve_ilp(vms, cluster, constraints=constraints)
        heuristic = MinIncrementalEnergy().allocate(
            vms, cluster, constraints=constraints)
        constraints.validate_allocation(heuristic)
        assert exact.objective <= \
            allocation_cost(heuristic).total + 1e-6


class TestEnergyPriceOfIsolation:
    def test_anti_affinity_costs_energy(self):
        vms = generate_vms(30, mean_interarrival=1.0, seed=2)
        cluster = Cluster.paper_all_types(15)
        ids = [vm.vm_id for vm in vms[:6]]
        constraints = PlacementConstraints.build(separate=[set(ids)])
        free_cost = allocation_cost(
            MinIncrementalEnergy().allocate(vms, cluster)).total
        isolated_cost = allocation_cost(
            MinIncrementalEnergy().allocate(
                vms, cluster, constraints=constraints)).total
        assert isolated_cost >= free_cost - 1e-9
