"""Tests for paired significance testing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.significance import (
    bootstrap_mean_diff,
    paired_t_test,
)


class TestPairedTTest:
    def test_clear_difference_is_significant(self):
        a = [10.0, 11.0, 9.5, 10.5, 10.2]
        b = [20.0, 21.0, 19.5, 20.5, 20.2]
        result = paired_t_test(a, b)
        assert result.mean_diff == pytest.approx(-10.0)
        assert result.significant
        assert result.n == 5

    def test_identical_samples_not_significant(self):
        a = [5.0, 6.0, 7.0]
        result = paired_t_test(a, a)
        assert result.p_value == 1.0
        assert not result.significant
        assert result.mean_diff == 0.0

    def test_noise_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(100, 1, 10)
        b = a + rng.normal(0, 5, 10)  # pure noise difference
        result = paired_t_test(list(a), list(b))
        assert result.p_value > 0.05

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            paired_t_test([1.0, 2.0], [1.0])

    def test_too_few_pairs(self):
        with pytest.raises(ValidationError):
            paired_t_test([1.0], [2.0])


class TestBootstrap:
    def test_ci_contains_true_difference(self):
        rng = np.random.default_rng(1)
        a = rng.normal(100, 2, 30)
        b = a + 5 + rng.normal(0, 1, 30)
        mean, lo, hi = bootstrap_mean_diff(list(a), list(b), seed=0)
        assert lo < mean < hi
        assert lo < -4 and hi > -6  # interval brackets -5

    def test_reproducible_with_seed(self):
        a = [1.0, 2.0, 3.0, 4.0]
        b = [2.0, 2.5, 3.5, 4.5]
        assert bootstrap_mean_diff(a, b, seed=3) == \
            bootstrap_mean_diff(a, b, seed=3)

    def test_identical_samples_degenerate_interval(self):
        a = [5.0, 6.0, 7.0]
        mean, lo, hi = bootstrap_mean_diff(a, a, seed=0)
        assert mean == lo == hi == 0.0

    @pytest.mark.parametrize("kwargs", [
        dict(confidence=0.0), dict(confidence=1.0), dict(resamples=10),
    ])
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ValidationError):
            bootstrap_mean_diff([1.0, 2.0], [2.0, 3.0], **kwargs)


class TestOnRealComparison:
    def test_heuristic_vs_ffps_significant(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import compare

        config = ScenarioConfig(n_vms=80, mean_interarrival=6.0,
                                seeds=tuple(range(6)))
        ours = []
        ffps = []
        for seed in config.seeds:
            result = compare(config, seed)
            ours.append(result.algorithm.total_energy)
            ffps.append(result.baseline.total_energy)
        test = paired_t_test(ours, ffps)
        assert test.mean_diff < 0  # ours cheaper
        assert test.significant
