"""Tests for the extended workload families."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.model.catalog import STANDARD_VM_TYPES
from repro.workload.patterns import (
    BurstyWorkload,
    DiurnalWorkload,
    HeavyTailWorkload,
)

FAMILIES = [
    BurstyWorkload(burst_interarrival=0.5, calm_interarrival=5.0),
    DiurnalWorkload(base_interarrival=2.0, period=200.0),
    HeavyTailWorkload(mean_interarrival=2.0),
]


@pytest.fixture(params=range(len(FAMILIES)),
                ids=["bursty", "diurnal", "heavy-tail"])
def family(request):
    return FAMILIES[request.param]


class TestCommon:
    def test_generates_requested_count(self, family):
        vms = family.generate(40, rng=0)
        assert len(vms) == 40
        assert [vm.vm_id for vm in vms] == list(range(40))

    def test_reproducible(self, family):
        a = family.generate(30, rng=5)
        b = family.generate(30, rng=5)
        assert [(v.start, v.end, v.spec.name) for v in a] == \
            [(v.start, v.end, v.spec.name) for v in b]

    def test_arrivals_non_decreasing(self, family):
        vms = family.generate(100, rng=1)
        starts = [vm.start for vm in vms]
        assert starts == sorted(starts)
        assert starts[0] >= 1

    def test_durations_positive(self, family):
        vms = family.generate(100, rng=2)
        assert all(vm.duration >= 1 for vm in vms)


class TestBursty:
    def test_rejects_nonpositive_params(self):
        with pytest.raises(ValidationError):
            BurstyWorkload(burst_interarrival=0.0, calm_interarrival=5.0)
        with pytest.raises(ValidationError):
            BurstyWorkload(burst_interarrival=1.0, calm_interarrival=-1.0)
        with pytest.raises(ValidationError):
            BurstyWorkload(burst_interarrival=1.0, calm_interarrival=2.0,
                           mean_phase_length=0.0)

    def test_rejects_empty_types(self):
        with pytest.raises(ValidationError):
            BurstyWorkload(burst_interarrival=1.0, calm_interarrival=2.0,
                           vm_types=())

    def test_burstier_than_calm_rate(self):
        # Mean inter-arrival should land between burst and calm means.
        wl = BurstyWorkload(burst_interarrival=0.5, calm_interarrival=10.0,
                            mean_phase_length=30.0)
        vms = wl.generate(3000, rng=3)
        observed = (vms[-1].start - vms[0].start) / (len(vms) - 1)
        assert 0.5 < observed < 10.0


class TestDiurnal:
    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValidationError):
            DiurnalWorkload(base_interarrival=1.0, amplitude=1.5)
        with pytest.raises(ValidationError):
            DiurnalWorkload(base_interarrival=1.0, amplitude=-0.1)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValidationError):
            DiurnalWorkload(base_interarrival=1.0, period=0.0)

    def test_mean_rate_matches_base(self):
        wl = DiurnalWorkload(base_interarrival=2.0, period=100.0,
                             amplitude=0.8)
        vms = wl.generate(4000, rng=4)
        observed = (vms[-1].start - vms[0].start) / (len(vms) - 1)
        assert observed == pytest.approx(2.0, rel=0.15)

    def test_zero_amplitude_is_plain_poisson_rate(self):
        wl = DiurnalWorkload(base_interarrival=1.5, amplitude=0.0)
        vms = wl.generate(3000, rng=5)
        observed = (vms[-1].start - vms[0].start) / (len(vms) - 1)
        assert observed == pytest.approx(1.5, rel=0.15)


class TestHeavyTail:
    def test_rejects_shape_at_most_one(self):
        with pytest.raises(ValidationError):
            HeavyTailWorkload(mean_interarrival=1.0, shape=1.0)

    def test_mean_duration_approximate(self):
        wl = HeavyTailWorkload(mean_interarrival=1.0, mean_duration=10.0,
                               shape=2.5)
        vms = wl.generate(20000, rng=6)
        observed = sum(vm.duration for vm in vms) / len(vms)
        assert observed == pytest.approx(10.0, rel=0.25)

    def test_has_heavy_tail(self):
        # A few durations should far exceed the mean (exponential would
        # essentially never produce 20x the mean in this sample size).
        wl = HeavyTailWorkload(mean_interarrival=1.0, mean_duration=5.0,
                               shape=1.3)
        vms = wl.generate(5000, rng=7)
        assert max(vm.duration for vm in vms) > 100

    def test_type_restriction(self):
        wl = HeavyTailWorkload(mean_interarrival=1.0,
                               vm_types=STANDARD_VM_TYPES)
        vms = wl.generate(100, rng=8)
        assert {vm.spec.name for vm in vms} <= \
            {s.name for s in STANDARD_VM_TYPES}
