"""Tests for the Table I / Table II renderers."""

from __future__ import annotations

from repro.experiments.tables import table1, table2


class TestTable1:
    def test_contains_all_nine_types(self):
        out = table1()
        for name in ("standard-1", "standard-4", "memory-3", "cpu-2"):
            assert name in out

    def test_contains_families(self):
        out = table1()
        assert "standard" in out
        assert "memory-intensive" in out
        assert "CPU-intensive" in out

    def test_row_count(self):
        # header + separator + 9 rows
        assert len(table1().splitlines()) == 11


class TestTable2:
    def test_contains_all_five_types(self):
        out = table2()
        for name in ("type1", "type2", "type3", "type4", "type5"):
            assert name in out

    def test_shows_idle_peak_ratio(self):
        out = table2()
        assert "50%" in out
        assert "40%" in out

    def test_row_count(self):
        assert len(table2().splitlines()) == 7
