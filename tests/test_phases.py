"""Tests for time-varying (phased) VM demand across the whole stack."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.allocators import MinIncrementalEnergy, make_allocator
from repro.allocators.state import ServerState
from repro.energy.cost import allocation_cost
from repro.energy.power import run_energy
from repro.exceptions import ValidationError
from repro.ilp import solve_ilp
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.intervals import TimeInterval
from repro.model.phases import (
    DemandPhase,
    PhasedVM,
    demand_at,
    demand_profile,
    split_vm,
)
from repro.model.server import Server, ServerSpec
from repro.model.vm import VM, VMSpec
from repro.metrics.utilization import utilization_stats
from repro.simulation import SimulationEngine
from repro.workload.phased import PhasedWorkload

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


def ramp_vm(vm_id=0, start=1):
    """2 units at 2 cu, then 3 units at 6 cu, then 1 unit at 3 cu."""
    return PhasedVM.from_phases(vm_id, start, [
        DemandPhase(2, 2.0, 4.0),
        DemandPhase(3, 6.0, 4.0),
        DemandPhase(1, 3.0, 4.0),
    ])


class TestDemandPhase:
    def test_rejects_zero_duration(self):
        with pytest.raises(ValidationError):
            DemandPhase(0, 1.0, 1.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValidationError):
            DemandPhase(1, -1.0, 1.0)

    def test_rejects_all_zero_demand(self):
        with pytest.raises(ValidationError):
            DemandPhase(1, 0.0, 0.0)

    def test_cpu_only_phase_allowed(self):
        assert DemandPhase(1, 1.0, 0.0).memory == 0.0


class TestPhasedVM:
    def test_from_phases_derives_peak_spec(self):
        vm = ramp_vm()
        assert vm.cpu == 6.0       # peak over phases
        assert vm.memory == 4.0
        assert vm.duration == 6
        assert vm.interval == TimeInterval(1, 6)

    def test_phases_must_tile_interval(self):
        with pytest.raises(ValidationError, match="cover"):
            PhasedVM(vm_id=0, spec=VMSpec("t", 1.0, 1.0),
                     interval=TimeInterval(1, 10),
                     phases=(DemandPhase(3, 1.0, 1.0),))

    def test_spec_must_be_peak(self):
        with pytest.raises(ValidationError, match="peak"):
            PhasedVM(vm_id=0, spec=VMSpec("t", 99.0, 1.0),
                     interval=TimeInterval(1, 2),
                     phases=(DemandPhase(2, 1.0, 1.0),))

    def test_needs_phases(self):
        with pytest.raises(ValidationError):
            PhasedVM(vm_id=0, spec=VMSpec("t", 1.0, 1.0),
                     interval=TimeInterval(1, 2), phases=())

    def test_cpu_time_integrates_phases(self):
        # 2*2 + 3*6 + 1*3 = 25
        assert ramp_vm().cpu_time == 25.0

    def test_demand_at(self):
        vm = ramp_vm(start=5)
        assert vm.demand_at(5) == (2.0, 4.0)
        assert vm.demand_at(6) == (2.0, 4.0)
        assert vm.demand_at(7) == (6.0, 4.0)
        assert vm.demand_at(10) == (3.0, 4.0)
        assert vm.demand_at(11) == (0.0, 0.0)

    def test_demand_profile_pieces(self):
        pieces = list(demand_profile(ramp_vm()))
        assert pieces == [
            (TimeInterval(1, 2), 2.0, 4.0),
            (TimeInterval(3, 5), 6.0, 4.0),
            (TimeInterval(6, 6), 3.0, 4.0),
        ]

    def test_plain_vm_profile_single_piece(self):
        vm = VM(0, VMSpec("t", 2.0, 3.0), TimeInterval(4, 9))
        assert list(demand_profile(vm)) == [(TimeInterval(4, 9), 2.0, 3.0)]
        assert demand_at(vm, 5) == (2.0, 3.0)
        assert demand_at(vm, 10) == (0.0, 0.0)


class TestSplitVM:
    def test_plain_split(self):
        vm = VM(0, VMSpec("t", 2.0, 3.0), TimeInterval(1, 10))
        head, tail = split_vm(vm, 4, 100, 101)
        assert head.interval == TimeInterval(1, 3)
        assert tail.interval == TimeInterval(4, 10)
        assert head.vm_id == 100 and tail.vm_id == 101

    def test_phased_split_preserves_profile(self):
        vm = ramp_vm()
        head, tail = split_vm(vm, 4, 100, 101)
        # Demand at every time unit must be identical pre/post split.
        for t in range(1, 7):
            combined = (demand_at(head, t)[0] + demand_at(tail, t)[0],
                        demand_at(head, t)[1] + demand_at(tail, t)[1])
            assert combined == vm.demand_at(t)
        assert head.cpu_time + tail.cpu_time == vm.cpu_time

    def test_split_at_phase_boundary(self):
        head, tail = split_vm(ramp_vm(), 3, 100, 101)
        assert isinstance(head, PhasedVM) and len(head.phases) == 1
        assert len(tail.phases) == 2

    def test_split_outside_rejected(self):
        vm = ramp_vm()
        with pytest.raises(ValidationError):
            split_vm(vm, 1, 100, 101)
        with pytest.raises(ValidationError):
            split_vm(vm, 7, 100, 101)


class TestRunEnergy:
    def test_uses_phase_integral(self):
        # W = P1 * cpu_time = 5 * 25
        assert run_energy(SPEC, ramp_vm()) == 125.0

    def test_cheaper_than_constant_peak(self):
        peak_vm = VM(1, VMSpec("t", 6.0, 4.0), TimeInterval(1, 6))
        assert run_energy(SPEC, ramp_vm()) < run_energy(SPEC, peak_vm)


class TestServerStatePhased:
    def test_fits_uses_per_phase_demand(self):
        state = ServerState(Server(0, SPEC))
        state.place(ramp_vm(0))  # cpu profile: 2,2,6,6,6,3
        # A VM needing 7 cu during [1,2] fits (2+7 <= 10); it would not
        # fit under the conservative peak interpretation (6+7 > 10).
        assert state.probe(VM(1, VMSpec("t", 7.0, 5.0),
                               TimeInterval(1, 2))).feasible
        # But not during the high phase.
        assert not state.probe(VM(2, VMSpec("t", 7.0, 5.0),
                                  TimeInterval(3, 4))).feasible

    def test_place_and_remove_roundtrip(self):
        state = ServerState(Server(0, SPEC))
        vm = ramp_vm(0)
        state.place(vm)
        state.remove(vm)
        assert state.is_empty
        assert state.probe(VM(1, VMSpec("t", 10.0, 10.0),
                               TimeInterval(1, 6))).feasible

    def test_incremental_cost_counts_phase_run_energy(self):
        state = ServerState(Server(0, SPEC))
        # run 125 + busy idle 300 + wake 100
        assert state.incremental_cost(ramp_vm()) == pytest.approx(525.0)


class TestAllocationValidatePhased:
    def test_phase_aware_validation_accepts_staggered(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        ramp = ramp_vm(0)
        filler = VM(1, VMSpec("t", 7.0, 5.0), TimeInterval(1, 2))
        allocation = Allocation(cluster, {ramp: 0, filler: 0})
        allocation.validate()  # peak-based checking would reject this

    def test_detects_phase_overload(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        ramp = ramp_vm(0)
        clash = VM(1, VMSpec("t", 5.0, 5.0), TimeInterval(3, 4))
        allocation = Allocation(cluster, {ramp: 0, clash: 0})
        assert not allocation.is_valid()


class TestUtilizationPhased:
    def test_profiles_follow_phases(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        allocation = Allocation(cluster, {ramp_vm(0): 0})
        stats = utilization_stats(allocation)
        # mean over 2,2,6,6,6,3 = 25/6 cu of 10
        assert stats.cpu == pytest.approx(25 / 60)


class TestEndToEndPhased:
    @pytest.fixture
    def workload(self):
        wl = PhasedWorkload(mean_interarrival=2.0, mean_duration=6.0)
        return wl.generate(30, rng=0)

    def test_generator_invariants(self, workload):
        assert len(workload) == 30
        for vm in workload:
            assert isinstance(vm, PhasedVM)
            assert sum(p.duration for p in vm.phases) == vm.duration
            assert max(p.cpu for p in vm.phases) == pytest.approx(vm.cpu)

    def test_allocators_handle_phased(self, workload):
        cluster = Cluster.paper_all_types(15)
        for algo in ("min-energy", "ffps", "best-fit"):
            allocation = make_allocator(algo, seed=0).allocate(
                workload, cluster)
            allocation.validate(vms=workload)

    def test_des_matches_analytic_for_phased(self, workload):
        cluster = Cluster.paper_all_types(15)
        allocation = MinIncrementalEnergy().allocate(workload, cluster)
        sim = SimulationEngine(cluster).replay(allocation)
        assert sim.total_energy == pytest.approx(
            allocation_cost(allocation).total, rel=1e-9)

    def test_ilp_handles_phased(self):
        wl = PhasedWorkload(mean_interarrival=2.0, mean_duration=4.0)
        vms = wl.generate(6, rng=3)
        cluster = Cluster.paper_all_types(5)
        result = solve_ilp(vms, cluster)
        assert result.objective == pytest.approx(
            allocation_cost(result.allocation).total, rel=1e-9)
        heuristic = allocation_cost(
            MinIncrementalEnergy().allocate(vms, cluster)).total
        assert result.objective <= heuristic + 1e-6

    def test_phased_never_costlier_than_peak_equivalent(self, workload):
        # Replacing each phased VM by its constant-peak twin can only
        # increase the optimal-for-the-heuristic energy.
        cluster = Cluster.paper_all_types(15)
        phased_cost = allocation_cost(
            MinIncrementalEnergy().allocate(workload, cluster)).total
        peaked = [VM(vm.vm_id, vm.spec, vm.interval) for vm in workload]
        peak_cost = allocation_cost(
            MinIncrementalEnergy().allocate(peaked, cluster)).total
        assert phased_cost <= peak_cost + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_stack_consistency(self, seed):
        from repro.model.catalog import STANDARD_VM_TYPES

        # standard types fit every server, so any draw is feasible
        wl = PhasedWorkload(mean_interarrival=2.0, mean_duration=5.0,
                            vm_types=STANDARD_VM_TYPES)
        vms = wl.generate(15, rng=seed)
        cluster = Cluster.paper_all_types(8)
        allocation = MinIncrementalEnergy().allocate(vms, cluster)
        allocation.validate(vms=vms)
        sim = SimulationEngine(cluster).replay(allocation)
        assert sim.total_energy == pytest.approx(
            allocation_cost(allocation).total, rel=1e-9)
