"""Tests for plan diagnostics and the online timeout sleep policy."""

from __future__ import annotations

import pytest

from repro.allocators import MinIncrementalEnergy
from repro.analysis.diagnostics import diagnose
from repro.energy.cost import SleepPolicy, allocation_cost
from repro.energy.timeout import best_timeout, timeout_energy
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestDiagnostics:
    def plan(self, seed=0):
        vms = generate_vms(60, mean_interarrival=3.0, seed=seed)
        cluster = Cluster.paper_all_types(30)
        return MinIncrementalEnergy().allocate(vms, cluster)

    def test_totals_match_accounting(self):
        plan = self.plan()
        diag = diagnose(plan)
        assert diag.total_energy == pytest.approx(
            allocation_cost(plan).total)
        assert diag.vms == 60
        assert diag.servers_used == len(plan.used_servers())

    def test_type_usage_sums(self):
        diag = diagnose(self.plan())
        assert sum(u.servers_used for u in diag.by_type.values()) == \
            diag.servers_used
        assert sum(u.vms for u in diag.by_type.values()) == diag.vms
        assert sum(u.energy for u in diag.by_type.values()) == \
            pytest.approx(diag.total_energy)

    def test_gini_bounds(self):
        diag = diagnose(self.plan())
        assert 0.0 <= diag.energy_gini <= 1.0

    def test_single_server_gini_zero(self):
        cluster = Cluster.homogeneous(SPEC, 2)
        plan = Allocation(cluster, {make_vm(0, 1, 5): 0})
        assert diagnose(plan).energy_gini == 0.0

    def test_stranded_ratios_bounded(self):
        diag = diagnose(self.plan())
        assert 0.0 <= diag.stranded_cpu_ratio <= 1.0
        assert 0.0 <= diag.stranded_memory_ratio <= 1.0

    def test_empty_allocation(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        diag = diagnose(Allocation(cluster, {}))
        assert diag.total_energy == 0.0
        assert diag.vms_per_used_server == 0.0

    def test_spreader_uses_more_servers_than_packer(self):
        # Round-robin cycles the whole fleet; min-energy concentrates.
        from repro.allocators import RoundRobin

        vms = generate_vms(60, mean_interarrival=2.0, seed=1)
        cluster = Cluster.paper_all_types(30)
        packed = diagnose(MinIncrementalEnergy().allocate(vms, cluster))
        spread = diagnose(RoundRobin().allocate(vms, cluster))
        assert spread.servers_used > packed.servers_used
        assert spread.vms_per_used_server < packed.vms_per_used_server

    def test_format(self):
        out = diagnose(self.plan()).format()
        assert "stranded capacity" in out
        assert "by server type" in out


class TestTimeoutPolicy:
    def test_best_timeout_formula(self):
        assert best_timeout(50.0, 100.0) == 2.0
        with pytest.raises(ValidationError):
            best_timeout(0.0, 100.0)

    def test_negative_timeout_rejected(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        plan = Allocation(cluster, {make_vm(0, 1, 2): 0})
        with pytest.raises(ValidationError):
            timeout_energy(plan, timeout=-1.0)

    def test_no_gaps_matches_clairvoyant(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        plan = Allocation(cluster, {make_vm(0, 1, 5): 0})
        assert timeout_energy(plan) == pytest.approx(
            allocation_cost(plan).total)

    def test_short_gap_idles_through(self):
        # 1-unit gap <= timeout 2: idle cost 50, same as clairvoyant.
        cluster = Cluster.homogeneous(SPEC, 1)
        plan = Allocation(cluster, {make_vm(0, 1, 1): 0,
                                    make_vm(1, 3, 3): 0})
        assert timeout_energy(plan) == pytest.approx(
            allocation_cost(plan).total)

    def test_long_gap_pays_timeout_plus_wake(self):
        # 10-unit gap, timeout 2: online pays 50*2 + 100 = 200 where the
        # clairvoyant policy pays min(500, 100) = 100.
        cluster = Cluster.homogeneous(SPEC, 1)
        plan = Allocation(cluster, {make_vm(0, 1, 1): 0,
                                    make_vm(1, 12, 12): 0})
        clairvoyant = allocation_cost(plan).total
        online = timeout_energy(plan)
        assert online == pytest.approx(clairvoyant + 100.0)

    def test_ski_rental_two_competitive_per_gap(self):
        # Online never exceeds twice the clairvoyant gap cost, so the
        # total is bounded by 2x (loose, since non-gap terms are shared).
        for seed in range(4):
            vms = generate_vms(50, mean_interarrival=5.0, seed=seed)
            cluster = Cluster.paper_all_types(25)
            plan = MinIncrementalEnergy().allocate(vms, cluster)
            clairvoyant = allocation_cost(plan).total
            online = timeout_energy(plan)
            assert clairvoyant <= online <= 2 * clairvoyant + 1e-6

    def test_zero_timeout_is_always_sleep(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        plan = Allocation(cluster, {make_vm(0, 1, 1): 0,
                                    make_vm(1, 3, 3): 0})
        always = allocation_cost(plan,
                                 policy=SleepPolicy.ALWAYS_SLEEP).total
        assert timeout_energy(plan, timeout=0.0) == pytest.approx(always)

    def test_huge_timeout_is_never_sleep(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        plan = Allocation(cluster, {make_vm(0, 1, 1): 0,
                                    make_vm(1, 50, 50): 0})
        never = allocation_cost(plan,
                                policy=SleepPolicy.NEVER_SLEEP).total
        assert timeout_energy(plan, timeout=1e9) == pytest.approx(never)
