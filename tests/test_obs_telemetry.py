"""Unit tests for the correlated-observability primitives: trace
context, structured JSON logging, the fleet telemetry ring, the SLO
burn-rate tracker, and the flight recorder."""

from __future__ import annotations

import json
import re

import pytest

from repro.exceptions import ServiceError, ValidationError
from repro.obs import (
    FlightRecorder,
    JsonLogger,
    SLOConfig,
    SLOTracker,
    TelemetryRing,
    TelemetrySample,
    TraceContext,
    get_logger,
    use_logger,
)
from repro.obs.context import new_request_id, new_trace_id, \
    trace_context_of
from repro.obs.flight import MAX_LIST_ITEMS, MAX_STRING_LENGTH
from repro.obs.logging import NULL_LOGGER, NullLogger, set_logger
from repro.obs.telemetry import samples_from_records
from repro.obs.tracer import COUNTER


def make_sample(tick: int, **overrides) -> TelemetrySample:
    fields = dict(tick=tick, servers_active=2, servers_asleep=3,
                  servers_failed=0, running_vms=5, fleet_power=150.0,
                  energy_accumulated=1200.0, fragmentation=0.25,
                  inflight=1, pending=0, placed=5, rejected=0)
    fields.update(overrides)
    return TelemetrySample(**fields)


class TestTraceContext:
    def test_minted_ids_are_lowercase_hex(self):
        assert re.fullmatch(r"[0-9a-f]{16}", new_trace_id())
        assert re.fullmatch(r"[0-9a-f]{8}", new_request_id())

    def test_new_contexts_are_distinct(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert a.trace_id != b.trace_id
        assert a.request_id != b.request_id

    def test_child_keeps_trace_changes_request(self):
        parent = TraceContext.new()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.request_id != parent.request_id

    def test_stamp_respects_existing_ids(self):
        ctx = TraceContext("t" * 16, "r" * 8)
        message = {"op": "ping", "trace_id": "mine"}
        ctx.stamp(message)
        assert message["trace_id"] == "mine"
        assert message["request_id"] == "r" * 8

    def test_context_of_keeps_carried_ids(self):
        ctx = trace_context_of({"trace_id": "abc", "request_id": "def"})
        assert (ctx.trace_id, ctx.request_id) == ("abc", "def")

    def test_context_of_mints_missing_ids(self):
        ctx = trace_context_of({"op": "ping"})
        assert re.fullmatch(r"[0-9a-f]{16}", ctx.trace_id)
        assert re.fullmatch(r"[0-9a-f]{8}", ctx.request_id)

    def test_partial_ids_keep_what_is_present(self):
        ctx = trace_context_of({"trace_id": "abc"})
        assert ctx.trace_id == "abc"
        assert re.fullmatch(r"[0-9a-f]{8}", ctx.request_id)

    @pytest.mark.parametrize("bad", [7, "", "   ", "x" * 129, "a\nb"])
    def test_malformed_ids_are_rejected(self, bad):
        with pytest.raises(ServiceError):
            trace_context_of({"trace_id": bad})
        with pytest.raises(ServiceError):
            trace_context_of({"request_id": bad})


class TestJsonLogger:
    def test_records_are_one_json_object_per_line(self):
        import io

        stream = io.StringIO()
        logger = JsonLogger(stream, wall=lambda: 100.0)
        logger.info("service.request", op="place", trace_id="abc")
        logger.error("service.request", op="place", error="boom")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"ts": 100.0, "level": "info",
                         "event": "service.request", "op": "place",
                         "trace_id": "abc"}
        assert json.loads(lines[1])["level"] == "error"

    def test_level_threshold_filters(self):
        records = []
        logger = JsonLogger(level="warning", sink=records.append)
        logger.debug("a")
        logger.info("b")
        logger.warning("c")
        logger.error("d")
        assert [r["event"] for r in records] == ["c", "d"]
        assert logger.enabled_for("error")
        assert not logger.enabled_for("info")

    def test_needs_a_destination(self):
        with pytest.raises(ValidationError):
            JsonLogger()
        with pytest.raises(ValidationError):
            JsonLogger(level="loud", sink=lambda r: None)
        with pytest.raises(ValidationError):
            JsonLogger(max_per_second=0, sink=lambda r: None)

    def test_rate_limit_suppresses_and_counts(self):
        records = []
        now = [0.0]
        logger = JsonLogger(sink=records.append, max_per_second=2,
                            clock=lambda: now[0])
        for _ in range(5):  # burst of 2, then 3 drops
            logger.info("hot.event")
        assert len(records) == 2
        assert logger.suppressed_total == 3
        now[0] += 1.0  # refill
        logger.info("hot.event")
        assert records[-1]["suppressed"] == 3
        assert logger.emitted == 3

    def test_rate_limit_is_per_event_name(self):
        records = []
        logger = JsonLogger(sink=records.append, max_per_second=1,
                            clock=lambda: 0.0)
        logger.info("a")
        logger.info("a")  # dropped
        logger.info("b")  # separate bucket, passes
        assert [r["event"] for r in records] == ["a", "b"]

    def test_unknown_level_rejected(self):
        logger = JsonLogger(sink=lambda r: None)
        with pytest.raises(ValidationError):
            logger.log("shout", "event")

    def test_global_logger_defaults_to_noop(self):
        assert get_logger() is NULL_LOGGER
        assert not NULL_LOGGER.enabled
        NULL_LOGGER.info("dropped")  # must not raise

    def test_use_logger_scopes_installation(self):
        records = []
        logger = JsonLogger(sink=records.append)
        with use_logger(logger):
            assert get_logger() is logger
            get_logger().info("inside")
        assert get_logger() is NULL_LOGGER
        assert [r["event"] for r in records] == ["inside"]

    def test_set_logger_none_restores_default(self):
        logger = JsonLogger(sink=lambda r: None)
        previous = set_logger(logger)
        try:
            assert previous is NULL_LOGGER
            assert get_logger() is logger
        finally:
            set_logger(None)
        assert get_logger() is NULL_LOGGER

    def test_null_logger_is_disabled_subclass(self):
        null = NullLogger()
        assert isinstance(null, JsonLogger)
        assert not null.enabled_for("error")


class TestTelemetrySample:
    def test_record_round_trip(self):
        sample = make_sample(7)
        assert TelemetrySample.from_record(sample.to_record()) == sample

    def test_from_record_coerces_json_numbers(self):
        record = make_sample(7).to_record()
        record["fleet_power"] = 150  # ints off the wire
        record["tick"] = 7.0
        sample = TelemetrySample.from_record(record)
        assert sample.fleet_power == 150.0
        assert isinstance(sample.fleet_power, float)
        assert sample.tick == 7 and isinstance(sample.tick, int)

    def test_samples_from_records_decodes_arrays(self):
        records = [make_sample(t).to_record() for t in (1, 2)]
        assert [s.tick for s in samples_from_records(records)] == [1, 2]


class TestTelemetryRing:
    def test_ring_keeps_newest_capacity_samples(self):
        ring = TelemetryRing(capacity=4)
        for tick in range(10):
            ring.record(make_sample(tick))
        assert [s.tick for s in ring.last()] == [6, 7, 8, 9]
        assert len(ring) == 4
        assert ring.latest().tick == 9

    def test_last_n_returns_newest_oldest_first(self):
        ring = TelemetryRing(capacity=8)
        for tick in range(5):
            ring.record(make_sample(tick))
        assert [s.tick for s in ring.last(2)] == [3, 4]
        assert [s.tick for s in ring.last(99)] == [0, 1, 2, 3, 4]
        with pytest.raises(ValidationError):
            ring.last(-1)

    def test_same_tick_sample_replaces_newest(self):
        ring = TelemetryRing(capacity=4)
        ring.record(make_sample(3, running_vms=1))
        ring.record(make_sample(3, running_vms=9))
        assert len(ring) == 1
        assert ring.latest().running_vms == 9

    def test_older_tick_is_dropped(self):
        ring = TelemetryRing(capacity=4)
        ring.record(make_sample(5))
        ring.record(make_sample(2))
        assert [s.tick for s in ring.last()] == [5]

    def test_capacity_zero_disables(self):
        ring = TelemetryRing(capacity=0)
        assert not ring.enabled
        ring.record(make_sample(1))
        assert len(ring) == 0 and ring.latest() is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            TelemetryRing(capacity=-1)

    def test_counter_events_on_simulated_clock(self):
        ring = TelemetryRing(capacity=8)
        ring.record(make_sample(2))
        ring.record(make_sample(3))
        events = ring.to_counter_events()
        assert len(events) == 6  # three tracks per sample
        assert {e.kind for e in events} == {COUNTER}
        assert {e.clock for e in events} == {"sim"}
        servers = [e for e in events if e.name == "fleet.servers"]
        assert [e.ts_ns for e in servers] == [2000, 3000]
        assert servers[0].args == {"active": 2, "asleep": 3, "failed": 0}
        power = [e for e in events if e.name == "fleet.power"]
        assert power[0].args == {"watts": 150.0}


class TestSLOConfig:
    def test_defaults_are_sane(self):
        config = SLOConfig()
        assert config.latency_objective == 0.1
        assert config.windows == (60.0, 300.0, 3600.0)

    @pytest.mark.parametrize("kwargs", [
        dict(latency_objective=0.0),
        dict(latency_target=1.0),
        dict(availability_target=0.0),
        dict(windows=()),
        dict(windows=(60.0, 60.0)),
        dict(windows=(300.0, 60.0)),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            SLOConfig(**kwargs)

    def test_record_round_trip(self):
        config = SLOConfig(latency_objective=0.05, latency_target=0.95,
                           availability_target=0.99, windows=(30, 600))
        restored = SLOConfig.from_record(
            json.loads(json.dumps(config.to_record())))
        assert restored == config
        assert restored.windows == (30.0, 600.0)


class TestSLOTracker:
    def make(self, **kwargs):
        now = [0.0]
        tracker = SLOTracker(
            SLOConfig(latency_objective=0.1, latency_target=0.9,
                      availability_target=0.9, windows=(10.0, 100.0)),
            clock=lambda: now[0], **kwargs)
        return tracker, now

    def test_all_good_is_healthy_zero_burn(self):
        tracker, _ = self.make()
        for _ in range(10):
            tracker.observe(0.01)
        report = tracker.report()
        assert report["healthy"]
        assert report["totals"] == {"requests": 10, "errors": 0,
                                    "slow": 0}
        for window in report["windows"]:
            assert window["latency_burn_rate"] == 0.0
            assert window["availability_burn_rate"] == 0.0

    def test_burn_rate_math(self):
        tracker, _ = self.make()
        # 2 slow of 10 with a 10% budget -> burn 2.0; 1 error -> 1.0
        for i in range(10):
            tracker.observe(0.5 if i < 2 else 0.01, ok=i != 0)
        report = tracker.report()
        window = report["windows"][0]
        assert window["requests"] == 10
        assert window["latency_burn_rate"] == pytest.approx(2.0)
        assert window["availability_burn_rate"] == pytest.approx(1.0)
        assert not report["healthy"]  # latency burning above 1.0

    def test_windows_age_out_observations(self):
        tracker, now = self.make()
        tracker.observe(0.5)  # slow, at t=0
        now[0] = 50.0  # beyond the 10s window, inside the 100s one
        tracker.observe(0.01)
        report = tracker.report()
        short, long = report["windows"]
        assert short["requests"] == 1 and short["slow"] == 0
        assert long["requests"] == 2 and long["slow"] == 1
        # lifetime totals never age out
        assert report["totals"]["requests"] == 2

    def test_observations_beyond_longest_window_are_pruned(self):
        tracker, now = self.make()
        tracker.observe(0.01)
        now[0] = 1000.0
        tracker.observe(0.01)
        assert len(tracker._observations) == 1

    def test_capacity_bounds_memory(self):
        tracker, _ = self.make(capacity=4)
        for _ in range(10):
            tracker.observe(0.01)
        assert len(tracker._observations) == 4
        with pytest.raises(ValidationError):
            SLOTracker(capacity=0)

    def test_empty_tracker_reports_healthy(self):
        tracker, _ = self.make()
        report = tracker.report()
        assert report["healthy"]
        assert all(w["requests"] == 0 for w in report["windows"])


class TestFlightRecorder:
    def record_one(self, recorder, seq_op="place", ok=True, **kwargs):
        recorder.record(op=seq_op, trace_id="t" * 16, request_id="r" * 8,
                        ok=ok, latency_ms=1.23456,
                        request=kwargs.get("request", {"op": seq_op}),
                        response=kwargs.get("response", {"ok": ok}),
                        error=kwargs.get("error"))

    def test_ring_keeps_newest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record(op=f"op{i}", trace_id="t", request_id="r",
                            ok=True, latency_ms=0.1, request={},
                            response={})
        assert [r.op for r in recorder.last()] == ["op2", "op3", "op4"]
        assert [r.seq for r in recorder.last()] == [3, 4, 5]
        assert len(recorder) == 3

    def test_compaction_drops_private_keys_and_truncates(self):
        recorder = FlightRecorder(capacity=2)
        request = {"op": "place_batch",
                   "_vms": ["parsed"],
                   "vms": list(range(MAX_LIST_ITEMS + 34)),
                   "note": "x" * (MAX_STRING_LENGTH + 10)}
        self.record_one(recorder, request=request)
        recorded = recorder.last()[0].request
        assert "_vms" not in recorded
        assert len(recorded["vms"]) == MAX_LIST_ITEMS + 1
        assert recorded["vms"][-1] == "... (+34 more)"
        assert recorded["note"].endswith("... (+10 chars)")

    def test_dump_is_json_safe_and_carries_error(self):
        recorder = FlightRecorder(capacity=4)
        self.record_one(recorder, ok=False, error="boom")
        self.record_one(recorder)
        dumped = json.loads(json.dumps(recorder.dump()))
        assert dumped[0]["error"] == "boom"
        assert "error" not in dumped[1]
        assert dumped[0]["latency_ms"] == 1.235  # rounded
        assert dumped[0]["trace_id"] == "t" * 16

    def test_dump_to_writes_document_with_reason(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        self.record_one(recorder)
        path = recorder.dump_to(tmp_path / "flight.json",
                                reason="unhandled RuntimeError")
        document = json.loads(path.read_text())
        assert document["reason"] == "unhandled RuntimeError"
        assert len(document["records"]) == 1

    def test_capacity_zero_disables(self):
        recorder = FlightRecorder(capacity=0)
        assert not recorder.enabled
        self.record_one(recorder)
        assert len(recorder) == 0
        with pytest.raises(ValidationError):
            FlightRecorder(capacity=-1)
