"""Retry/backoff behavior of :class:`repro.service.AllocationClient`,
driven entirely through fake connections — no daemon, no sockets, no
wall-clock sleeping."""

from __future__ import annotations

import json
import random

import pytest

from repro.exceptions import (
    OverloadedError,
    RetryableError,
    TransportError,
    ValidationError,
)
from repro.service import AllocationClient, ClientConfig


class FakeConnection:
    """One scripted daemon connection.

    ``script`` is a list of response lines (str), exceptions (raised on
    the read), or ``""`` (daemon closed the connection). Each request
    consumes one item; an exhausted script reads as closed.
    """

    def __init__(self, script):
        self.script = list(script)
        self.sent: list[str] = []
        self.closed = False

    def makefile(self, mode, encoding=None):
        return _Writer(self) if "w" in mode else _Reader(self)

    def close(self):
        self.closed = True


class _Writer:
    def __init__(self, conn):
        self._conn = conn

    def write(self, data):
        self._conn.sent.append(data)

    def flush(self):
        pass

    def close(self):
        pass


class _Reader:
    def __init__(self, conn):
        self._conn = conn

    def readline(self):
        if not self._conn.script:
            return ""
        item = self._conn.script.pop(0)
        if isinstance(item, Exception):
            raise item
        return item

    def close(self):
        pass


def ok_line(**extra):
    return json.dumps({"ok": True, **extra}) + "\n"


def overloaded_line(retry_after=None):
    payload = {"ok": False, "error": "overloaded"}
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return json.dumps(payload) + "\n"


def make_client(scripts, config):
    """A client whose successive (re)connections serve ``scripts``."""
    connections = [FakeConnection(script) if not isinstance(script, Exception)
                   else script for script in scripts]
    live = []
    delays = []

    def connect():
        item = connections.pop(0)
        if isinstance(item, Exception):
            raise item
        live.append(item)
        return item

    client = AllocationClient(config=config, connect=connect,
                              sleep=delays.append)
    return client, live, delays


class TestTransportRetry:
    def test_dead_connections_are_retried_then_succeed(self):
        # Two connections die before answering; the third answers.
        client, live, delays = make_client(
            [[], [], [ok_line(op="ping")]], ClientConfig(retries=2))
        assert client.ping()["ok"] is True
        assert len(live) == 3  # one reconnect per retry
        assert len(delays) == 2
        # The request went out on every attempt.
        assert sum(len(conn.sent) for conn in live) == 3

    def test_retries_resend_the_same_trace_and_request_ids(self):
        # Ids are stamped once, before the first attempt, so an
        # at-least-once duplicate is recognisable in the journal.
        client, live, _ = make_client(
            [[], [], [ok_line(op="ping")]], ClientConfig(retries=2))
        client.ping()
        attempts = [json.loads(conn.sent[0]) for conn in live]
        assert len(attempts) == 3
        assert len({a["trace_id"] for a in attempts}) == 1
        assert len({a["request_id"] for a in attempts}) == 1

    def test_mid_read_oserror_is_retried(self):
        client, live, _ = make_client(
            [[ConnectionResetError("peer reset")], [ok_line()]],
            ClientConfig(retries=1))
        assert client._request({"op": "ping"})["ok"] is True
        assert live[0].closed  # broken connection was torn down

    def test_exhausted_budget_raises_transport_error(self):
        client, live, delays = make_client(
            [[], [], [], [ok_line()]], ClientConfig(retries=2))
        with pytest.raises(TransportError):
            client.ping()
        assert len(live) == 3  # retries + 1 attempts, no more
        assert len(delays) == 2

    def test_zero_retries_fails_fast(self):
        client, live, delays = make_client([[], [ok_line()]],
                                           ClientConfig())
        with pytest.raises(TransportError):
            client.ping()
        assert len(live) == 1 and delays == []

    def test_reconnect_failure_counts_as_an_attempt(self):
        client, live, _ = make_client(
            [[], ConnectionRefusedError("down"), [ok_line()]],
            ClientConfig(retries=2))
        assert client.ping()["ok"] is True
        assert len(live) == 2  # the refused connect never went live

    def test_transport_error_is_retryable(self):
        assert issubclass(TransportError, RetryableError)
        assert issubclass(OverloadedError, RetryableError)


class TestBackoffSchedule:
    def test_exponential_with_cap(self):
        client, _, delays = make_client(
            [[], [], [], [], [ok_line()]],
            ClientConfig(retries=4, backoff=0.1, backoff_cap=0.4,
                         jitter=0.0))
        client.ping()
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.4])

    def test_seeded_jitter_is_reproducible(self):
        config = ClientConfig(retries=3, backoff=0.1, backoff_cap=1.0,
                              jitter=0.5, seed=42)
        client, _, delays = make_client([[], [], [], [ok_line()]], config)
        client.ping()
        rng = random.Random(42)
        expected = [min(1.0, 0.1 * 2 ** k) * (1 + 0.5 * rng.random())
                    for k in range(3)]
        assert delays == pytest.approx(expected)
        # Same seed, same schedule.
        repeat, _, repeat_delays = make_client(
            [[], [], [], [ok_line()]], config)
        repeat.ping()
        assert repeat_delays == pytest.approx(delays)


class TestOverloaded:
    def test_overload_waits_at_least_retry_after(self):
        client, _, delays = make_client(
            [[overloaded_line(retry_after=0.7), ok_line()]],
            ClientConfig(retries=1, backoff=0.01))
        assert client._request({"op": "tick", "now": 3})["ok"] is True
        assert delays == [0.7]  # daemon hint dominates the backoff

    def test_backoff_dominates_small_retry_after(self):
        client, _, delays = make_client(
            [[overloaded_line(retry_after=0.001), ok_line()]],
            ClientConfig(retries=1, backoff=0.5, jitter=0.0))
        client.ping()
        assert delays == [0.5]

    def test_exhausted_overload_raises_with_hint(self):
        client, _, _ = make_client(
            [[overloaded_line(retry_after=0.25)]], ClientConfig())
        with pytest.raises(OverloadedError) as excinfo:
            client.ping()
        assert excinfo.value.retry_after == 0.25

    def test_overload_without_hint_uses_backoff(self):
        client, _, delays = make_client(
            [[overloaded_line(), ok_line()]],
            ClientConfig(retries=1, backoff=0.2, jitter=0.0))
        client.ping()
        assert delays == [0.2]


class TestTerminalErrors:
    def test_structured_daemon_errors_are_not_retried(self):
        error = json.dumps({"ok": False, "error": "unknown op 'nope'",
                            "supported_ops": ["place"]}) + "\n"
        client, live, delays = make_client(
            [[error, ok_line()]], ClientConfig(retries=5))
        response = client._request({"op": "nope"})
        assert response["ok"] is False
        assert response["supported_ops"] == ["place"]
        assert delays == []  # no retry budget consumed
        assert len(live[0].sent) == 1

    def test_config_validation(self):
        for bad in (dict(timeout=0.0), dict(retries=-1),
                    dict(backoff=-0.1), dict(backoff_cap=-1.0),
                    dict(jitter=-0.5)):
            with pytest.raises(ValidationError):
                ClientConfig(**bad)

    def test_timeout_must_live_in_the_config(self):
        with pytest.raises(ValidationError):
            AllocationClient(timeout=5.0, config=ClientConfig(timeout=9.0),
                             connect=lambda: FakeConnection([]))


class TestSurface:
    def test_daemon_client_alias_is_gone(self):
        import repro.service as service

        assert not hasattr(service, "DaemonClient")
        assert ClientConfig().retries == 0

    def test_raw_request_escape_hatch_is_gone(self):
        client, _, _ = make_client([[ok_line(op="ping")]], ClientConfig())
        assert not hasattr(client, "request")

    def test_v3_envelope_classifies_overload(self):
        line = json.dumps({"ok": False, "error": {
            "code": "overloaded", "message": "shed", "retryable": True,
            "retry_after": 0.4}}) + "\n"
        client, _, delays = make_client(
            [[line, ok_line()]], ClientConfig(retries=1, backoff=0.01))
        assert client.ping()["ok"] is True
        assert delays == [0.4]

    def test_v3_terminal_envelope_is_not_retried(self):
        line = json.dumps({"ok": False, "error": {
            "code": "bad_request", "message": "no vm",
            "retryable": False}}) + "\n"
        client, live, delays = make_client(
            [[line, ok_line()]], ClientConfig(retries=5))
        response = client._request({"op": "place"})
        assert response["ok"] is False
        assert delays == []
        assert len(live[0].sent) == 1
