"""Tests for the power model and per-VM run energy (Eqs. 1-3)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.energy.power import AffinePowerModel, run_energy
from repro.exceptions import ValidationError
from repro.model.server import ServerSpec

from conftest import make_vm


SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0)


class TestAffinePowerModel:
    def test_active_power_delegates_to_spec(self):
        model = AffinePowerModel()
        assert model.active_power(SPEC, 0.0) == 50.0
        assert model.active_power(SPEC, 10.0) == 100.0
        assert model.active_power(SPEC, 4.0) == 70.0

    def test_idle_power(self):
        assert AffinePowerModel().idle_power(SPEC) == 50.0


class TestRunEnergy:
    def test_w_ij_formula(self):
        # W = P1 * cpu * duration = 5 * 2 * 3
        vm = make_vm(0, 1, 3, cpu=2.0)
        assert run_energy(SPEC, vm) == 30.0

    def test_single_time_unit(self):
        vm = make_vm(0, 5, 5, cpu=4.0)
        assert run_energy(SPEC, vm) == 20.0

    def test_rejects_vm_that_never_fits_cpu(self):
        with pytest.raises(ValidationError):
            run_energy(SPEC, make_vm(0, 1, 2, cpu=11.0))

    def test_rejects_vm_that_never_fits_memory(self):
        with pytest.raises(ValidationError):
            run_energy(SPEC, make_vm(0, 1, 2, memory=11.0))

    def test_zero_marginal_power_server(self):
        flat = ServerSpec("flat", cpu_capacity=10.0, memory_capacity=10.0,
                          p_idle=80.0, p_peak=80.0)
        assert run_energy(flat, make_vm(0, 1, 9, cpu=5.0)) == 0.0

    @given(st.floats(0.1, 10.0), st.integers(1, 50))
    def test_energy_scales_linearly(self, cpu, duration):
        vm = make_vm(0, 1, duration, cpu=cpu)
        expected = SPEC.power_per_cpu_unit * cpu * duration
        assert run_energy(SPEC, vm) == pytest.approx(expected)

    def test_separability(self):
        # With the affine model, VM energies add up independently of
        # co-location: W(v1) + W(v2) equals the integral of the marginal
        # power with both resident.
        v1 = make_vm(0, 1, 4, cpu=3.0)
        v2 = make_vm(1, 1, 4, cpu=4.0)
        both = (SPEC.power_at_load(7.0) - SPEC.p_idle) * 4
        assert run_energy(SPEC, v1) + run_energy(SPEC, v2) == \
            pytest.approx(both)
