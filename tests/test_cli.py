"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "min-energy"
        assert args.vms == 100

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "min-energy" in out
        assert "ffps" in out

    def test_table_vms(self, capsys):
        assert main(["table", "vms"]) == 0
        assert "standard-1" in capsys.readouterr().out

    def test_table_servers(self, capsys):
        assert main(["table", "servers"]) == 0
        assert "type5" in capsys.readouterr().out

    def test_run_small(self, capsys):
        code = main(["run", "--vms", "30", "--interarrival", "3",
                     "--seeds", "0", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy reduction" in out
        assert "ffps energy" in out

    def test_run_other_algorithm(self, capsys):
        code = main(["run", "--vms", "30", "--algorithm", "best-fit",
                     "--seeds", "0"])
        assert code == 0
        assert "best-fit" in capsys.readouterr().out

    def test_figure_quick(self, capsys):
        assert main(["figure", "fig3", "--quick"]) == 0
        assert "ours cpu %" in capsys.readouterr().out

    def test_figure_ilp_gap_quick(self, capsys):
        assert main(["figure", "ilp-gap", "--quick"]) == 0
        assert "optimal" in capsys.readouterr().out

    def test_trace_csv(self, tmp_path, capsys):
        out_file = tmp_path / "t.csv"
        assert main(["trace", "--vms", "10", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "wrote 10 VMs" in capsys.readouterr().out

    def test_trace_json(self, tmp_path):
        out_file = tmp_path / "t.json"
        assert main(["trace", "--vms", "5", "--out", str(out_file)]) == 0
        from repro.workload.trace import Trace
        assert len(Trace.load_json(out_file)) == 5

    def test_domain_error_returns_one(self, capsys):
        # 1 VM but server_ratio still 0.5 -> 1 server; a fine scenario,
        # so instead trigger by unsatisfiable VM count = 0.
        code = main(["run", "--vms", "0", "--seeds", "0"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestServiceCommands:
    def test_no_subcommand_prints_usage_and_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7077
        assert args.servers == 100
        assert args.algorithm == "min-energy"
        assert args.max_delay == 0
        assert args.snapshot_every == 100
        assert not args.stdio and not args.restore

    def test_client_defaults(self):
        args = build_parser().parse_args(["client"])
        assert args.port == 7077
        assert args.host == "127.0.0.1"
        assert not args.shutdown

    def test_serve_restore_requires_data_dir(self, capsys):
        assert main(["serve", "--restore", "--stdio"]) == 2
        assert "--data-dir" in capsys.readouterr().err

    def test_serve_stdio_session(self, monkeypatch, capsys):
        import io
        import json
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(
            '{"op": "place", "vm": {"vm_id": 0, "cpu": 1.0,'
            ' "memory": 1.0, "start": 1, "end": 4, "type": "t"}}\n'
            '{"op": "stats"}\n'
            '{"op": "shutdown"}\n'))
        assert main(["serve", "--stdio", "--servers", "2"]) == 0
        captured = capsys.readouterr()
        assert "cluster: 2 servers" in captured.err
        responses = [json.loads(line)
                     for line in captured.out.splitlines()]
        assert responses[0]["decision"] == "placed"
        assert responses[1]["placed"] == 1
        assert responses[2]["op"] == "shutdown"

    def test_algo_param_parsing_and_coercion(self):
        from repro.cli import _parse_algo_params
        params = _parse_algo_params([
            "seed=7", "policy=never-sleep", "ratio=0.5",
            "flag=true", "opt=none", "name=plain"])
        assert params == {"seed": 7, "policy": "never-sleep",
                          "ratio": 0.5, "flag": True, "opt": None,
                          "name": "plain"}

    def test_algo_param_rejects_malformed_pair(self):
        from repro.cli import _parse_algo_params
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            _parse_algo_params(["no-equals-sign"])

    def test_serve_algo_param_plumbs_to_allocator(self, monkeypatch,
                                                  capsys):
        import io
        import json
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(
            '{"op": "shutdown"}\n'))
        assert main(["serve", "--stdio", "--servers", "2",
                     "--algorithm", "ffps",
                     "--algo-param", "policy=never-sleep",
                     "--algo-param", "engine=dense"]) == 0
        assert json.loads(capsys.readouterr().out.splitlines()[0])["ok"]

    def test_serve_bad_algo_param_is_refused(self, monkeypatch, capsys):
        import io
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(""))
        assert main(["serve", "--stdio", "--servers", "2",
                     "--algo-param", "temperature=0.5"]) == 1
        assert "temperature" in capsys.readouterr().err


class TestObservabilityCommands:
    def test_explain_prints_decision_table(self, capsys):
        assert main(["explain", "--vms", "12", "--servers", "4",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "decision" in out
        assert "min-energy on 4 servers" in out

    def test_explain_rejections_show_failing_constraints(self, capsys):
        assert main(["explain", "--vms", "20", "--servers", "2",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "rejected" in out
        assert "infeasible:" in out

    def test_explain_single_vm_detail(self, capsys):
        assert main(["explain", "--vms", "8", "--servers", "4",
                     "--seed", "0", "--vm-id", "3"]) == 0
        out = capsys.readouterr().out
        assert "vm 3 ->" in out

    def test_explain_unknown_vm_id_fails(self, capsys):
        assert main(["explain", "--vms", "5", "--servers", "4",
                     "--vm-id", "999"]) == 1
        assert "not in the workload" in capsys.readouterr().err

    def test_trace_generate_requires_out(self, capsys):
        assert main(["trace", "--vms", "5"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_trace_views_chrome_trace(self, tmp_path, capsys):
        from repro import (
            Cluster,
            MinIncrementalEnergy,
            Tracer,
            simulate_online,
            use_tracer,
            write_chrome_trace,
        )
        from repro.workload.generator import generate_vms

        tracer = Tracer()
        with use_tracer(tracer):
            simulate_online(generate_vms(10, mean_interarrival=2.0,
                                         seed=0),
                            Cluster.paper_all_types(8),
                            MinIncrementalEnergy())
        path = tmp_path / "spans.json"
        write_chrome_trace(tracer.events, path)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "simulate_online" in out
        assert "engine.replay" in out

    def test_trace_view_rejects_non_trace_file(self, tmp_path, capsys):
        path = tmp_path / "not_a_trace.json"
        path.write_text('{"hello": 1}')
        assert main(["trace", str(path)]) == 1
        assert "traceEvents" in capsys.readouterr().err

    def test_trace_view_explains_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert main(["trace", str(path)]) == 1
        err = capsys.readouterr().err
        assert "empty trace file" in err
        path.write_text("   \n")
        assert main(["trace", str(path)]) == 1
        assert "empty trace file" in capsys.readouterr().err

    def test_trace_view_explains_torn_final_line(self, tmp_path, capsys):
        path = tmp_path / "torn.json"
        path.write_text('{"traceEvents": [{"name": "a", "ph": "X"')
        assert main(["trace", str(path)]) == 1
        assert "truncated trace file" in capsys.readouterr().err

    def test_trace_view_explains_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_serve_trace_out_writes_chrome_trace(self, monkeypatch,
                                                 tmp_path, capsys):
        import io
        import json
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(
            '{"op": "place", "vm": {"vm_id": 0, "cpu": 1.0,'
            ' "memory": 1.0, "start": 1, "end": 4, "type": "t"}}\n'
            '{"op": "shutdown"}\n'))
        out_path = tmp_path / "spans.json"
        assert main(["serve", "--stdio", "--servers", "2",
                     "--trace-out", str(out_path)]) == 0
        captured = capsys.readouterr()
        assert "trace events" in captured.err
        document = json.loads(out_path.read_text())
        names = {e.get("name") for e in document["traceEvents"]}
        assert "service.request" in names
        assert "service.place" in names

    def test_serve_log_json_emits_structured_lines(self, monkeypatch,
                                                   capsys):
        import io
        import json
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(
            '{"op": "place", "vm": {"vm_id": 0, "cpu": 1.0,'
            ' "memory": 1.0, "start": 1, "end": 4, "type": "t"},'
            ' "trace_id": "cli-test-trace"}\n'
            '{"op": "shutdown"}\n'))
        assert main(["serve", "--stdio", "--servers", "2",
                     "--log-json", "--log-level", "info"]) == 0
        err_lines = capsys.readouterr().err.splitlines()
        records = [json.loads(line) for line in err_lines
                   if line.startswith("{")]
        requests = [r for r in records
                    if r["event"] == "service.request"]
        assert requests[0]["op"] == "place"
        assert requests[0]["trace_id"] == "cli-test-trace"
        assert requests[0]["decision"] == "placed"
        # The global logger is uninstalled on the way out.
        from repro.obs.logging import NULL_LOGGER, get_logger
        assert get_logger() is NULL_LOGGER


class TestTelemetryCommands:
    @pytest.fixture
    def live_daemon(self):
        import threading

        from repro.model.cluster import Cluster
        from repro.service import (
            AllocationDaemon,
            ClusterStateStore,
            place_request,
            serve_tcp,
        )
        from conftest import make_vm

        store = ClusterStateStore(Cluster.paper_all_types(6))
        daemon = AllocationDaemon(store)
        for i in range(3):
            daemon.handle(place_request(make_vm(i, i + 1, i + 5)))
        server = serve_tcp(daemon, port=0)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        try:
            yield daemon, server.server_address[1]
        finally:
            server.shutdown()
            server.server_close()

    def test_top_single_refresh(self, live_daemon, capsys):
        daemon, port = live_daemon
        assert main(["top", "--port", str(port), "--iterations", "1",
                     "--last", "2"]) == 0
        out = capsys.readouterr().out
        assert "fleet telemetry at tick" in out
        assert "power W" in out
        assert "slo: healthy" in out

    def test_slo_healthy_exits_zero(self, live_daemon, capsys):
        daemon, port = live_daemon
        assert main(["slo", "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "slo: healthy" in out
        assert "window" in out

    def test_slo_burning_exits_one(self, live_daemon, capsys):
        daemon, port = live_daemon
        # One error outcome torches the 99.9% availability budget.
        response = daemon.handle({"op": "telemetry", "v": 2, "last": 0})
        assert response["ok"] is False
        assert main(["slo", "--port", str(port)]) == 1
        assert "BURNING" in capsys.readouterr().out

    def test_top_cannot_reach_daemon(self, capsys):
        assert main(["top", "--port", "1", "--iterations", "1"]) == 1
        assert "cannot connect" in capsys.readouterr().err
