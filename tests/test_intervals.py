"""Unit and property tests for the interval algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.model.intervals import (
    TimeInterval,
    gaps_between,
    intervals_overlap,
    merge_intervals,
    total_length,
)


def interval_strategy(lo=0, hi=200):
    return st.tuples(st.integers(lo, hi), st.integers(0, 30)).map(
        lambda t: TimeInterval(t[0], t[0] + t[1]))


class TestTimeInterval:
    def test_length_is_inclusive(self):
        assert TimeInterval(3, 3).length == 1
        assert TimeInterval(3, 7).length == 5

    def test_rejects_reversed_endpoints(self):
        with pytest.raises(ValidationError):
            TimeInterval(5, 4)

    def test_rejects_non_integer_endpoints(self):
        with pytest.raises(ValidationError):
            TimeInterval(1.5, 3)  # type: ignore[arg-type]

    def test_contains_endpoints(self):
        iv = TimeInterval(2, 5)
        assert iv.contains(2)
        assert iv.contains(5)
        assert not iv.contains(1)
        assert not iv.contains(6)

    def test_overlaps_shared_unit(self):
        assert TimeInterval(1, 3).overlaps(TimeInterval(3, 5))

    def test_no_overlap_when_adjacent(self):
        a, b = TimeInterval(1, 3), TimeInterval(4, 6)
        assert not a.overlaps(b)
        assert a.adjacent(b)
        assert b.adjacent(a)

    def test_not_adjacent_with_gap(self):
        assert not TimeInterval(1, 3).adjacent(TimeInterval(5, 6))

    def test_intersection(self):
        assert TimeInterval(1, 5).intersection(TimeInterval(3, 9)) == \
            TimeInterval(3, 5)

    def test_intersection_disjoint_is_none(self):
        assert TimeInterval(1, 2).intersection(TimeInterval(4, 5)) is None

    def test_union_overlapping(self):
        assert TimeInterval(1, 4).union(TimeInterval(3, 8)) == \
            TimeInterval(1, 8)

    def test_union_adjacent(self):
        assert TimeInterval(1, 3).union(TimeInterval(4, 6)) == \
            TimeInterval(1, 6)

    def test_union_disjoint_raises(self):
        with pytest.raises(ValidationError):
            TimeInterval(1, 2).union(TimeInterval(5, 6))

    def test_shift(self):
        assert TimeInterval(2, 4).shift(3) == TimeInterval(5, 7)
        assert TimeInterval(2, 4).shift(-1) == TimeInterval(1, 3)

    def test_times_enumerates_units(self):
        assert list(TimeInterval(2, 5).times()) == [2, 3, 4, 5]

    def test_ordering_lexicographic(self):
        assert TimeInterval(1, 9) < TimeInterval(2, 3)
        assert TimeInterval(1, 2) < TimeInterval(1, 3)

    def test_hashable(self):
        assert len({TimeInterval(1, 2), TimeInterval(1, 2)}) == 1

    def test_str(self):
        assert str(TimeInterval(1, 5)) == "[1, 5]"


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_single(self):
        assert merge_intervals([TimeInterval(1, 2)]) == [TimeInterval(1, 2)]

    def test_merges_overlap(self):
        assert merge_intervals([TimeInterval(1, 4), TimeInterval(3, 6)]) == \
            [TimeInterval(1, 6)]

    def test_merges_adjacent(self):
        assert merge_intervals([TimeInterval(1, 3), TimeInterval(4, 6)]) == \
            [TimeInterval(1, 6)]

    def test_keeps_gap_separated(self):
        assert merge_intervals([TimeInterval(1, 3), TimeInterval(5, 6)]) == \
            [TimeInterval(1, 3), TimeInterval(5, 6)]

    def test_unsorted_input(self):
        merged = merge_intervals(
            [TimeInterval(10, 12), TimeInterval(1, 2), TimeInterval(2, 9)])
        assert merged == [TimeInterval(1, 12)]

    def test_nested_intervals(self):
        assert merge_intervals([TimeInterval(1, 10), TimeInterval(3, 4)]) == \
            [TimeInterval(1, 10)]

    @given(st.lists(interval_strategy(), max_size=30))
    def test_result_is_sorted_and_disjoint_with_gaps(self, intervals):
        merged = merge_intervals(intervals)
        for a, b in zip(merged, merged[1:]):
            assert a.end + 1 < b.start  # disjoint AND non-adjacent

    @given(st.lists(interval_strategy(), max_size=30))
    def test_merge_preserves_covered_units(self, intervals):
        covered = set()
        for iv in intervals:
            covered.update(iv.times())
        merged_units = set()
        for iv in merge_intervals(intervals):
            merged_units.update(iv.times())
        assert merged_units == covered

    @given(st.lists(interval_strategy(), max_size=20))
    def test_merge_is_idempotent(self, intervals):
        once = merge_intervals(intervals)
        assert merge_intervals(once) == once


class TestGapsBetween:
    def test_no_gap_for_single(self):
        assert gaps_between([TimeInterval(1, 5)]) == []

    def test_simple_gap(self):
        assert gaps_between([TimeInterval(1, 3), TimeInterval(7, 9)]) == \
            [TimeInterval(4, 6)]

    def test_no_gap_when_adjacent(self):
        assert gaps_between([TimeInterval(1, 3), TimeInterval(4, 6)]) == []

    def test_empty(self):
        assert gaps_between([]) == []

    @given(st.lists(interval_strategy(), min_size=1, max_size=25))
    def test_gaps_partition_the_span(self, intervals):
        merged = merge_intervals(intervals)
        gaps = gaps_between(intervals)
        span = TimeInterval(merged[0].start, merged[-1].end)
        busy = sum(iv.length for iv in merged)
        idle = sum(g.length for g in gaps)
        assert busy + idle == span.length

    @given(st.lists(interval_strategy(), min_size=1, max_size=25))
    def test_gaps_disjoint_from_busy(self, intervals):
        busy_units = set()
        for iv in merge_intervals(intervals):
            busy_units.update(iv.times())
        for gap in gaps_between(intervals):
            assert busy_units.isdisjoint(gap.times())


class TestTotalLength:
    def test_counts_distinct_units(self):
        assert total_length([TimeInterval(1, 4), TimeInterval(3, 6)]) == 6

    def test_empty(self):
        assert total_length([]) == 0


class TestIntervalsOverlap:
    def test_detects_overlap(self):
        assert intervals_overlap([TimeInterval(1, 5), TimeInterval(5, 9)])

    def test_adjacent_is_not_overlap(self):
        assert not intervals_overlap([TimeInterval(1, 4), TimeInterval(5, 9)])

    def test_empty_and_single(self):
        assert not intervals_overlap([])
        assert not intervals_overlap([TimeInterval(1, 2)])
