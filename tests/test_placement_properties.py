"""Property tests: the skyline engine is bit-equivalent to the dense oracle.

A random interleaving of place / remove / probe is applied to two
ServerStates that differ only in their occupancy engine. Verdicts and
peaks must agree exactly (``==`` on floats — both engines apply the same
IEEE-754 operation sequence per time unit), incremental costs to a 1e-12
relative tolerance (they share the cost code; the tolerance only guards
the comparison itself).
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.allocators.state import ServerState
from repro.model.server import Server, ServerSpec
from repro.placement import DenseOccupancy, SkylineOccupancy

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=8.0, memory_capacity=8.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)

# (kind, start, length, cpu_octets, mem_octets): kind 0 = place-or-probe,
# 1 = remove (modulo currently placed), 2 = probe only. Demands are odd
# multiples of 1/8 so sums exercise float accumulation but stay exact.
_OPS = st.tuples(st.integers(0, 2), st.integers(1, 60), st.integers(0, 10),
                 st.integers(1, 24), st.integers(1, 24))


def _pair() -> tuple[ServerState, ServerState]:
    return (ServerState(Server(0, SPEC), engine="indexed"),
            ServerState(Server(0, SPEC), engine="dense"))


def _agree(sky: ServerState, dense: ServerState, vm) -> None:
    vs, vd = sky.probe(vm), dense.probe(vm)
    assert vs.feasible == vd.feasible
    assert vs.reason == vd.reason
    assert vs.peak_cpu == vd.peak_cpu       # bit-exact, not approx
    assert vs.peak_mem == vd.peak_mem
    cs, cd = sky.incremental_cost(vm), dense.incremental_cost(vm)
    assert math.isclose(cs, cd, rel_tol=1e-12, abs_tol=1e-12)


class TestEngineEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_OPS, min_size=1, max_size=25))
    def test_random_interleaving(self, ops):
        sky, dense = _pair()
        placed = []
        for i, (kind, start, length, cpu8, mem8) in enumerate(ops):
            vm = make_vm(i, start, start + length,
                         cpu=cpu8 / 8.0, memory=mem8 / 8.0)
            _agree(sky, dense, vm)
            if kind == 1 and placed:
                victim = placed.pop(start % len(placed))
                d_sky = sky.remove(victim)
                d_dense = dense.remove(victim)
                assert math.isclose(d_sky, d_dense,
                                    rel_tol=1e-12, abs_tol=1e-12)
            elif kind != 2 and sky.probe(vm):
                assert sky.place(vm) == dense.place(vm)
                placed.append(vm)
            assert sky.busy_segments() == dense.busy_segments()
            assert math.isclose(sky.cost, dense.cost,
                                rel_tol=1e-12, abs_tol=1e-12)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_OPS, min_size=1, max_size=15), st.integers(1, 80))
    def test_probe_agreement_after_any_state(self, ops, probe_start):
        sky, dense = _pair()
        for i, (kind, start, length, cpu8, mem8) in enumerate(ops):
            vm = make_vm(i, start, start + length,
                         cpu=cpu8 / 8.0, memory=mem8 / 8.0)
            if sky.probe(vm):
                sky.place(vm)
                dense.place(vm)
        for length in (0, 1, 7, 40):
            probe = make_vm(999, probe_start, probe_start + length,
                            cpu=4.0, memory=4.0)
            _agree(sky, dense, probe)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(_OPS, min_size=2, max_size=20))
    def test_full_drain_returns_to_empty(self, ops):
        sky, dense = _pair()
        placed = []
        for i, (kind, start, length, cpu8, mem8) in enumerate(ops):
            vm = make_vm(i, start, start + length,
                         cpu=cpu8 / 8.0, memory=mem8 / 8.0)
            if sky.probe(vm):
                sky.place(vm)
                dense.place(vm)
                placed.append(vm)
        for vm in placed:
            sky.remove(vm)
            dense.remove(vm)
        assert sky.occupancy_points() == 0  # coalesced all the way down
        assert sky.cost == dense.cost == 0.0
        probe = make_vm(998, 1, 50, cpu=8.0, memory=8.0)
        assert sky.probe(probe).feasible and dense.probe(probe).feasible


class TestOccupancyEquivalence:
    """The raw occupancy indexes agree on peaks and probe verdicts."""

    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 50),
                              st.integers(0, 12), st.integers(1, 16),
                              st.integers(1, 16)),
                    min_size=1, max_size=20))
    def test_peaks_bit_equal(self, ops):
        sky, dense = SkylineOccupancy(), DenseOccupancy()
        live = []
        for is_remove, start, length, cpu8, mem8 in ops:
            if is_remove and live:
                s, e, c, m = live.pop()
                sky.subtract(s, e, c, m)
                dense.subtract(s, e, c, m)
            else:
                s, e = start, start + length
                c, m = cpu8 / 8.0, mem8 / 8.0
                sky.add(s, e, c, m)
                dense.add(s, e, c, m)
                live.append((s, e, c, m))
            for lo, hi in [(0, 70), (start, start + length), (25, 30)]:
                assert sky.peak(lo, hi) == dense.peak(lo, hi)
                assert sky.probe_piece(lo, hi, 2.0, 2.0, 8.0, 8.0, 1e-9) \
                    == dense.probe_piece(lo, hi, 2.0, 2.0, 8.0, 8.0, 1e-9)
