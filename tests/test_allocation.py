"""Tests for the Allocation container and its constraint validation."""

from __future__ import annotations

import pytest

from repro.exceptions import CapacityError, ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec

from conftest import make_vm


def cluster_of(cpu=10.0, mem=10.0, count=2):
    spec = ServerSpec("s", cpu_capacity=cpu, memory_capacity=mem,
                      p_idle=50.0, p_peak=100.0)
    return Cluster.homogeneous(spec, count)


class TestAccessors:
    def test_server_of_and_vms_on(self):
        cluster = cluster_of()
        a, b = make_vm(0, 1, 3), make_vm(1, 2, 5)
        alloc = Allocation(cluster, {a: 0, b: 1})
        assert alloc.server_of(a) == 0
        assert alloc.vms_on(1) == (b,)
        assert alloc.vms_on(0) == (a,)

    def test_vms_sorted_by_start(self):
        cluster = cluster_of()
        late, early = make_vm(0, 9, 10), make_vm(1, 1, 2)
        alloc = Allocation(cluster, {late: 0, early: 0})
        assert alloc.vms_on(0) == (early, late)
        assert alloc.vms == (early, late)

    def test_used_servers(self):
        cluster = cluster_of(count=3)
        alloc = Allocation(cluster, {make_vm(0, 1, 2): 2})
        assert alloc.used_servers() == (2,)

    def test_horizon(self):
        cluster = cluster_of()
        alloc = Allocation(cluster, {make_vm(0, 1, 7): 0})
        assert alloc.horizon() == 7

    def test_horizon_empty(self):
        assert Allocation(cluster_of(), {}).horizon() == 0

    def test_contains_and_len(self):
        cluster = cluster_of()
        vm = make_vm(0, 1, 2)
        alloc = Allocation(cluster, {vm: 0})
        assert vm in alloc
        assert len(alloc) == 1

    def test_server_of_unknown_vm_raises(self):
        alloc = Allocation(cluster_of(), {})
        with pytest.raises(ValidationError):
            alloc.server_of(make_vm(0, 1, 2))

    def test_rejects_unknown_server_id(self):
        with pytest.raises(ValidationError):
            Allocation(cluster_of(count=1), {make_vm(0, 1, 2): 5})


class TestValidation:
    def test_valid_allocation_passes(self):
        cluster = cluster_of()
        vms = [make_vm(0, 1, 3, cpu=5.0), make_vm(1, 2, 4, cpu=5.0)]
        alloc = Allocation(cluster, {vms[0]: 0, vms[1]: 0})
        alloc.validate(vms=vms)
        assert alloc.is_valid(vms=vms)

    def test_detects_cpu_overload(self):
        cluster = cluster_of(cpu=10.0)
        vms = [make_vm(0, 1, 3, cpu=6.0), make_vm(1, 3, 5, cpu=6.0)]
        alloc = Allocation(cluster, {vms[0]: 0, vms[1]: 0})
        with pytest.raises(CapacityError) as err:
            alloc.validate()
        assert err.value.server_id == 0
        assert err.value.time == 3  # the single overlapping unit

    def test_detects_memory_overload(self):
        cluster = cluster_of(mem=10.0)
        vms = [make_vm(0, 1, 4, memory=7.0), make_vm(1, 2, 3, memory=7.0)]
        alloc = Allocation(cluster, {vms[0]: 0, vms[1]: 0})
        with pytest.raises(CapacityError, match="memory"):
            alloc.validate()

    def test_no_overload_when_disjoint_in_time(self):
        cluster = cluster_of(cpu=10.0)
        vms = [make_vm(0, 1, 3, cpu=8.0), make_vm(1, 4, 6, cpu=8.0)]
        alloc = Allocation(cluster, {vms[0]: 0, vms[1]: 0})
        alloc.validate()

    def test_exact_capacity_is_feasible(self):
        cluster = cluster_of(cpu=10.0, mem=10.0)
        vms = [make_vm(0, 1, 3, cpu=5.0, memory=5.0),
               make_vm(1, 1, 3, cpu=5.0, memory=5.0)]
        alloc = Allocation(cluster, {vms[0]: 0, vms[1]: 0})
        alloc.validate()

    def test_detects_missing_vm(self):
        cluster = cluster_of()
        placed = make_vm(0, 1, 2)
        missing = make_vm(1, 1, 2)
        alloc = Allocation(cluster, {placed: 0})
        with pytest.raises(ValidationError, match="not placed"):
            alloc.validate(vms=[placed, missing])

    def test_is_valid_false_on_overload(self):
        cluster = cluster_of(cpu=10.0)
        vms = [make_vm(0, 1, 3, cpu=9.0), make_vm(1, 1, 3, cpu=9.0)]
        alloc = Allocation(cluster, {vms[0]: 0, vms[1]: 0})
        assert not alloc.is_valid()

    def test_empty_allocation_is_valid(self):
        Allocation(cluster_of(), {}).validate()

    def test_repr(self):
        alloc = Allocation(cluster_of(), {make_vm(0, 1, 2): 0})
        assert "vms=1" in repr(alloc)
