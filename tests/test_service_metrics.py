"""Service metrics: reservoir edge cases, histograms, and strict
conformance of the Prometheus text exposition (format version 0.0.4)."""

from __future__ import annotations

import math
import re

import pytest

from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.service import ClusterStateStore, Histogram, parse_exposition
from repro.service.metrics import (
    CANDIDATE_BUCKETS,
    CONSOLIDATION_BUCKETS,
    LATENCY_BUCKETS,
    LatencyReservoir,
    ServiceMetrics,
    escape_label_value,
)

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestLatencyReservoir:
    def test_empty_reservoir_reports_zero(self):
        reservoir = LatencyReservoir()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert reservoir.quantile(q) == 0.0
        assert reservoir.count == 0
        assert reservoir.total == 0.0

    def test_single_sample_is_every_quantile(self):
        reservoir = LatencyReservoir()
        reservoir.observe(0.25)
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert reservoir.quantile(q) == 0.25

    def test_nearest_rank_two_samples(self):
        reservoir = LatencyReservoir()
        reservoir.observe(2.0)
        reservoir.observe(1.0)
        # ceil(0.5 * 2) = 1 -> the lower sample, never an interpolation
        assert reservoir.quantile(0.5) == 1.0
        assert reservoir.quantile(0.51) == 2.0
        assert reservoir.quantile(1.0) == 2.0

    def test_quantile_zero_clamps_to_first_rank(self):
        reservoir = LatencyReservoir()
        for value in (3.0, 1.0, 2.0):
            reservoir.observe(value)
        assert reservoir.quantile(0.0) == 1.0

    def test_quantiles_always_come_from_observed_set(self):
        reservoir = LatencyReservoir()
        values = [float(i) for i in range(17)]
        for value in values:
            reservoir.observe(value)
        for q in (0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert reservoir.quantile(q) in values

    def test_out_of_range_quantile_rejected(self):
        reservoir = LatencyReservoir()
        with pytest.raises(ValidationError):
            reservoir.quantile(1.5)
        with pytest.raises(ValidationError):
            reservoir.quantile(-0.1)

    def test_window_overwrites_oldest_beyond_capacity(self):
        reservoir = LatencyReservoir(capacity=4)
        for value in (9.0, 9.0, 9.0, 9.0, 1.0, 2.0):
            reservoir.observe(value)
        assert reservoir.count == 6
        assert reservoir.quantile(0.0) == 1.0  # the 9.0s are rotating out
        assert reservoir.total == pytest.approx(39.0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValidationError):
            LatencyReservoir(capacity=0)


class TestHistogram:
    def test_cumulative_buckets_and_overflow(self):
        hist = Histogram((1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.cumulative() == [(1.0, 2), (2.0, 3), (5.0, 4),
                                     (math.inf, 5)]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.0)

    def test_boundary_value_lands_in_le_bucket(self):
        hist = Histogram((1.0,))
        hist.observe(1.0)  # le="1.0" is inclusive
        assert hist.cumulative()[0] == (1.0, 1)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            Histogram(())
        with pytest.raises(ValidationError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValidationError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValidationError):
            Histogram((1.0, math.inf))


def conformant_families(text: str) -> dict[str, dict]:
    """Strictly validate a text-format 0.0.4 page; returns the families.

    Checks the structural rules the format mandates: every sample line
    belongs to the family announced by the preceding ``# HELP``/``# TYPE``
    pair (HELP first, TYPE second, each exactly once per family), metric
    and label names are legal, label values use only the three escapes,
    values parse as floats, histogram ``_bucket`` series are cumulative
    and end in an ``le="+Inf"`` bucket equal to ``_count``.
    """
    name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
    label_re = re.compile(
        r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"')
    families: dict[str, dict] = {}
    current: str | None = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name_re.match(name), name
            assert name not in families, f"duplicate HELP for {name}"
            assert help_text.strip(), f"empty HELP for {name}"
            families[name] = {"type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name == current, \
                f"TYPE {name} does not follow its HELP"
            assert families[name]["type"] is None, f"duplicate TYPE {name}"
            assert kind in ("counter", "gauge", "summary", "histogram")
            families[name]["type"] = kind
        elif line.startswith("#"):
            continue  # free-form comment
        else:
            assert line == line.strip() and line, f"stray line {line!r}"
            match = re.match(
                r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s(\S+)$", line)
            assert match, f"malformed sample line {line!r}"
            name, _, labels, value = match.groups()
            assert current is not None, f"sample before any family: {line}"
            kind = families[current]["type"]
            suffixes = {"summary": ("", "_sum", "_count"),
                        "histogram": ("_bucket", "_sum", "_count")}
            allowed = [current + s for s in suffixes.get(kind, ("",))]
            assert name in allowed, \
                f"sample {name} outside its family {current}"
            if labels:
                consumed = label_re.sub("", labels).strip(",")
                assert consumed == "", f"bad labels in {line!r}"
            float(value)  # must parse
            families[current]["samples"].append(
                (name, dict(label_re.findall(labels or "")), float(value)))
    for name, family in families.items():
        assert family["type"] is not None, f"family {name} lacks TYPE"
        if family["type"] == "histogram":
            buckets = [(s[1]["le"], s[2]) for s in family["samples"]
                       if s[0] == f"{name}_bucket"]
            counts = [s[2] for s in family["samples"]
                      if s[0] == f"{name}_count"]
            assert buckets and len(counts) == 1
            assert buckets[-1][0] == "+Inf"
            values = [b[1] for b in buckets]
            assert values == sorted(values), f"{name} not cumulative"
            assert values[-1] == counts[0], \
                f"{name} +Inf bucket != _count"
            bounds = [float(b[0].replace("+Inf", "inf"))
                      for b in buckets]
            assert bounds == sorted(bounds)
    return families


class TestExposition:
    def render(self, *, requests=()):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3))
        metrics = ServiceMetrics()
        metrics.register_algorithm("min-energy")
        for decision, latency, candidates in requests:
            metrics.observe_request(decision, latency,
                                    algorithm="min-energy",
                                    candidates=candidates)
        store.commit(make_vm(0, 1, 4), 0)
        store.advance_to(2)
        return metrics.render(store), metrics

    def test_page_is_strictly_conformant(self):
        text, _ = self.render(requests=[
            ("placed", 0.0002, 3), ("placed", 0.004, 1),
            ("rejected", 0.08, 0)])
        families = conformant_families(text)
        assert families["repro_placement_duration_seconds"]["type"] == \
            "histogram"
        assert families["repro_placement_candidates"]["type"] == \
            "histogram"
        assert families["repro_placement_latency_seconds"]["type"] == \
            "summary"
        assert families["repro_decisions_total"]["type"] == "counter"

    def test_histogram_families_expose_every_bucket(self):
        text, _ = self.render(requests=[("placed", 0.0002, 3)])
        families = conformant_families(text)
        latency = families["repro_placement_duration_seconds"]["samples"]
        buckets = [s for s in latency if s[0].endswith("_bucket")]
        assert len(buckets) == len(LATENCY_BUCKETS) + 1
        candidates = families["repro_placement_candidates"]["samples"]
        buckets = [s for s in candidates if s[0].endswith("_bucket")]
        assert len(buckets) == len(CANDIDATE_BUCKETS) + 1

    def test_observation_lands_in_the_right_bucket(self):
        text, metrics = self.render(requests=[("placed", 0.0003, 2)])
        assert metrics.latency_hist.cumulative()[0] == (0.0001, 0)
        families = conformant_families(text)
        samples = families["repro_placement_duration_seconds"]["samples"]
        by_le = {s[1]["le"]: s[2] for s in samples
                 if s[0].endswith("_bucket")}
        assert by_le["0.00025"] == 0
        assert by_le["0.0005"] == 1
        assert by_le["+Inf"] == 1

    def test_decision_counters_are_labelled_and_preseeded(self):
        text, _ = self.render()
        families = conformant_families(text)
        samples = families["repro_decisions_total"]["samples"]
        labels = {(s[1]["algorithm"], s[1]["decision"]): s[2]
                  for s in samples}
        assert labels == {("min-energy", "placed"): 0.0,
                          ("min-energy", "rejected"): 0.0}

    def test_label_escaping_round_trips(self):
        metrics = ServiceMetrics()
        tricky = 'algo"with\\quotes\nand newline'
        metrics.observe_request("placed", 0.001, algorithm=tricky)
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        text = metrics.render(store)
        conformant_families(text)
        parsed = parse_exposition(text)
        labels = {tuple(sorted(s[0].items()))
                  for s in parsed["repro_decisions_total"]}
        assert (("algorithm", tricky), ("decision", "placed")) in labels

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_parse_exposition_reads_back_rendered_page(self):
        text, _ = self.render(requests=[("placed", 0.001, 2)])
        parsed = parse_exposition(text)
        assert parsed["repro_requests_total"] == [
            ({"decision": "placed"}, 1.0),
            ({"decision": "rejected"}, 0.0)]
        (no_labels, count), = parsed[
            "repro_placement_duration_seconds_count"]
        assert no_labels == {} and count == 1.0

    def test_candidate_histogram_counts_feasible_servers(self):
        _, metrics = self.render(requests=[("placed", 0.001, 7),
                                           ("rejected", 0.001, 0)])
        assert metrics.candidates.count == 2
        assert metrics.candidates.sum == 7.0

    def test_build_info_and_uptime_are_conformant_gauges(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3))
        metrics = ServiceMetrics()
        metrics.set_build_info(version="1.0.0", algorithm="min-energy",
                               engine='dense "v2"\\x')
        families = conformant_families(metrics.render(store))
        build = families["repro_build_info"]
        assert build["type"] == "gauge"
        ((name, labels, value),) = build["samples"]
        assert value == 1.0
        assert labels == {"version": "1.0.0",
                          "algorithm": "min-energy",
                          "engine": 'dense \\"v2\\"\\\\x'}
        uptime = families["repro_uptime_seconds"]
        assert uptime["type"] == "gauge"
        assert uptime["samples"][0][2] >= 0.0

    def test_build_info_without_labels_is_still_conformant(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3))
        families = conformant_families(ServiceMetrics().render(store))
        ((name, labels, value),) = families["repro_build_info"]["samples"]
        assert labels == {} and value == 1.0

    def test_daemon_stamps_build_info_at_construction(self):
        from repro import __version__
        from repro.service import AllocationDaemon

        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3))
        daemon = AllocationDaemon(store, algorithm="ffps")
        assert daemon.metrics.build_info["version"] == __version__
        assert daemon.metrics.build_info["algorithm"] == "ffps"
        assert "engine" in daemon.metrics.build_info
        page = daemon.render_metrics()
        assert f'version="{__version__}"' in page
        assert "repro_uptime_seconds" in page

    def test_consolidation_families_are_conformant(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3))
        metrics = ServiceMetrics()
        metrics.observe_consolidation(moves=3, servers_freed=1,
                                      energy_saved=120.5,
                                      duration_seconds=0.002)
        metrics.observe_consolidation(moves=2, servers_freed=1,
                                      energy_saved=40.0,
                                      duration_seconds=0.03)
        families = conformant_families(metrics.render(store))
        assert families["repro_migrations_total"]["type"] == "counter"
        assert families["repro_migrations_total"]["samples"][0][2] == 5.0
        assert families["repro_servers_freed_total"]["samples"][0][2] \
            == 2.0
        assert families["repro_consolidation_energy_saved"][
            "samples"][0][2] == pytest.approx(160.5)
        hist = families["repro_consolidation_duration_seconds"]
        assert hist["type"] == "histogram"
        buckets = [s for s in hist["samples"]
                   if s[0].endswith("_bucket")]
        assert len(buckets) == len(CONSOLIDATION_BUCKETS) + 1
        by_le = {s[1]["le"]: s[2] for s in buckets}
        assert by_le["0.0025"] == 1.0  # the 2 ms episode
        assert by_le["+Inf"] == 2.0

    def test_replayed_episode_skips_the_duration_histogram(self):
        metrics = ServiceMetrics()
        metrics.observe_consolidation(moves=1, servers_freed=0,
                                      energy_saved=5.0)
        assert metrics.migrations == 1
        assert metrics.consolidation_duration.count == 0

    def test_consolidation_counters_survive_the_meta_round_trip(self):
        metrics = ServiceMetrics()
        metrics.observe_consolidation(moves=4, servers_freed=2,
                                      energy_saved=77.25,
                                      duration_seconds=0.001)
        restored = ServiceMetrics()
        restored.restore_meta(metrics.to_meta())
        assert restored.migrations == 4
        assert restored.servers_freed == 2
        assert restored.consolidation_energy_saved == 77.25
        # Histograms are not persisted; the restored daemon re-counts
        # only durations it measures itself.
        assert restored.consolidation_duration.count == 0

    def test_meta_round_trip_preserves_decisions(self):
        metrics = ServiceMetrics()
        metrics.observe_request("placed", 0.001, algorithm="min-energy")
        metrics.observe_request("rejected", 0.002, delay=1,
                                algorithm="min-energy")
        restored = ServiceMetrics()
        restored.restore_meta(metrics.to_meta())
        assert restored.requests == metrics.requests
        assert restored.decisions == metrics.decisions
        assert restored.delayed == 1
