"""Tests for fleet sizing."""

from __future__ import annotations

import pytest

from repro.analysis.sizing import minimum_feasible_size, sizing_curve
from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=4.0, memory_capacity=4.0,
                  p_idle=20.0, p_peak=40.0)


def homogeneous(size: int) -> Cluster:
    return Cluster.homogeneous(SPEC, size)


class TestMinimumFeasibleSize:
    def test_empty_workload_needs_nothing(self):
        assert minimum_feasible_size([]) == 0

    def test_exact_requirement(self):
        # Three simultaneous full-server VMs need exactly three servers.
        vms = [make_vm(i, 1, 5, cpu=4.0, memory=4.0) for i in range(3)]
        assert minimum_feasible_size(vms, factory=homogeneous) == 3

    def test_sequential_needs_one(self):
        vms = [make_vm(0, 1, 2), make_vm(1, 5, 6), make_vm(2, 9, 9)]
        assert minimum_feasible_size(vms, factory=homogeneous) == 1

    def test_infeasible_raises(self):
        giant = [make_vm(0, 1, 2, cpu=100.0)]
        with pytest.raises(ValidationError, match="infeasible"):
            minimum_feasible_size(giant, factory=homogeneous, upper=8)

    def test_result_is_feasible_and_minimal(self):
        vms = generate_vms(40, mean_interarrival=1.0, seed=0)
        size = minimum_feasible_size(vms)
        from repro.allocators import MinIncrementalEnergy
        MinIncrementalEnergy().allocate(
            vms, Cluster.paper_all_types(size)).validate(vms=vms)
        if size > 1:
            with pytest.raises(Exception):
                MinIncrementalEnergy().allocate(
                    vms, Cluster.paper_all_types(size - 1))

    def test_upper_guard(self):
        with pytest.raises(ValidationError):
            minimum_feasible_size([make_vm(0, 1, 2)], upper=0)


class TestSizingCurve:
    def test_energy_per_size(self):
        vms = [make_vm(i, 1, 5, cpu=4.0, memory=4.0) for i in range(3)]
        curve = sizing_curve(vms, sizes=[1, 2, 3, 6],
                             factory=homogeneous)
        assert [p.feasible for p in curve] == [False, False, True, True]
        feasible = [p for p in curve if p.feasible]
        assert all(p.energy is not None for p in feasible)
        # consolidating allocator: extra servers change nothing
        assert feasible[0].energy == feasible[1].energy

    def test_requires_sizes(self):
        with pytest.raises(ValidationError):
            sizing_curve([make_vm(0, 1, 2)], sizes=[])

    def test_servers_used_reported(self):
        vms = [make_vm(0, 1, 3), make_vm(1, 1, 3)]
        curve = sizing_curve(vms, sizes=[4], factory=homogeneous)
        assert curve[0].servers_used >= 1
