"""Regression tests for the candidate counters on every allocator.

``candidates_evaluated`` counts probes actually performed by the most
recent ``select``; ``candidates_feasible`` counts the admissible ones.
Before the counters were centralised in ``Allocator._examine``, the
scan-order overrides (first-fit, round-robin, ffps) each maintained them
ad hoc and drifted from the base class; these tests pin the semantics per
algorithm so the service's candidate histogram compares like with like.
"""

from __future__ import annotations

import pytest

from repro.allocators import allocator_names, make_allocator
from repro.allocators.state import ServerState
from repro.model.server import Server, ServerSpec

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


def _fleet(allocator, n=4, engine="indexed"):
    """n servers; 0 and 1 pre-loaded so a cpu=6 VM only fits on 2, 3."""
    states = [ServerState(Server(i, SPEC), engine=engine)
              for i in range(n)]
    states[0].place(make_vm(100, 1, 10, cpu=6.0))
    states[1].place(make_vm(101, 1, 10, cpu=6.0))
    allocator.prepare(states)
    return states


class TestCounterSemantics:
    @pytest.mark.parametrize("algo", allocator_names())
    @pytest.mark.parametrize("engine", ["indexed", "dense"])
    def test_invariants_hold_for_every_algorithm(self, algo, engine):
        if algo == "gamma-ff" and engine == "dense":
            pytest.skip("robust probing is indexed-only")
        allocator = make_allocator(algo, seed=0, engine=engine)
        states = _fleet(allocator, engine=engine)
        chosen = allocator.select(make_vm(0, 1, 10, cpu=6.0), states)
        assert chosen is not None
        assert 1 <= allocator.candidates_evaluated <= len(states)
        assert 1 <= allocator.candidates_feasible \
            <= allocator.candidates_evaluated
        assert chosen.probe(make_vm(0, 1, 10, cpu=6.0)).feasible

    @pytest.mark.parametrize("algo", allocator_names())
    def test_counters_reset_between_selects(self, algo):
        allocator = make_allocator(algo, seed=0)
        states = _fleet(allocator)
        allocator.select(make_vm(0, 1, 10, cpu=6.0), states)
        first = (allocator.candidates_evaluated,
                 allocator.candidates_feasible)
        allocator.select(make_vm(1, 20, 30, cpu=6.0), states)
        assert allocator.candidates_evaluated <= len(states)
        assert first[0] <= len(states)  # not cumulative across selects

    @pytest.mark.parametrize("algo", allocator_names())
    def test_no_feasible_server_reports_zero_feasible(self, algo):
        allocator = make_allocator(algo, seed=0)
        states = _fleet(allocator, n=2)  # both pre-loaded
        chosen = allocator.select(make_vm(0, 1, 10, cpu=6.0), states)
        assert chosen is None
        assert allocator.candidates_feasible == 0
        assert allocator.candidates_evaluated >= 1


class TestScanOrderCounters:
    def test_first_fit_stops_at_first_feasible(self):
        allocator = make_allocator("first-fit")
        states = _fleet(allocator)
        allocator.select(make_vm(0, 1, 10, cpu=6.0), states)
        # probed 0 (infeasible), 1 (infeasible), 2 (hit) — never saw 3
        assert allocator.candidates_evaluated == 3
        assert allocator.candidates_feasible == 1

    def test_round_robin_counts_from_its_pointer(self):
        allocator = make_allocator("round-robin")
        states = _fleet(allocator)
        allocator.select(make_vm(0, 1, 10, cpu=6.0), states)  # -> server 2
        assert allocator.candidates_evaluated == 3
        allocator.select(make_vm(1, 1, 10, cpu=2.0), states)  # -> server 3
        assert allocator.candidates_evaluated == 1
        assert allocator.candidates_feasible == 1

    def test_ffps_probes_its_whole_shuffled_order(self):
        allocator = make_allocator("ffps", seed=0)
        states = _fleet(allocator)
        allocator.select(make_vm(0, 1, 10, cpu=2.0), states)
        # cpu=2 fits everywhere: first probe in the shuffled order hits
        assert allocator.candidates_evaluated == 1
        assert allocator.candidates_feasible == 1

    def test_exhaustive_scorers_probe_all_on_dense(self):
        for algo in ("best-fit", "worst-fit", "random-fit"):
            allocator = make_allocator(algo, seed=0, engine="dense")
            states = _fleet(allocator, engine="dense")
            allocator.select(make_vm(0, 1, 10, cpu=6.0), states)
            assert allocator.candidates_evaluated == 4, algo
            assert allocator.candidates_feasible == 2, algo

    def test_min_energy_dedups_pristine_servers(self):
        allocator = make_allocator("min-energy")
        states = _fleet(allocator)
        allocator.select(make_vm(0, 1, 10, cpu=6.0), states)
        # 0, 1 probed (infeasible); 2 probed as the pristine
        # representative; 3 is an interchangeable clone — skipped.
        assert allocator.candidates_evaluated == 3
        assert allocator.candidates_feasible == 1

    def test_static_pruning_skips_impossible_types(self):
        tiny = ServerSpec("tiny", cpu_capacity=2.0, memory_capacity=2.0,
                          p_idle=10.0, p_peak=20.0, transition_time=1.0)
        allocator = make_allocator("first-fit")
        states = [ServerState(Server(0, tiny), engine="indexed"),
                  ServerState(Server(1, tiny), engine="indexed"),
                  ServerState(Server(2, SPEC), engine="indexed")]
        allocator.prepare(states)
        chosen = allocator.select(make_vm(0, 1, 5, cpu=6.0), states)
        assert chosen is states[2]
        # tiny servers were pruned by type, never probed
        assert allocator.candidates_evaluated == 1
        assert allocator.candidates_feasible == 1


class TestExplainCounters:
    @pytest.mark.parametrize("algo", allocator_names())
    def test_explain_reports_the_embedded_select_counters(self, algo):
        allocator = make_allocator(algo, seed=0)
        states = _fleet(allocator)
        vm = make_vm(0, 1, 10, cpu=6.0)
        chosen, explanation = allocator.explain_select(vm, states)
        explained = (allocator.candidates_evaluated,
                     allocator.candidates_feasible)
        # Replaying plain select from the same state gives the same counts
        # (stateful scan orders are re-prepared to rewind their pointer).
        replay = make_allocator(algo, seed=0)
        replay_states = _fleet(replay)
        replay.select(vm, replay_states)
        assert explained == (replay.candidates_evaluated,
                             replay.candidates_feasible)
        # And the explanation itself still covers the whole fleet.
        assert len(explanation.candidates) == len(states)
