"""Tests for electricity tariffs and monetary cost."""

from __future__ import annotations

import pytest

from repro.allocators import MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.energy.pricing import (
    FlatTariff,
    TimeOfUseTariff,
    monetary_cost,
)
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestFlatTariff:
    def test_constant_price(self):
        tariff = FlatTariff(0.5)
        assert tariff.price_at(1) == 0.5
        assert tariff.price_at(9999) == 0.5

    def test_prices_vector(self):
        assert list(FlatTariff(2.0).prices(3)) == [2.0, 2.0, 2.0]

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            FlatTariff(-0.1)


class TestTimeOfUseTariff:
    TARIFF = TimeOfUseTariff(peak_price=2.0, offpeak_price=1.0,
                             peak_start=5, peak_end=8, period=10)

    def test_window_pricing(self):
        assert self.TARIFF.price_at(4) == 1.0
        assert self.TARIFF.price_at(5) == 2.0
        assert self.TARIFF.price_at(8) == 2.0
        assert self.TARIFF.price_at(9) == 1.0

    def test_periodic(self):
        assert self.TARIFF.price_at(15) == 2.0   # 15 -> phase 5
        assert self.TARIFF.price_at(11) == 1.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValidationError):
            TimeOfUseTariff(1.0, 1.0, peak_start=8, peak_end=5, period=10)
        with pytest.raises(ValidationError):
            TimeOfUseTariff(1.0, 1.0, peak_start=1, peak_end=20, period=10)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValidationError):
            self.TARIFF.price_at(0)


class TestMonetaryCost:
    def test_flat_unit_price_equals_energy(self):
        vms = generate_vms(30, mean_interarrival=3.0, seed=0)
        cluster = Cluster.paper_all_types(15)
        plan = MinIncrementalEnergy().allocate(vms, cluster)
        bill = monetary_cost(plan, FlatTariff(1.0))
        assert bill == pytest.approx(allocation_cost(plan).total,
                                     rel=1e-9)

    def test_flat_price_scales_linearly(self):
        vms = generate_vms(20, mean_interarrival=3.0, seed=1)
        cluster = Cluster.paper_all_types(10)
        plan = MinIncrementalEnergy().allocate(vms, cluster)
        assert monetary_cost(plan, FlatTariff(2.0)) == pytest.approx(
            2 * monetary_cost(plan, FlatTariff(1.0)))

    def test_peak_load_costs_more(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        tariff = TimeOfUseTariff(peak_price=3.0, offpeak_price=1.0,
                                 peak_start=1, peak_end=10, period=20)
        on_peak = Allocation(cluster, {make_vm(0, 1, 5, cpu=2.0): 0})
        off_peak = Allocation(cluster, {make_vm(0, 11, 15, cpu=2.0): 0})
        assert monetary_cost(on_peak, tariff) > \
            monetary_cost(off_peak, tariff)

    def test_same_energy_different_bills(self):
        # The effect pure energy metrics hide.
        cluster = Cluster.homogeneous(SPEC, 1)
        tariff = TimeOfUseTariff(peak_price=3.0, offpeak_price=1.0,
                                 peak_start=1, peak_end=10, period=20)
        peak_plan = Allocation(cluster, {make_vm(0, 1, 5, cpu=2.0): 0})
        off_plan = Allocation(cluster, {make_vm(0, 11, 15, cpu=2.0): 0})
        assert allocation_cost(peak_plan).total == \
            allocation_cost(off_plan).total
        assert monetary_cost(peak_plan, tariff) != \
            monetary_cost(off_plan, tariff)

    def test_telemetry_input(self):
        from repro.simulation import SimulationEngine

        vms = generate_vms(15, mean_interarrival=3.0, seed=2)
        cluster = Cluster.paper_all_types(8)
        plan = MinIncrementalEnergy().allocate(vms, cluster)
        telemetry = SimulationEngine(cluster).replay(plan).telemetry
        # Telemetry path bills busy power only (no wake lookup possible).
        busy_bill = monetary_cost(telemetry, FlatTariff(1.0))
        assert busy_bill == pytest.approx(telemetry.total_energy)
