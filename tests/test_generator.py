"""Tests for the Poisson workload generator (paper Sec. IV-B1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.model.catalog import ALL_VM_TYPES, STANDARD_VM_TYPES
from repro.workload.generator import PoissonWorkload, generate_vms


class TestValidation:
    @pytest.mark.parametrize("ia", [0.0, -1.0])
    def test_rejects_nonpositive_interarrival(self, ia):
        with pytest.raises(ValidationError):
            PoissonWorkload(mean_interarrival=ia)

    @pytest.mark.parametrize("dur", [0.0, -2.0])
    def test_rejects_nonpositive_duration(self, dur):
        with pytest.raises(ValidationError):
            PoissonWorkload(mean_interarrival=1.0, mean_duration=dur)

    def test_rejects_empty_types(self):
        with pytest.raises(ValidationError):
            PoissonWorkload(mean_interarrival=1.0, vm_types=())

    def test_rejects_negative_count(self):
        with pytest.raises(ValidationError):
            PoissonWorkload(mean_interarrival=1.0).generate(-1)


class TestGeneration:
    def test_count_and_ids(self):
        vms = generate_vms(50, mean_interarrival=2.0, seed=0)
        assert len(vms) == 50
        assert [vm.vm_id for vm in vms] == list(range(50))

    def test_reproducible_with_seed(self):
        a = generate_vms(30, mean_interarrival=2.0, seed=42)
        b = generate_vms(30, mean_interarrival=2.0, seed=42)
        assert [(v.start, v.end, v.spec.name) for v in a] == \
            [(v.start, v.end, v.spec.name) for v in b]

    def test_different_seeds_differ(self):
        a = generate_vms(30, mean_interarrival=2.0, seed=1)
        b = generate_vms(30, mean_interarrival=2.0, seed=2)
        assert [(v.start, v.end) for v in a] != [(v.start, v.end) for v in b]

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(0)
        vms = PoissonWorkload(mean_interarrival=1.0).generate(10, rng=rng)
        assert len(vms) == 10

    def test_arrivals_non_decreasing(self):
        vms = generate_vms(100, mean_interarrival=1.0, seed=3)
        starts = [vm.start for vm in vms]
        assert starts == sorted(starts)

    def test_starts_at_one_or_later(self):
        vms = generate_vms(100, mean_interarrival=0.5, seed=4)
        assert min(vm.start for vm in vms) >= 1

    def test_durations_at_least_one(self):
        vms = generate_vms(200, mean_interarrival=1.0, mean_duration=1.0,
                           seed=5)
        assert all(vm.duration >= 1 for vm in vms)

    def test_types_drawn_from_requested_set(self):
        vms = generate_vms(100, mean_interarrival=1.0,
                           vm_types=STANDARD_VM_TYPES, seed=6)
        allowed = {spec.name for spec in STANDARD_VM_TYPES}
        assert {vm.spec.name for vm in vms} <= allowed

    def test_all_types_eventually_sampled(self):
        vms = generate_vms(500, mean_interarrival=1.0, seed=7)
        assert {vm.spec.name for vm in vms} == \
            {spec.name for spec in ALL_VM_TYPES}

    def test_empty_generation(self):
        assert generate_vms(0, mean_interarrival=1.0, seed=0) == []


class TestStatistics:
    def test_mean_interarrival_approximate(self):
        vms = generate_vms(5000, mean_interarrival=3.0, seed=8)
        span = vms[-1].start - vms[0].start
        observed = span / (len(vms) - 1)
        assert observed == pytest.approx(3.0, rel=0.1)

    def test_mean_duration_approximate(self):
        vms = generate_vms(5000, mean_interarrival=1.0, mean_duration=10.0,
                           seed=9)
        observed = sum(vm.duration for vm in vms) / len(vms)
        # integer rounding with a max(1, .) floor biases slightly upward
        assert observed == pytest.approx(10.0, rel=0.15)

    def test_type_sampling_roughly_uniform(self):
        vms = generate_vms(9000, mean_interarrival=1.0, seed=10)
        counts = {}
        for vm in vms:
            counts[vm.spec.name] = counts.get(vm.spec.name, 0) + 1
        for count in counts.values():
            assert count == pytest.approx(1000, rel=0.25)
