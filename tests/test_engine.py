"""Tests for the discrete-event replay engine."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.allocators import MinIncrementalEnergy, make_allocator
from repro.energy.cost import SleepPolicy, allocation_cost
from repro.exceptions import AllocationError, SimulationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.simulation import SimulationEngine, simulate_online
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestReplayEnergy:
    def test_single_vm(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vm = make_vm(0, 1, 4, cpu=2.0)
        alloc = Allocation(cluster, {vm: 0})
        result = SimulationEngine(cluster).replay(alloc)
        # busy: (50 + 10) * 4; transition: 100
        assert result.busy_energy == pytest.approx(240.0)
        assert result.transition_energy == pytest.approx(100.0)
        assert result.total_energy == pytest.approx(340.0)

    def test_matches_analytic_accounting(self):
        vms = generate_vms(60, mean_interarrival=2.0, seed=9)
        cluster = Cluster.paper_all_types(30)
        alloc, result = simulate_online(vms, cluster,
                                        MinIncrementalEnergy())
        assert result.total_energy == pytest.approx(
            allocation_cost(alloc).total, rel=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(
        ["min-energy", "ffps", "best-fit", "worst-fit", "round-robin"]))
    def test_sim_equals_analytic_for_all_algorithms(self, seed, algo):
        vms = generate_vms(25, mean_interarrival=3.0, seed=seed)
        cluster = Cluster.paper_all_types(12)
        try:
            alloc, result = simulate_online(vms, cluster,
                                            make_allocator(algo, seed=seed))
        except AllocationError:
            # Spread-heavy algorithms (worst-fit) can exhaust the small
            # cluster on dense draws; infeasible workloads say nothing
            # about sim-vs-analytic agreement, so reject the example.
            assume(False)
        assert result.total_energy == pytest.approx(
            allocation_cost(alloc).total, rel=1e-12)

    def test_never_sleep_policy(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vms = [make_vm(0, 1, 1), make_vm(1, 10, 10)]
        alloc = Allocation(cluster, {v: 0 for v in vms})
        result = SimulationEngine(
            cluster, policy=SleepPolicy.NEVER_SLEEP).replay(alloc)
        assert result.total_energy == pytest.approx(
            allocation_cost(alloc, policy=SleepPolicy.NEVER_SLEEP).total)
        # one wake only
        assert result.transition_energy == pytest.approx(100.0)

    def test_empty_allocation(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        result = SimulationEngine(cluster).replay(Allocation(cluster, {}))
        assert result.total_energy == 0.0
        assert result.horizon == 0


class TestReplayTelemetry:
    def test_power_series(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vm = make_vm(0, 2, 3, cpu=10.0)
        alloc = Allocation(cluster, {vm: 0})
        result = SimulationEngine(cluster).replay(alloc)
        assert list(result.telemetry.power) == [0.0, 100.0, 100.0]
        assert list(result.telemetry.active_servers) == [0, 1, 1]
        assert list(result.telemetry.running_vms) == [0, 1, 1]

    def test_gap_bridging_appears_in_series(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vms = [make_vm(0, 1, 1), make_vm(1, 3, 3)]  # 1-unit gap: bridge
        alloc = Allocation(cluster, {v: 0 for v in vms})
        result = SimulationEngine(cluster).replay(alloc)
        assert result.telemetry.active_servers[1] == 1  # active through gap
        assert result.telemetry.running_vms[1] == 0

    def test_sleep_gap_power_zero(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vms = [make_vm(0, 1, 1), make_vm(1, 10, 10)]  # sleeps through
        alloc = Allocation(cluster, {v: 0 for v in vms})
        result = SimulationEngine(cluster).replay(alloc)
        assert result.telemetry.power[4] == 0.0
        assert result.telemetry.active_servers[4] == 0

    def test_events_processed_count(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vm = make_vm(0, 1, 2)
        alloc = Allocation(cluster, {vm: 0})
        result = SimulationEngine(cluster).replay(alloc)
        # wake + start + end + sleep
        assert result.events_processed == 4


class TestReplayValidation:
    def test_rejects_foreign_cluster(self):
        cluster_a = Cluster.homogeneous(SPEC, 1)
        cluster_b = Cluster.homogeneous(SPEC, 1)
        alloc = Allocation(cluster_a, {make_vm(0, 1, 2): 0})
        with pytest.raises(SimulationError):
            SimulationEngine(cluster_b).replay(alloc)

    def test_detects_overcommitted_plan(self):
        # Build a deliberately invalid allocation; the state machine must
        # reject it during replay.
        cluster = Cluster.homogeneous(SPEC, 1)
        vms = [make_vm(0, 1, 3, cpu=6.0), make_vm(1, 1, 3, cpu=6.0)]
        alloc = Allocation(cluster, {v: 0 for v in vms})
        with pytest.raises(SimulationError):
            SimulationEngine(cluster).replay(alloc)
