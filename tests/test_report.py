"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.experiments.report import SECTIONS, build_report, write_report


class TestBuildReport:
    def test_tables_always_present(self):
        text = build_report(sections=[], quick=True)
        assert "Table I" in text
        assert "Table II" in text
        assert "standard-4" in text
        assert "type5" in text

    def test_selected_sections_only(self):
        text = build_report(sections=["fig3"], quick=True)
        assert "Fig. 3" in text
        assert "Fig. 5" not in text
        assert "ours cpu %" in text

    def test_unknown_section_rejected(self):
        with pytest.raises(ValidationError, match="unknown report"):
            build_report(sections=["fig99"])

    def test_quick_flag_mentioned(self):
        assert "quick grids" in build_report(sections=[], quick=True)
        assert "paper-scale" in build_report(sections=[], quick=False)

    def test_all_sections_registered(self):
        assert set(SECTIONS) >= {"fig2", "fig9", "zoo", "ilp-gap"}

    def test_ablation_section(self):
        text = build_report(sections=["ilp-gap"], quick=True)
        assert "optimality gap" in text
        assert "optimal" in text


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "report.md"
        size = write_report(path, sections=["fig3"], quick=True)
        assert path.exists()
        assert size == len(path.read_bytes())

    def test_cli_command(self, tmp_path, capsys):
        path = tmp_path / "r.md"
        code = main(["report", "--out", str(path), "--quick",
                     "--sections", "fig3"])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert "Fig. 3" in path.read_text()

    def test_cli_rejects_unknown_section(self, tmp_path, capsys):
        code = main(["report", "--out", str(tmp_path / "r.md"),
                     "--sections", "nope"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
