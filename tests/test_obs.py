"""Tests for the observability subsystem: tracer, explain-traces,
exporters."""

from __future__ import annotations

import json
import threading

import pytest

from repro.allocators import (
    MinIncrementalEnergy,
    RandomFit,
    RoundRobin,
    allocator_names,
    make_allocator,
)
from repro.allocators.state import ServerState
from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.model.server import ServerSpec
from repro.obs import (
    NULL_TRACER,
    CostTerms,
    ExplainRecorder,
    PlacementExplanation,
    Tracer,
    format_decision_table,
    get_tracer,
    load_chrome_trace,
    read_jsonl,
    set_tracer,
    summarize_chrome_trace,
    to_chrome_trace,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import COUNTER, INSTANT, SPAN
from repro.simulation import simulate_online
from repro.simulation.admission import offer
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class FakeClock:
    """A deterministic nanosecond clock advancing 100 ns per read."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 100
        return self.now


class TestTracer:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", phase="outer") as span:
            span.set(result=42)
        (event,) = tracer.events
        assert event.kind == SPAN
        assert event.name == "work"
        assert event.dur_ns == 100
        assert event.args == {"phase": "outer", "result": 42}
        assert event.tid == threading.get_ident()

    def test_nested_spans_close_inner_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e.name for e in tracer.events]
        assert names == ["inner", "outer"]
        inner, outer = tracer.events
        # The inner span nests strictly inside the outer one.
        assert outer.ts_ns <= inner.ts_ns
        assert inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns

    def test_instant_and_counter(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("hit", vm_id=7)
        tracer.counter("fleet", ts_ns=5000, clock="sim", power=120.0)
        instant, counter = tracer.events
        assert instant.kind == INSTANT and instant.args == {"vm_id": 7}
        assert counter.kind == COUNTER
        assert counter.ts_ns == 5000 and counter.clock == "sim"
        assert counter.args == {"power": 120.0}

    def test_span_event_records_instant_inside(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as span:
            span.event("milestone", step=1)
        assert [e.kind for e in tracer.events] == [INSTANT, SPAN]

    def test_clear_and_len_and_filter(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.instant("b")
        assert len(tracer) == 2
        assert [e.name for e in tracer.spans()] == ["a"]
        assert tracer.spans("nope") == []
        tracer.clear()
        assert len(tracer) == 0

    def test_null_tracer_is_default_and_records_nothing(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.span("x", attr=1)
        with span as inner:
            inner.set(foo=2).event("y")
        NULL_TRACER.instant("z")
        NULL_TRACER.counter("c", power=1.0)
        assert len(NULL_TRACER) == 0
        # every call hands out the one shared singleton span
        assert NULL_TRACER.span("other") is span

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        assert get_tracer() is NULL_TRACER
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
            assert get_tracer().enabled
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_default(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert get_tracer() is tracer
        finally:
            assert set_tracer(None) is tracer
        assert get_tracer() is NULL_TRACER

    def test_concurrent_spans_keep_their_thread_ids(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)  # alive together: no id reuse

        def work():
            barrier.wait()
            with tracer.span("w"):
                pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 4
        assert len({e.tid for e in tracer.events}) == 4


class TestExplain:
    def _states(self, n=2, spec=SPEC):
        cluster = Cluster.homogeneous(spec, n)
        return [ServerState(server) for server in cluster]

    def test_cpu_capacity_reason(self):
        states = self._states(1)
        assert states[0].probe(
            make_vm(0, 1, 5, cpu=99.0)).reason == "cpu:capacity"

    def test_mem_capacity_reason(self):
        states = self._states(1)
        assert states[0].probe(
            make_vm(0, 1, 5, memory=99.0)).reason == "mem:capacity"

    def test_overlap_reason_names_first_offending_tick(self):
        states = self._states(1)
        states[0].place(make_vm(0, 3, 8, cpu=8.0))
        reason = states[0].probe(make_vm(1, 1, 5, cpu=8.0)).reason
        assert reason == "cpu:overlap@3"

    def test_probe_reason_none_when_feasible(self):
        states = self._states(1)
        assert states[0].probe(make_vm(0, 1, 5)).reason is None

    def test_cost_terms_match_incremental_cost(self):
        states = self._states(1)
        vm = make_vm(0, 1, 5, cpu=2.0)
        terms = states[0].cost_terms(vm)
        assert terms.wake == SPEC.transition_cost
        assert terms.total == pytest.approx(states[0].incremental_cost(vm))

    def test_explain_marks_chosen_with_minimal_score(self):
        states = self._states(3)
        allocator = MinIncrementalEnergy()
        allocator.prepare(states)
        chosen, explanation = allocator.explain_select(
            make_vm(0, 1, 5), states)
        assert chosen is not None
        assert explanation.decision == "placed"
        assert explanation.server_id == chosen.server.server_id
        verdict = explanation.chosen
        assert verdict is not None and verdict.feasible
        scores = [v.score for v in explanation.candidates if v.feasible]
        assert verdict.score == min(scores)
        assert verdict.cost is not None
        assert verdict.cost.total == pytest.approx(verdict.score)

    def test_rejected_vm_explains_every_candidate(self):
        states = self._states(3)
        allocator = MinIncrementalEnergy()
        allocator.prepare(states)
        chosen, explanation = allocator.explain_select(
            make_vm(0, 1, 5, cpu=50.0), states)
        assert chosen is None
        assert explanation.decision == "rejected"
        assert explanation.server_id is None
        assert len(explanation.candidates) == 3
        assert explanation.feasible_count == 0
        assert all(v.reason == "cpu:capacity"
                   for v in explanation.infeasible())

    def test_constraint_reason(self):
        states = self._states(2)
        constraints = PlacementConstraints.build(separate=[{0, 1}])
        allocator = MinIncrementalEnergy()
        allocator.prepare(states)
        allocator._constraints = constraints
        allocator._placed_ids = {0: states[0].server.server_id}
        reason = allocator.inadmissible_reason(make_vm(1, 1, 5), states[0])
        assert reason == "constraint"

    def test_every_algorithm_explains_consistently(self):
        vms = [make_vm(i, 1 + i, 6 + i) for i in range(6)]
        for name in allocator_names():
            states = self._states(3)
            allocator = make_allocator(name, seed=0)
            allocator.prepare(states)
            for vm in vms:
                chosen, explanation = allocator.explain_select(vm, states)
                assert explanation.algorithm == allocator.name
                if chosen is None:
                    assert explanation.decision == "rejected"
                else:
                    verdict = explanation.chosen
                    assert verdict is not None and verdict.feasible
                    assert verdict.server_id == chosen.server.server_id
                    # the reported score must rank the chosen server at
                    # the top among feasible scored candidates
                    if verdict.score is not None:
                        scored = [v.score for v in explanation.candidates
                                  if v.feasible and v.score is not None]
                        assert verdict.score == min(scored)
                    chosen.place(vm)

    def test_random_fit_has_no_score(self):
        states = self._states(2)
        allocator = RandomFit(seed=0)
        allocator.prepare(states)
        _, explanation = allocator.explain_select(make_vm(0, 1, 5), states)
        assert all(v.score is None for v in explanation.candidates)

    def test_round_robin_scores_reflect_scan_order(self):
        states = self._states(3)
        allocator = RoundRobin()
        allocator.prepare(states)
        chosen, first = allocator.explain_select(make_vm(0, 1, 5), states)
        assert first.server_id == 0
        chosen.place(make_vm(0, 1, 5))
        # the selection advanced the scan pointer past server 0: server 1
        # is now the zero-score (next) candidate
        _, second = allocator.explain_select(make_vm(1, 1, 5), states)
        scores = {v.server_id: v.score for v in second.candidates}
        assert scores[1] == 0.0
        assert second.server_id == 1

    def test_explanation_round_trips_through_json(self):
        states = self._states(2)
        allocator = MinIncrementalEnergy()
        allocator.prepare(states)
        _, explanation = allocator.explain_select(make_vm(0, 1, 5), states)
        record = json.loads(json.dumps(explanation.to_record()))
        assert PlacementExplanation.from_record(record) == explanation

    def test_offer_records_admission_delay(self):
        states = self._states(1)
        states[0].place(make_vm(0, 1, 4, cpu=8.0))
        recorder = ExplainRecorder()
        allocator = MinIncrementalEnergy()
        allocator.prepare(states)
        decision = offer(make_vm(1, 2, 4, cpu=8.0), states, allocator,
                         max_delay=5, recorder=recorder)
        assert decision is not None and decision.delay == 3
        assert len(recorder) == 1
        assert recorder.last.delay == 3
        assert recorder.last.decision == "placed"

    def test_offer_rejection_keeps_undelayed_explanation(self):
        states = self._states(1)
        states[0].place(make_vm(0, 1, 9, cpu=8.0))
        recorder = ExplainRecorder()
        allocator = MinIncrementalEnergy()
        allocator.prepare(states)
        decision = offer(make_vm(1, 2, 8, cpu=8.0), states, allocator,
                         max_delay=1, recorder=recorder)
        assert decision is None
        assert len(recorder) == 1
        explanation = recorder.last
        assert explanation.decision == "rejected"
        assert explanation.delay == 0
        assert explanation.candidates[0].reason.startswith("cpu:overlap")

    def test_simulate_online_explain_collects_per_vm(self):
        vms = generate_vms(30, mean_interarrival=2.0, seed=3)
        allocation, result = simulate_online(
            vms, Cluster.paper_all_types(15), MinIncrementalEnergy(),
            explain=True)
        assert len(result.explanations) == len(vms)
        by_vm = {e.vm_id: e for e in result.explanations}
        for vm, server_id in allocation.items():
            assert by_vm[vm.vm_id].server_id == server_id
            assert by_vm[vm.vm_id].decision == "placed"

    def test_simulate_online_default_has_no_explanations(self):
        vms = generate_vms(10, mean_interarrival=2.0, seed=3)
        _, result = simulate_online(
            vms, Cluster.paper_all_types(8), MinIncrementalEnergy())
        assert result.explanations == ()

    def test_recorder_queries(self):
        recorder = ExplainRecorder()
        assert recorder.last is None
        placed = PlacementExplanation(
            vm_id=1, algorithm="a", decision="placed", server_id=0,
            delay=0, candidates=())
        rejected = PlacementExplanation(
            vm_id=2, algorithm="a", decision="rejected", server_id=None,
            delay=0, candidates=())
        recorder.record(placed)
        recorder.record(rejected)
        assert recorder.last is rejected
        assert recorder.for_vm(1) == [placed]
        assert recorder.rejected() == [rejected]
        assert list(recorder) == [placed, rejected]

    def test_decision_table_lists_every_decision(self):
        vms = generate_vms(12, mean_interarrival=2.0, seed=0)
        _, result = simulate_online(
            vms, Cluster.paper_all_types(8), MinIncrementalEnergy(),
            explain=True)
        table = format_decision_table(result.explanations)
        lines = table.splitlines()
        assert len(lines) == 2 + len(vms)
        assert "decision" in lines[0]

    def test_format_shows_failing_constraint(self):
        states = self._states(1)
        allocator = MinIncrementalEnergy()
        allocator.prepare(states)
        _, explanation = allocator.explain_select(
            make_vm(0, 1, 5, cpu=99.0), states)
        assert "infeasible: cpu:capacity" in explanation.format()

    def test_cost_terms_total(self):
        terms = CostTerms(run=10.0, idle_gap=2.5, wake=1.5)
        assert terms.total == 14.0
        assert CostTerms.from_record(terms.to_record()) == terms


class TestExport:
    def _traced_run(self):
        tracer = Tracer()
        vms = generate_vms(20, mean_interarrival=2.0, seed=1)
        with use_tracer(tracer):
            simulate_online(vms, Cluster.paper_all_types(10),
                            MinIncrementalEnergy())
        return tracer

    def test_chrome_trace_is_valid_and_monotone_per_tid(self):
        tracer = self._traced_run()
        document = to_chrome_trace(tracer.events)
        assert isinstance(document["traceEvents"], list)
        last: dict[tuple, float] = {}
        for event in document["traceEvents"]:
            assert event["ph"] in ("X", "i", "C", "M")
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, float("-inf"))
            last[key] = event["ts"]
        # wall spans and simulated-time counters land on separate pids
        pids = {e["pid"] for e in document["traceEvents"]}
        assert pids == {1, 2}
        json.dumps(document)  # must be JSON-serializable as-is

    def test_write_and_load_chrome_trace(self, tmp_path):
        tracer = self._traced_run()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tracer.events, path)
        document = load_chrome_trace(path)
        assert len(document["traceEvents"]) == written
        digest = summarize_chrome_trace(document)
        assert "simulate_online" in digest
        assert "engine.replay" in digest

    def test_load_accepts_bare_array_variant(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text('[{"name": "x", "ph": "X", "ts": 0, "dur": 1, '
                        '"pid": 1, "tid": 1}]')
        document = load_chrome_trace(path)
        assert len(document["traceEvents"]) == 1

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(ValidationError):
            load_chrome_trace(path)
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            load_chrome_trace(path)

    def test_jsonl_round_trip_is_exact(self, tmp_path):
        tracer = self._traced_run()
        path = tmp_path / "events.jsonl"
        count = write_jsonl(tracer.events, path)
        assert count == len(tracer.events)
        assert list(read_jsonl(path)) == tracer.events

    def test_jsonl_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "instant", "name": "a", "ts_ns": 1}\n'
                        "{torn\n")
        with pytest.raises(ValidationError):
            list(read_jsonl(path))

    def test_summarize_empty_trace(self):
        assert summarize_chrome_trace({"traceEvents": []}) == "empty trace"

    def test_engine_replay_emits_sim_counters(self):
        tracer = Tracer()
        vms = generate_vms(10, mean_interarrival=2.0, seed=2)
        with use_tracer(tracer):
            _, result = simulate_online(
                vms, Cluster.paper_all_types(8), MinIncrementalEnergy())
        counters = [e for e in tracer.events if e.kind == COUNTER]
        assert len(counters) == result.horizon
        assert all(e.clock == "sim" for e in counters)
        assert {"power", "active_servers", "running_vms"} <= set(
            counters[0].args)

    def test_no_op_tracer_leaves_simulation_untraced(self):
        vms = generate_vms(10, mean_interarrival=2.0, seed=2)
        before = len(NULL_TRACER)
        simulate_online(vms, Cluster.paper_all_types(8),
                        MinIncrementalEnergy())
        assert len(NULL_TRACER) == before == 0
