"""Protocol v2: ``place_batch``, version negotiation, backpressure.

The daemon's batch path must be *exactly* the single-``place`` path
with fewer round trips: the same placements, the same Eq.-17 energy,
one journal group per batch (so a crash never replays half of one),
and whole-batch validation before any state changes. Version
negotiation keeps v1 clients working unchanged while rejecting unknown
versions with a structured error.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import ProtocolVersionError, ServiceError
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.service import (
    SUPPORTED_VERSIONS,
    AllocationDaemon,
    ClusterStateStore,
    AllocationClient,
    negotiate_version,
    place_batch_request,
    place_request,
    replay_trace,
    serve_tcp,
)
from repro.service.protocol import encode, parse_request
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


def fresh_daemon(servers=30, **kwargs):
    store = ClusterStateStore(Cluster.paper_all_types(servers))
    return AllocationDaemon(store, **kwargs)


class TestVersionNegotiation:
    def test_missing_v_means_version_1(self):
        assert negotiate_version({"op": "ping"}) == 1

    def test_supported_versions_accepted(self):
        for version in SUPPORTED_VERSIONS:
            assert negotiate_version({"v": version}) == version

    @pytest.mark.parametrize("bad", [4, 0, -1, "2", 2.0, True, None, []])
    def test_unsupported_or_malformed_rejected(self, bad):
        with pytest.raises(ProtocolVersionError) as excinfo:
            negotiate_version({"v": bad})
        assert excinfo.value.supported == SUPPORTED_VERSIONS

    def test_v1_request_gets_no_version_echo(self):
        daemon = fresh_daemon()
        response = daemon.handle({"op": "ping"})
        assert response["ok"] and "v" not in response

    def test_versioned_request_echoes_v(self):
        daemon = fresh_daemon()
        for version in SUPPORTED_VERSIONS:
            response = daemon.handle({"op": "ping", "v": version})
            assert response["ok"] and response["v"] == version

    def test_unknown_version_gets_structured_error(self):
        daemon = fresh_daemon()
        response = json.loads(
            daemon.handle_line(encode({"op": "ping", "v": 99})))
        assert response["ok"] is False
        assert response["supported_versions"] == list(SUPPORTED_VERSIONS)
        # v >= 3 requests read the typed envelope
        assert response["error"]["code"] == "unsupported_version"
        assert "99" in response["error"]["message"]

    def test_malformed_version_gets_structured_error(self):
        daemon = fresh_daemon()
        response = json.loads(
            daemon.handle_line(encode({"op": "ping", "v": "two"})))
        assert response["ok"] is False
        assert response["supported_versions"] == list(SUPPORTED_VERSIONS)

    def test_place_batch_requires_v2(self):
        with pytest.raises(ServiceError, match="version 2"):
            parse_request(encode({"op": "place_batch", "vms": []}))
        with pytest.raises(ServiceError, match="version 2"):
            parse_request(
                encode({"op": "place_batch", "v": 1, "vms": []}))


class TestPlaceBatch:
    def test_batch_matches_individual_places_bit_exact(self):
        vms = generate_vms(80, mean_interarrival=1.5, seed=9)
        one = fresh_daemon(40)
        for vm in sorted(vms, key=lambda v: (v.start, v.end, v.vm_id)):
            assert one.handle(place_request(vm))["ok"]
        batched = fresh_daemon(40, shards=4)
        response = batched.handle(place_batch_request(vms))
        assert response["ok"] and response["count"] == 80
        assert dict(batched.store.placements) == dict(one.store.placements)
        assert batched.store.energy_accumulated == \
            one.store.energy_accumulated  # bit-identical
        assert response["energy_delta"] == pytest.approx(
            one.store.energy_accumulated, rel=1e-9)

    def test_decisions_come_back_in_request_order(self):
        daemon = fresh_daemon()
        vms = list(reversed(generate_vms(20, mean_interarrival=2.0,
                                         seed=1)))
        response = daemon.handle(place_batch_request(vms))
        assert [item["vm_id"] for item in response["decisions"]] == \
            [vm.vm_id for vm in vms]
        for item in response["decisions"]:
            assert item["decision"] in ("placed", "rejected")

    def test_empty_batch_is_ok_and_not_journaled(self, tmp_path):
        daemon = fresh_daemon(5, data_dir=tmp_path, fsync=False)
        before = daemon.journal.next_seq
        response = daemon.handle(place_batch_request([]))
        assert response["ok"] and response["count"] == 0
        assert daemon.journal.next_seq == before

    def test_duplicate_inside_batch_rejects_whole_batch(self):
        daemon = fresh_daemon(5)
        vms = [make_vm(1, 0, 5), make_vm(1, 2, 6)]
        response = daemon.handle(place_batch_request(vms))
        assert response["ok"] is False
        assert "vm_id 1" in response["error"]["message"]
        assert len(daemon.store.placements) == 0  # nothing committed

    def test_duplicate_against_committed_rejects_whole_batch(self):
        daemon = fresh_daemon(5)
        assert daemon.handle(
            place_request(make_vm(7, 0, 4)))["decision"] == "placed"
        response = daemon.handle(
            place_batch_request([make_vm(8, 0, 4), make_vm(7, 5, 9)]))
        assert response["ok"] is False
        assert "vm_id 7" in response["error"]["message"]
        assert len(daemon.store.placements) == 1  # vm8 was not committed

    def test_rejections_are_counted_not_fatal(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        vms = [make_vm(i, 0, 10, cpu=6.0) for i in range(3)]
        response = daemon.handle(place_batch_request(vms))
        assert response["ok"]
        assert response["placed"] == 1 and response["rejected"] == 2
        rejected = [item for item in response["decisions"]
                    if item["decision"] == "rejected"]
        assert all(item["server_id"] is None for item in rejected)

    def test_batch_size_histogram_observed(self):
        daemon = fresh_daemon()
        vms = generate_vms(12, mean_interarrival=2.0, seed=2)
        daemon.handle(place_batch_request(vms))
        assert daemon.metrics.batch_size.count == 1
        assert daemon.metrics.batch_size.sum == 12.0


class TestBatchDurability:
    def test_batch_is_one_journal_group(self, tmp_path):
        daemon = fresh_daemon(20, data_dir=tmp_path, fsync=False)
        vms = generate_vms(15, mean_interarrival=2.0, seed=4)
        before = daemon.journal.next_seq
        daemon.handle(place_batch_request(vms))
        assert daemon.journal.next_seq == before + 1  # one entry, 15 VMs

    def test_kill_and_restore_replays_batches_bit_exact(self, tmp_path):
        vms = generate_vms(90, mean_interarrival=1.5, seed=6)
        daemon = fresh_daemon(45, data_dir=tmp_path, fsync=False,
                              snapshot_every=0, shards=2)
        daemon.handle(place_batch_request(vms[:40]))
        daemon.handle(place_batch_request(vms[40:70]))
        placements = dict(daemon.store.placements)
        energy = daemon.store.energy_accumulated
        requests = dict(daemon.metrics.requests)
        del daemon  # hard kill: no shutdown, no final snapshot

        restored = AllocationDaemon.restore(tmp_path, fsync=False)
        assert dict(restored.store.placements) == placements
        assert restored.store.energy_accumulated == energy
        assert restored.metrics.requests == requests
        # the restored daemon keeps serving batches
        response = restored.handle(place_batch_request(vms[70:]))
        assert response["ok"] and response["count"] == 20


class TestBackpressure:
    def test_overloaded_response_when_window_full(self):
        daemon = fresh_daemon(5, max_inflight=1)
        assert daemon._ingest.acquire(blocking=False)  # fill the window
        try:
            response = daemon.handle(
                place_request(make_vm(0, 0, 5)))
            assert response["ok"] is False
            assert response["error"] == "overloaded"
            assert 0.01 <= response["retry_after"] <= 5.0
            assert daemon.metrics.overloaded == 1
            assert len(daemon.store.placements) == 0
            # read-only ops are never shed
            assert daemon.handle({"op": "ping"})["ok"]
            assert daemon.handle({"op": "stats"})["ok"]
        finally:
            daemon._ingest.release()
        # window drained: the same request now succeeds
        assert daemon.handle(
            place_request(make_vm(0, 0, 5)))["decision"] == "placed"

    def test_zero_disables_the_bound(self):
        daemon = fresh_daemon(5, max_inflight=0)
        assert daemon._ingest is None
        assert daemon.handle(place_request(make_vm(0, 0, 5)))["ok"]

    def test_overload_counter_rendered(self):
        daemon = fresh_daemon(5)
        exposition = daemon.metrics.render(daemon.store)
        assert "repro_requests_overloaded_total 0" in exposition


class TestBatchOverTCP:
    def _serve(self, daemon):
        server = serve_tcp(daemon, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        return server

    def test_sharded_daemon_batch_replay_end_to_end(self):
        vms = generate_vms(100, mean_interarrival=2.0, seed=12)
        batched = fresh_daemon(50, shards=4)
        sequential = fresh_daemon(50)
        server = self._serve(batched)
        host, port = server.server_address
        try:
            with AllocationClient(host, port) as client:
                summary = replay_trace(client, vms, batch=30)
                assert summary.offered == 100
                assert summary.placed + summary.rejected == 100
        finally:
            server.shutdown()
            server.server_close()
        for vm in sorted(vms, key=lambda v: (v.start, v.end, v.vm_id)):
            sequential.handle(place_request(vm))
        sequential.handle({"op": "tick",
                           "now": batched.store.clock})
        assert dict(batched.store.placements) == \
            dict(sequential.store.placements)
        assert batched.store.energy_accumulated == \
            sequential.store.energy_accumulated

    def test_batch_and_v_echo_over_the_wire(self):
        daemon = fresh_daemon(10)
        server = self._serve(daemon)
        host, port = server.server_address
        try:
            with AllocationClient(host, port) as client:
                vms = generate_vms(8, mean_interarrival=2.0, seed=3)
                response = client.place_batch(vms)
                assert response["ok"] and response["v"] == 3
                bad = client._request({"op": "ping", "v": 99})
                assert bad["ok"] is False
                assert bad["supported_versions"] == \
                    list(SUPPORTED_VERSIONS)
                # the connection survives the version error
                assert client.ping()["ok"]
        finally:
            server.shutdown()
            server.server_close()
