"""Tests for the unified typed result vocabulary (:mod:`repro.results`)."""

from __future__ import annotations

import pytest

from repro.allocators.batch import Decision
from repro.allocators.state import ServerState
from repro.exceptions import ValidationError
from repro.model.server import Server, ServerSpec
from repro.results import STATUSES, AdmissionDecision, PlacementResult

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestPlacementResult:
    def test_statuses_are_pinned(self):
        assert STATUSES == ("placed", "rejected", "deferred", "replaced")

    def test_rejects_unknown_status(self):
        with pytest.raises(ValidationError):
            PlacementResult(vm_id=0, status="teleported")

    def test_server_id_must_match_status(self):
        with pytest.raises(ValidationError):
            PlacementResult(vm_id=0, status="placed")  # no server_id
        with pytest.raises(ValidationError):
            PlacementResult(vm_id=0, status="rejected", server_id=3)

    def test_placed_covers_every_non_rejected_status(self):
        for status in ("placed", "deferred", "replaced"):
            assert PlacementResult(vm_id=0, status=status,
                                   server_id=1).placed
        assert not PlacementResult(vm_id=0, status="rejected").placed

    def test_from_decision_placed(self):
        vm = make_vm(4, 1, 5)
        result = PlacementResult.from_decision(
            Decision(vm=vm, server_id=2, energy_delta=7.5))
        assert result.status == "placed"
        assert result.server_id == 2
        assert result.energy_delta == 7.5
        assert result.vm is vm

    def test_from_decision_rejected(self):
        result = PlacementResult.from_decision(
            Decision(vm=make_vm(4, 1, 5), server_id=None))
        assert result.status == "rejected"
        assert result.server_id is None

    def test_from_admission_maps_delay_to_deferred(self):
        state = ServerState(Server(3, SPEC))
        vm = make_vm(9, 2, 6)
        on_time = PlacementResult.from_admission(
            AdmissionDecision(vm=vm, state=state, delay=0),
            energy_delta=4.0)
        assert (on_time.status, on_time.server_id) == ("placed", 3)
        assert on_time.energy_delta == 4.0
        late = PlacementResult.from_admission(
            AdmissionDecision(vm=vm, state=state, delay=2))
        assert (late.status, late.delay) == ("deferred", 2)

    def test_from_admission_none_is_rejected(self):
        vm = make_vm(9, 2, 6)
        result = PlacementResult.from_admission(None, vm=vm)
        assert result.status == "rejected"
        assert result.vm_id == 9
        with pytest.raises(ValidationError):
            PlacementResult.from_admission(None)

    def test_from_response_place_shapes(self):
        placed = PlacementResult.from_response(
            {"ok": True, "vm_id": 1, "decision": "placed", "server_id": 4,
             "delay": 0, "energy_delta": 2.5, "latency_ms": 0.3})
        assert placed.status == "placed"
        assert placed.latency_ms == 0.3
        deferred = PlacementResult.from_response(
            {"vm_id": 2, "decision": "placed", "server_id": 4, "delay": 3})
        assert deferred.status == "deferred"
        rejected = PlacementResult.from_response(
            {"vm_id": 3, "decision": "rejected"})
        assert rejected.status == "rejected"
        assert rejected.latency_ms is None

    def test_from_response_requires_a_decision(self):
        with pytest.raises(ValidationError):
            PlacementResult.from_response({"ok": True, "vm_id": 1})

    def test_from_response_keeps_explanation_mapping(self):
        result = PlacementResult.from_response(
            {"vm_id": 1, "decision": "placed", "server_id": 0,
             "explanation": {"candidates": []}})
        assert result.explanation == {"candidates": []}

    def test_aliases_point_at_the_defining_modules(self):
        from repro.allocators.batch import Decision as BatchDecision
        from repro.results import Decision as ResultsDecision
        from repro.simulation.admission import (
            AdmissionDecision as SimAdmission,
        )
        assert ResultsDecision is BatchDecision
        assert AdmissionDecision is SimAdmission
