"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    AllocationError,
    CapacityError,
    ReproError,
    SimulationError,
    SolverError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ValidationError, CapacityError, AllocationError, SolverError,
        SimulationError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_validation_error_is_value_error(self):
        # API boundary promise: generic callers catching ValueError work.
        assert issubclass(ValidationError, ValueError)
        with pytest.raises(ValueError):
            raise ValidationError("bad input")


class TestPayloads:
    def test_capacity_error_carries_context(self):
        err = CapacityError("overload", server_id=3, time=17)
        assert err.server_id == 3
        assert err.time == 17
        assert "overload" in str(err)

    def test_capacity_error_defaults(self):
        err = CapacityError("overload")
        assert err.server_id is None
        assert err.time is None

    def test_allocation_error_carries_vm(self):
        err = AllocationError("no fit", vm_id=9)
        assert err.vm_id == 9


class TestCatchability:
    def test_single_base_catch(self):
        # One except clause at an API boundary catches everything.
        for exc in (ValidationError("x"), CapacityError("x"),
                    AllocationError("x"), SolverError("x"),
                    SimulationError("x")):
            try:
                raise exc
            except ReproError:
                pass
