"""Tests for trace transforms."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.workload.transforms import (
    merge_traces,
    scale_load,
    scale_time,
    shift,
    slice_window,
)
from repro.workload.generator import generate_vms

from conftest import make_vm


def sample():
    return [make_vm(0, 1, 4), make_vm(1, 3, 8), make_vm(2, 10, 10)]


class TestScaleTime:
    def test_doubling(self):
        scaled = scale_time(sample(), 2.0)
        assert [(v.start, v.duration) for v in scaled] == \
            [(1, 8), (5, 12), (19, 2)]

    def test_identity(self):
        scaled = scale_time(sample(), 1.0)
        assert [(v.start, v.end) for v in scaled] == \
            [(v.start, v.end) for v in sample()]

    def test_compression_keeps_min_duration(self):
        scaled = scale_time(sample(), 0.01)
        assert all(v.duration >= 1 for v in scaled)
        assert all(v.start >= 1 for v in scaled)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            scale_time(sample(), 0.0)

    @given(st.floats(0.1, 5.0))
    def test_preserves_count_and_ids_dense(self, factor):
        scaled = scale_time(sample(), factor)
        assert len(scaled) == 3
        assert [v.vm_id for v in scaled] == [0, 1, 2]


class TestScaleLoad:
    def test_zero_empties(self):
        assert scale_load(sample(), 0.0, seed=0) == []

    def test_one_keeps_all(self):
        assert len(scale_load(sample(), 1.0, seed=0)) == 3

    def test_growth_duplicates(self):
        grown = scale_load(sample(), 2.0, seed=0)
        assert len(grown) == 6

    def test_fractional_thinning_statistics(self):
        vms = generate_vms(2000, mean_interarrival=1.0, seed=0)
        kept = scale_load(vms, 0.5, seed=1)
        assert 850 < len(kept) < 1150

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            scale_load(sample(), -0.1)

    def test_ids_dense_after_duplication(self):
        grown = scale_load(sample(), 2.4, seed=2)
        assert [v.vm_id for v in grown] == list(range(len(grown)))


class TestSliceWindow:
    def test_clip_truncates_and_rebases(self):
        sliced = slice_window(sample(), 3, 6)
        # vm0 [1,4] -> [3,4] -> rebased [1,2]; vm1 [3,8] -> [3,6] -> [1,4]
        assert [(v.start, v.end) for v in sliced] == [(1, 2), (1, 4)]

    def test_no_clip_returns_whole_vms(self):
        sliced = slice_window(sample(), 3, 6, clip=False)
        assert [(v.start, v.end) for v in sliced] == [(1, 4), (3, 8)]

    def test_empty_window(self):
        assert slice_window(sample(), 100, 200) == []

    def test_rejects_reversed_window(self):
        with pytest.raises(ValidationError):
            slice_window(sample(), 6, 3)


class TestMergeAndShift:
    def test_merge_counts(self):
        merged = merge_traces(sample(), sample())
        assert len(merged) == 6
        assert [v.vm_id for v in merged] == list(range(6))

    def test_merge_empty(self):
        assert merge_traces([], []) == []

    def test_shift_translates(self):
        shifted = shift(sample(), 5)
        assert [(v.start, v.end) for v in shifted] == \
            [(6, 9), (8, 13), (15, 15)]

    def test_shift_guard(self):
        with pytest.raises(ValidationError):
            shift(sample(), -5)

    def test_shift_then_merge_models_two_regions(self):
        day_a = sample()
        day_b = shift(sample(), 2)
        merged = merge_traces(day_a, day_b)
        assert len(merged) == 6
        starts = [v.start for v in merged]
        assert starts == sorted(starts)
