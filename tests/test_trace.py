"""Tests for trace persistence (CSV and JSON round trips)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ValidationError
from repro.workload.generator import generate_vms
from repro.workload.trace import Trace

from conftest import make_vm


@pytest.fixture
def trace() -> Trace:
    return Trace.from_vms(generate_vms(25, mean_interarrival=2.0, seed=0),
                          source="test", seed=0)


class TestBasics:
    def test_len_and_iter(self, trace):
        assert len(trace) == 25
        assert len(list(trace)) == 25

    def test_horizon(self):
        t = Trace.from_vms([make_vm(0, 1, 9), make_vm(1, 2, 4)])
        assert t.horizon == 9

    def test_horizon_empty(self):
        assert Trace.from_vms([]).horizon == 0

    def test_metadata_kept(self, trace):
        assert trace.metadata["source"] == "test"


class TestCSV:
    def test_round_trip(self, tmp_path, trace):
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = Trace.load_csv(path)
        assert [(v.vm_id, v.spec.name, v.cpu, v.memory, v.start, v.end)
                for v in loaded] == \
               [(v.vm_id, v.spec.name, v.cpu, v.memory, v.start, v.end)
                for v in trace]

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValidationError, match="header"):
            Trace.load_csv(path)

    def test_rejects_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("vm_id,type,cpu,memory,start,end\n"
                        "0,t,not-a-number,1,1,2\n")
        with pytest.raises(ValidationError, match=":2"):
            Trace.load_csv(path)

    def test_rejects_invalid_interval(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("vm_id,type,cpu,memory,start,end\n0,t,1,1,5,3\n")
        with pytest.raises(ValidationError):
            Trace.load_csv(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        Trace.from_vms([]).save_csv(path)
        assert len(Trace.load_csv(path)) == 0


class TestJSON:
    def test_round_trip(self, tmp_path, trace):
        path = tmp_path / "trace.json"
        trace.save_json(path)
        loaded = Trace.load_json(path)
        assert len(loaded) == len(trace)
        assert loaded.metadata["source"] == "test"
        assert [(v.vm_id, v.start, v.end) for v in loaded] == \
            [(v.vm_id, v.start, v.end) for v in trace]

    def test_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            Trace.load_json(path)

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "vms": []}))
        with pytest.raises(ValidationError, match="version"):
            Trace.load_json(path)

    def test_rejects_malformed_record(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "vms": [{"vm_id": 0, "type": "t", "cpu": 1.0}],
        }))
        with pytest.raises(ValidationError, match="record #0"):
            Trace.load_json(path)

    def test_round_trip_preserves_allocatability(self, tmp_path, trace):
        # A reloaded trace should behave identically in an allocation.
        from repro.allocators import MinIncrementalEnergy
        from repro.energy.cost import allocation_cost
        from repro.model.cluster import Cluster

        path = tmp_path / "t.json"
        trace.save_json(path)
        loaded = Trace.load_json(path)
        cluster = Cluster.paper_all_types(12)
        original = allocation_cost(MinIncrementalEnergy().allocate(
            list(trace), cluster)).total
        replayed = allocation_cost(MinIncrementalEnergy().allocate(
            list(loaded), cluster)).total
        assert original == replayed


class TestPhasedJSON:
    def test_round_trip_preserves_phases(self, tmp_path):
        from repro.model.phases import PhasedVM
        from repro.workload.phased import PhasedWorkload

        vms = PhasedWorkload(mean_interarrival=2.0).generate(12, rng=0)
        path = tmp_path / "phased.json"
        Trace.from_vms(vms).save_json(path)
        loaded = list(Trace.load_json(path))
        assert all(isinstance(vm, PhasedVM) for vm in loaded)
        assert [vm.phases for vm in loaded] == [vm.phases for vm in vms]
        assert [vm.interval for vm in loaded] == \
            [vm.interval for vm in vms]

    def test_mixed_plain_and_phased(self, tmp_path):
        from repro.model.phases import DemandPhase, PhasedVM

        plain = make_vm(0, 1, 4)
        phased = PhasedVM.from_phases(1, 2, [DemandPhase(2, 1.0, 1.0),
                                             DemandPhase(3, 2.0, 1.0)])
        path = tmp_path / "mixed.json"
        Trace.from_vms([plain, phased]).save_json(path)
        loaded = list(Trace.load_json(path))
        assert type(loaded[0]).__name__ == "VM"
        assert type(loaded[1]).__name__ == "PhasedVM"

    def test_malformed_phase_record(self, tmp_path):
        import json as json_mod

        path = tmp_path / "bad.json"
        path.write_text(json_mod.dumps({
            "format_version": 1,
            "vms": [{"vm_id": 0, "type": "t", "cpu": 1.0, "memory": 1.0,
                     "start": 1, "end": 2,
                     "phases": [{"duration": "oops"}]}],
        }))
        with pytest.raises(ValidationError, match="record #0"):
            Trace.load_json(path)

    def test_csv_stores_flat_schema_only(self, tmp_path):
        # CSV keeps the six-column schema; a phased VM degrades to its
        # peak-demand plain twin on reload.
        from repro.model.phases import DemandPhase, PhasedVM

        phased = PhasedVM.from_phases(0, 1, [DemandPhase(2, 1.0, 1.0),
                                             DemandPhase(2, 3.0, 1.0)])
        path = tmp_path / "p.csv"
        Trace.from_vms([phased]).save_csv(path)
        loaded = list(Trace.load_csv(path))
        assert type(loaded[0]).__name__ == "VM"
        assert loaded[0].cpu == 3.0  # the peak
