"""Tests for the workload analysis package (conflicts and bounds)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    concurrency_profile,
    conflict_graph,
    energy_lower_bound,
    peak_demand,
)
from repro.energy.cost import allocation_cost
from repro.allocators import make_allocator
from repro.exceptions import ValidationError
from repro.ilp import solve_relaxation
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms

from conftest import make_vm


def vms_strategy():
    return st.lists(
        st.tuples(st.integers(1, 50), st.integers(0, 10)),
        min_size=0, max_size=15,
    ).map(lambda pairs: [make_vm(i, s, s + d, cpu=0.5, memory=0.5)
                         for i, (s, d) in enumerate(pairs)])


class TestConflictGraph:
    def test_empty(self):
        graph = conflict_graph([])
        assert graph.number_of_nodes() == 0

    def test_overlap_edge(self):
        vms = [make_vm(0, 1, 5), make_vm(1, 5, 9)]
        graph = conflict_graph(vms)
        assert graph.has_edge(0, 1)

    def test_back_to_back_no_edge(self):
        vms = [make_vm(0, 1, 4), make_vm(1, 5, 9)]
        graph = conflict_graph(vms)
        assert not graph.has_edge(0, 1)

    def test_vm_stored_on_node(self):
        vms = [make_vm(0, 1, 2)]
        graph = conflict_graph(vms)
        assert graph.nodes[0]["vm"] is vms[0]

    @given(vms_strategy())
    def test_edges_iff_overlap(self, vms):
        graph = conflict_graph(vms)
        for a in vms:
            for b in vms:
                if a.vm_id >= b.vm_id:
                    continue
                assert graph.has_edge(a.vm_id, b.vm_id) == \
                    a.interval.overlaps(b.interval)

    @given(vms_strategy())
    def test_clique_number_equals_max_concurrency(self, vms):
        # Interval graphs: omega(G) == max point coverage.
        graph = conflict_graph(vms)
        profile = concurrency_profile(vms)
        if vms:
            omega = max(len(c) for c in nx.find_cliques(graph))
            assert omega == profile.max_concurrent
        else:
            assert profile.max_concurrent == 0


class TestConcurrencyProfile:
    def test_empty(self):
        profile = concurrency_profile([])
        assert profile.max_concurrent == 0
        assert profile.is_sequential

    def test_simple_overlap(self):
        vms = [make_vm(0, 1, 5, cpu=2.0, memory=3.0),
               make_vm(1, 3, 7, cpu=4.0, memory=1.0)]
        profile = concurrency_profile(vms)
        assert profile.max_concurrent == 2
        assert profile.peak_time == 3
        assert profile.peak_cpu == 6.0
        assert profile.peak_memory == 4.0
        assert not profile.is_sequential

    def test_sequential_workload(self):
        vms = [make_vm(0, 1, 2), make_vm(1, 5, 6), make_vm(2, 10, 11)]
        assert concurrency_profile(vms).is_sequential

    def test_peak_demand_helper(self):
        vms = [make_vm(0, 1, 5, cpu=2.0), make_vm(1, 2, 3, cpu=3.0)]
        cpu, mem = peak_demand(vms)
        assert cpu == 5.0

    @given(vms_strategy())
    def test_peaks_match_brute_force(self, vms):
        profile = concurrency_profile(vms)
        if not vms:
            return
        horizon = max(vm.end for vm in vms)
        best_count = max(
            sum(1 for vm in vms if vm.active_at(t))
            for t in range(1, horizon + 1))
        best_cpu = max(
            sum(vm.cpu for vm in vms if vm.active_at(t))
            for t in range(1, horizon + 1))
        assert profile.max_concurrent == best_count
        assert profile.peak_cpu == pytest.approx(best_cpu)


class TestEnergyLowerBound:
    def test_empty_workload(self):
        cluster = Cluster.paper_all_types(2)
        bound = energy_lower_bound([], cluster)
        assert bound.total == 0.0

    def test_below_every_plan(self):
        for seed in range(4):
            vms = generate_vms(50, mean_interarrival=3.0, seed=seed)
            cluster = Cluster.paper_all_types(25)
            bound = energy_lower_bound(vms, cluster)
            for algo in ("min-energy", "ffps", "worst-fit"):
                cost = allocation_cost(
                    make_allocator(algo, seed=seed).allocate(
                        vms, cluster)).total
                assert bound.total <= cost + 1e-6

    def test_below_lp_relaxation(self):
        vms = generate_vms(8, mean_interarrival=2.0, seed=2)
        cluster = Cluster.paper_all_types(5)
        bound = energy_lower_bound(vms, cluster)
        lp = solve_relaxation(vms, cluster).lower_bound
        assert bound.total <= lp + 1e-6

    def test_rejects_unplaceable_vm(self):
        cluster = Cluster.paper_small_types(3)
        giant = make_vm(0, 1, 2, cpu=1000.0)
        with pytest.raises(ValidationError):
            energy_lower_bound([giant], cluster)

    def test_gap_of(self):
        vms = generate_vms(20, mean_interarrival=2.0, seed=0)
        cluster = Cluster.paper_all_types(10)
        bound = energy_lower_bound(vms, cluster)
        assert bound.gap_of(bound.total) == pytest.approx(0.0)
        assert bound.gap_of(2 * bound.total) == pytest.approx(1.0)

    def test_components_nonnegative(self):
        vms = generate_vms(30, mean_interarrival=1.0, seed=3)
        cluster = Cluster.paper_all_types(15)
        bound = energy_lower_bound(vms, cluster)
        assert bound.run > 0
        assert bound.idle > 0
