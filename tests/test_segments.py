"""Tests for busy/idle segment decomposition (paper Fig. 1)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.energy.segments import (
    busy_segments,
    idle_segments,
    timeline_of,
)
from repro.model.intervals import TimeInterval

from conftest import make_vm


def vms_strategy():
    return st.lists(
        st.tuples(st.integers(1, 60), st.integers(0, 15)),
        min_size=0, max_size=15,
    ).map(lambda pairs: [make_vm(i, s, s + d)
                         for i, (s, d) in enumerate(pairs)])


class TestBusySegments:
    def test_empty(self):
        assert busy_segments([]) == []

    def test_single_vm(self):
        assert busy_segments([make_vm(0, 2, 5)]) == [TimeInterval(2, 5)]

    def test_overlapping_vms_merge(self):
        vms = [make_vm(0, 1, 4), make_vm(1, 3, 8)]
        assert busy_segments(vms) == [TimeInterval(1, 8)]

    def test_back_to_back_vms_form_one_segment(self):
        # v1 ends at t=3, v2 starts at t=4: no idle unit between them.
        vms = [make_vm(0, 1, 3), make_vm(1, 4, 6)]
        assert busy_segments(vms) == [TimeInterval(1, 6)]

    def test_gap_separates_segments(self):
        vms = [make_vm(0, 1, 3), make_vm(1, 5, 6)]
        assert busy_segments(vms) == [TimeInterval(1, 3), TimeInterval(5, 6)]


class TestIdleSegments:
    def test_no_idle_for_single_vm(self):
        assert idle_segments([make_vm(0, 1, 5)]) == []

    def test_single_gap(self):
        vms = [make_vm(0, 1, 3), make_vm(1, 7, 9)]
        assert idle_segments(vms) == [TimeInterval(4, 6)]

    def test_multiple_gaps(self):
        vms = [make_vm(0, 1, 2), make_vm(1, 5, 6), make_vm(2, 10, 11)]
        assert idle_segments(vms) == [TimeInterval(3, 4), TimeInterval(7, 9)]


class TestTimeline:
    def test_alternation(self):
        vms = [make_vm(0, 1, 2), make_vm(1, 5, 6)]
        tl = timeline_of(vms)
        assert tl.busy == (TimeInterval(1, 2), TimeInterval(5, 6))
        assert tl.idle == (TimeInterval(3, 4),)
        assert tl.busy_length == 4
        assert tl.idle_length == 2
        assert tl.span == TimeInterval(1, 6)

    def test_empty_timeline(self):
        tl = timeline_of([])
        assert tl.busy == ()
        assert tl.span is None
        assert tl.busy_length == 0

    def test_is_busy_is_idle(self):
        tl = timeline_of([make_vm(0, 1, 2), make_vm(1, 5, 6)])
        assert tl.is_busy_at(1)
        assert tl.is_idle_at(3)
        assert not tl.is_busy_at(3)
        assert not tl.is_idle_at(7)  # outside the span

    @given(vms_strategy())
    def test_busy_plus_idle_covers_span(self, vms):
        tl = timeline_of(vms)
        if tl.span is None:
            assert not vms
            return
        assert tl.busy_length + tl.idle_length == tl.span.length

    @given(vms_strategy())
    def test_every_vm_unit_is_busy(self, vms):
        tl = timeline_of(vms)
        for vm in vms:
            for t in vm.interval.times():
                assert tl.is_busy_at(t)

    @given(vms_strategy())
    def test_busy_and_idle_strictly_alternate(self, vms):
        tl = timeline_of(vms)
        assert len(tl.idle) == max(0, len(tl.busy) - 1)
        for busy, idle in zip(tl.busy, tl.idle):
            assert idle.start == busy.end + 1
        for idle, busy in zip(tl.idle, tl.busy[1:]):
            assert busy.start == idle.end + 1
