"""Tests for wake-up latency metrics and warm pools."""

from __future__ import annotations

import pytest

from repro.allocators import MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.exceptions import ValidationError
from repro.extensions.warmpool import (
    evaluate_warm_pool,
    warm_pool_frontier,
)
from repro.metrics.latency import latency_stats, wakeup_latencies
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=2.0)


class TestWakeupLatencies:
    def test_first_vm_waits_for_boot(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vm = make_vm(0, 1, 5)
        plan = Allocation(cluster, {vm: 0})
        assert wakeup_latencies(plan) == {0: 2.0}

    def test_joining_vm_starts_instantly(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        first = make_vm(0, 1, 9)
        joiner = make_vm(1, 4, 6)
        plan = Allocation(cluster, {first: 0, joiner: 0})
        latencies = wakeup_latencies(plan)
        assert latencies[0] == 2.0
        assert latencies[1] == 0.0

    def test_vm_after_slept_gap_waits_again(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        # 20-unit gap: idle 1000 > alpha 200 -> sleep -> rewake.
        early = make_vm(0, 1, 1)
        late = make_vm(1, 22, 22)
        plan = Allocation(cluster, {early: 0, late: 0})
        latencies = wakeup_latencies(plan)
        assert latencies[1] == 2.0

    def test_vm_after_bridged_gap_no_wait(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        # 1-unit gap: cheaper to idle through -> no wake, no wait.
        early = make_vm(0, 1, 2)
        late = make_vm(1, 4, 5)
        plan = Allocation(cluster, {early: 0, late: 0})
        assert wakeup_latencies(plan)[1] == 0.0

    def test_stats(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        plan = Allocation(cluster, {make_vm(0, 1, 9): 0,
                                    make_vm(1, 4, 6): 0})
        stats = latency_stats(plan)
        assert stats.total == 2
        assert stats.affected == 1
        assert stats.mean == pytest.approx(1.0)
        assert stats.max == 2.0
        assert stats.affected_fraction == pytest.approx(0.5)

    def test_empty_plan(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        stats = latency_stats(Allocation(cluster, {}))
        assert stats.total == 0
        assert stats.affected_fraction == 0.0


class TestWarmPool:
    def plan(self, seed=0):
        vms = generate_vms(80, mean_interarrival=5.0, seed=seed)
        cluster = Cluster.paper_all_types(40)
        return MinIncrementalEnergy().allocate(vms, cluster)

    def test_pool_zero_matches_baseline(self):
        plan = self.plan()
        point = evaluate_warm_pool(plan, 0)
        assert point.energy == pytest.approx(allocation_cost(plan).total)
        assert point.mean_latency == pytest.approx(
            latency_stats(plan).mean)

    def test_rejects_negative_pool(self):
        with pytest.raises(ValidationError):
            evaluate_warm_pool(self.plan(), -1)

    def test_warming_trades_energy_for_latency(self):
        plan = self.plan()
        cold = evaluate_warm_pool(plan, 0)
        used = len(plan.used_servers())
        warm = evaluate_warm_pool(plan, used)
        assert warm.energy >= cold.energy - 1e-9
        assert warm.mean_latency <= cold.mean_latency + 1e-9

    def test_frontier_is_monotone_in_latency(self):
        plan = self.plan(seed=3)
        frontier = warm_pool_frontier(plan)
        latencies = [p.mean_latency for p in frontier]
        assert latencies == sorted(latencies, reverse=True)

    def test_frontier_sizes(self):
        plan = self.plan(seed=1)
        used = len(plan.used_servers())
        frontier = warm_pool_frontier(plan)
        assert [p.pool_size for p in frontier] == list(range(used + 1))

    def test_frontier_rejects_oversized_pool(self):
        plan = self.plan(seed=2)
        used = len(plan.used_servers())
        with pytest.raises(ValidationError):
            warm_pool_frontier(plan, sizes=[used + 1])

    def test_pool_picks_busiest_servers(self):
        plan = self.plan(seed=4)
        point = evaluate_warm_pool(plan, 2)
        loads = {sid: len(plan.vms_on(sid))
                 for sid in plan.used_servers()}
        picked = set(point.warm_servers)
        max_unpicked = max(
            (load for sid, load in loads.items() if sid not in picked),
            default=0)
        assert all(loads[sid] >= max_unpicked for sid in picked)
