"""Tests for the non-affine power evaluation extension."""

from __future__ import annotations

import pytest

from repro.allocators import FirstFitPowerSaving, MinIncrementalEnergy
from repro.energy.cost import SleepPolicy, allocation_cost
from repro.exceptions import ValidationError
from repro.extensions import SuperlinearPowerModel, evaluate_under_model
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestSuperlinearPowerModel:
    def test_gamma_one_is_affine(self):
        model = SuperlinearPowerModel(gamma=1.0)
        assert model.active_power(SPEC, 5.0) == pytest.approx(75.0)

    def test_convex_below_affine_midrange(self):
        model = SuperlinearPowerModel(gamma=2.0)
        assert model.active_power(SPEC, 5.0) == pytest.approx(62.5)

    def test_concave_above_affine_midrange(self):
        model = SuperlinearPowerModel(gamma=0.5)
        assert model.active_power(SPEC, 2.5) == pytest.approx(75.0)

    def test_endpoints_fixed_for_any_gamma(self):
        for gamma in (0.5, 1.0, 1.4, 3.0):
            model = SuperlinearPowerModel(gamma=gamma)
            assert model.active_power(SPEC, 0.0) == 50.0
            assert model.active_power(SPEC, 10.0) == 100.0

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ValidationError):
            SuperlinearPowerModel(gamma=0.0)

    def test_rejects_negative_load(self):
        with pytest.raises(ValidationError):
            SuperlinearPowerModel().active_power(SPEC, -1.0)


class TestEvaluateUnderModel:
    def test_gamma_one_matches_analytic_accounting(self):
        vms = generate_vms(50, mean_interarrival=3.0, seed=5)
        cluster = Cluster.paper_all_types(25)
        plan = MinIncrementalEnergy().allocate(vms, cluster)
        affine = evaluate_under_model(plan, SuperlinearPowerModel(1.0))
        assert affine == pytest.approx(allocation_cost(plan).total,
                                       rel=1e-9)

    def test_single_vm_hand_computed(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vm = make_vm(0, 1, 4, cpu=5.0)  # u = 0.5 for 4 units
        plan = Allocation(cluster, {vm: 0})
        energy = evaluate_under_model(plan, SuperlinearPowerModel(2.0))
        # 4 units at P = 50 + 50*0.25 = 62.5, plus one wake (100)
        assert energy == pytest.approx(4 * 62.5 + 100.0)

    def test_convex_model_evaluates_cheaper_midrange(self):
        vms = generate_vms(50, mean_interarrival=3.0, seed=6)
        cluster = Cluster.paper_all_types(25)
        plan = MinIncrementalEnergy().allocate(vms, cluster)
        affine = evaluate_under_model(plan, SuperlinearPowerModel(1.0))
        convex = evaluate_under_model(plan, SuperlinearPowerModel(2.0))
        assert convex < affine

    def test_respects_sleep_policy(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vms = [make_vm(0, 1, 1), make_vm(1, 10, 10)]
        plan = Allocation(cluster, {v: 0 for v in vms})
        optimal = evaluate_under_model(plan, SuperlinearPowerModel(1.0))
        never = evaluate_under_model(plan, SuperlinearPowerModel(1.0),
                                     policy=SleepPolicy.NEVER_SLEEP)
        assert optimal < never

    def test_advantage_persists_under_nonaffine_bill(self):
        # The headline robustness result: plans optimised under the
        # affine model keep beating FFPS when billed super-linearly.
        vms = generate_vms(120, mean_interarrival=5.0, seed=1)
        cluster = Cluster.paper_all_types(60)
        ours = MinIncrementalEnergy().allocate(vms, cluster)
        ffps = FirstFitPowerSaving(seed=1).allocate(vms, cluster)
        for gamma in (1.0, 1.4, 2.0):
            model = SuperlinearPowerModel(gamma)
            assert evaluate_under_model(ours, model) < \
                evaluate_under_model(ffps, model)
