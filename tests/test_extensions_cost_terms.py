"""Tests for the cost-term ablation allocator."""

from __future__ import annotations

import pytest

from repro.allocators import MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.exceptions import ValidationError
from repro.extensions import CostWeights, WeightedMinEnergy
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms


class TestCostWeights:
    def test_defaults_all_one(self):
        weights = CostWeights()
        assert (weights.run, weights.busy_idle, weights.gaps,
                weights.wake) == (1.0, 1.0, 1.0, 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            CostWeights(run=-1.0)

    def test_describe(self):
        assert CostWeights().describe() == "run+busy_idle+gaps+wake"
        assert CostWeights(run=1, busy_idle=0, gaps=0,
                           wake=0).describe() == "run"
        assert CostWeights(0, 0, 0, 0).describe() == "none"


class TestWeightedMinEnergy:
    def test_default_weights_match_paper_heuristic(self):
        for seed in range(3):
            vms = generate_vms(40, mean_interarrival=3.0, seed=seed)
            cluster = Cluster.paper_all_types(20)
            reference = MinIncrementalEnergy().allocate(vms, cluster)
            weighted = WeightedMinEnergy().allocate(vms, cluster)
            assert allocation_cost(weighted).total == pytest.approx(
                allocation_cost(reference).total)

    def test_zero_weights_still_feasible(self):
        vms = generate_vms(30, mean_interarrival=3.0, seed=1)
        cluster = Cluster.paper_all_types(15)
        allocation = WeightedMinEnergy(
            CostWeights(0, 0, 0, 0)).allocate(vms, cluster)
        allocation.validate(vms=vms)

    def test_ignoring_idle_terms_costs_energy(self):
        # A selector that only sees run cost cannot weigh consolidation;
        # evaluated under the full accounting it must not beat the
        # complete rule (averaged over seeds).
        full_total = 0.0
        run_only_total = 0.0
        for seed in range(4):
            vms = generate_vms(60, mean_interarrival=5.0, seed=seed)
            cluster = Cluster.paper_all_types(30)
            full_total += allocation_cost(
                WeightedMinEnergy().allocate(vms, cluster)).total
            run_only = WeightedMinEnergy(
                CostWeights(run=1, busy_idle=0, gaps=0, wake=0))
            run_only_total += allocation_cost(
                run_only.allocate(vms, cluster)).total
        assert full_total <= run_only_total
