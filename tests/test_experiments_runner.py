"""Tests for the scenario runner and seed averaging."""

from __future__ import annotations

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import compare, compare_averaged, run_once

CONFIG = ScenarioConfig(n_vms=40, mean_interarrival=3.0, seeds=(0, 1))


class TestRunOnce:
    def test_produces_valid_allocation(self):
        result = run_once(CONFIG, "min-energy", seed=0)
        assert len(result.allocation) == 40
        result.allocation.validate()
        assert result.total_energy > 0
        assert 0 < result.utilization.cpu <= 1
        assert result.servers_used >= 1

    def test_deterministic(self):
        a = run_once(CONFIG, "ffps", seed=5)
        b = run_once(CONFIG, "ffps", seed=5)
        assert a.total_energy == b.total_energy

    def test_seed_changes_workload(self):
        a = run_once(CONFIG, "min-energy", seed=0)
        b = run_once(CONFIG, "min-energy", seed=1)
        assert a.total_energy != b.total_energy


class TestCompare:
    def test_same_workload_for_both(self):
        result = compare(CONFIG, seed=0)
        base_vms = {v.vm_id for v in result.baseline.allocation}
        algo_vms = {v.vm_id for v in result.algorithm.allocation}
        assert base_vms == algo_vms

    def test_reduction_consistent_with_energies(self):
        result = compare(CONFIG, seed=0)
        expected = (result.baseline.total_energy
                    - result.algorithm.total_energy) \
            / result.baseline.total_energy
        assert result.reduction == pytest.approx(expected)

    def test_custom_algorithm(self):
        result = compare(CONFIG, seed=0, algorithm="best-fit")
        assert result.algorithm.algorithm == "best-fit"


class TestCompareAveraged:
    def test_aggregates_all_seeds(self):
        result = compare_averaged(CONFIG)
        assert result.reduction.n == 2
        assert len(result.runs) == 2

    def test_mean_matches_runs(self):
        result = compare_averaged(CONFIG)
        manual = sum(r.reduction for r in result.runs) / len(result.runs)
        assert result.reduction.mean == pytest.approx(manual)

    def test_utilizations_in_unit_range(self):
        result = compare_averaged(CONFIG)
        for agg in (result.baseline_cpu_util, result.algorithm_cpu_util,
                    result.baseline_mem_util, result.algorithm_mem_util):
            assert 0 <= agg.mean <= 1
