"""Tests for active-interval derivation, transition counts and reports."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.energy.accounting import (
    active_intervals,
    energy_report,
    transition_count,
)
from repro.energy.cost import SleepPolicy, allocation_cost
from repro.energy.segments import timeline_of
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.intervals import TimeInterval
from repro.model.server import ServerSpec

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)
ALPHA = SPEC.transition_cost  # 100


class TestActiveIntervals:
    def test_empty_server_never_active(self):
        assert active_intervals(timeline_of([]), ALPHA, SPEC.p_idle) == []

    def test_active_through_short_gap(self):
        # 1-unit gap (idle 50 < alpha 100): stays active across it.
        tl = timeline_of([make_vm(0, 1, 2), make_vm(1, 4, 5)])
        assert active_intervals(tl, ALPHA, SPEC.p_idle) == \
            [TimeInterval(1, 5)]

    def test_sleeps_through_long_gap(self):
        # 5-unit gap (idle 250 > alpha 100): splits the active span.
        tl = timeline_of([make_vm(0, 1, 2), make_vm(1, 8, 9)])
        assert active_intervals(tl, ALPHA, SPEC.p_idle) == \
            [TimeInterval(1, 2), TimeInterval(8, 9)]

    def test_never_sleep_policy_bridges_all_gaps(self):
        tl = timeline_of([make_vm(0, 1, 1), make_vm(1, 50, 50)])
        assert active_intervals(tl, ALPHA, SPEC.p_idle,
                                SleepPolicy.NEVER_SLEEP) == \
            [TimeInterval(1, 50)]

    def test_always_sleep_policy_splits_all_gaps(self):
        tl = timeline_of([make_vm(0, 1, 2), make_vm(1, 4, 5)])
        assert active_intervals(tl, ALPHA, SPEC.p_idle,
                                SleepPolicy.ALWAYS_SLEEP) == \
            [TimeInterval(1, 2), TimeInterval(4, 5)]


class TestTransitionCount:
    def test_zero_for_empty(self):
        assert transition_count(timeline_of([]), ALPHA, SPEC.p_idle) == 0

    def test_one_for_continuous(self):
        assert transition_count(timeline_of([make_vm(0, 1, 9)]), ALPHA,
                                SPEC.p_idle) == 1

    def test_extra_per_slept_gap(self):
        tl = timeline_of([make_vm(0, 1, 1), make_vm(1, 10, 10),
                          make_vm(2, 20, 20)])
        assert transition_count(tl, ALPHA, SPEC.p_idle) == 3

    def test_bridged_gap_adds_none(self):
        tl = timeline_of([make_vm(0, 1, 2), make_vm(1, 4, 5)])
        assert transition_count(tl, ALPHA, SPEC.p_idle) == 1


def vms_strategy():
    return st.lists(
        st.tuples(st.integers(1, 40), st.integers(0, 8)),
        min_size=1, max_size=10,
    ).map(lambda pairs: [make_vm(i, s, s + d, cpu=0.5, memory=0.5)
                         for i, (s, d) in enumerate(pairs)])


class TestEnergyReport:
    def test_totals_match_allocation_cost(self):
        cluster = Cluster.homogeneous(SPEC, 3)
        vms = [make_vm(0, 1, 3), make_vm(1, 2, 5), make_vm(2, 9, 12)]
        alloc = Allocation(cluster, {vms[0]: 0, vms[1]: 1, vms[2]: 0})
        report = energy_report(alloc)
        assert report.total_energy == allocation_cost(alloc).total
        assert report.servers_used == 2

    def test_by_server_lookup(self):
        cluster = Cluster.homogeneous(SPEC, 2)
        vm = make_vm(0, 1, 2)
        report = energy_report(Allocation(cluster, {vm: 1}))
        assert set(report.by_server()) == {1}
        assert report.by_server()[1].vm_count == 1

    @given(vms_strategy())
    def test_transition_energy_matches_counts(self, vms):
        # Under ALWAYS_SLEEP, gaps cost exactly alpha each, so the gap
        # energy plus the initial wake equals alpha * transitions.
        cluster = Cluster.homogeneous(SPEC, 1)
        alloc = Allocation(cluster, {vm: 0 for vm in vms})
        report = energy_report(alloc, policy=SleepPolicy.ALWAYS_SLEEP)
        server = report.servers[0]
        assert server.cost.gaps + server.cost.initial_wake == \
            ALPHA * server.transitions

    @given(vms_strategy())
    def test_active_intervals_cover_busy(self, vms):
        cluster = Cluster.homogeneous(SPEC, 1)
        alloc = Allocation(cluster, {vm: 0 for vm in vms})
        report = energy_report(alloc)
        server = report.servers[0]
        active_units = set()
        for iv in server.active:
            active_units.update(iv.times())
        for seg in server.timeline.busy:
            assert set(seg.times()) <= active_units

    @given(vms_strategy())
    def test_transitions_equal_active_interval_count(self, vms):
        cluster = Cluster.homogeneous(SPEC, 1)
        alloc = Allocation(cluster, {vm: 0 for vm in vms})
        report = energy_report(alloc)
        server = report.servers[0]
        assert server.transitions == len(server.active)
