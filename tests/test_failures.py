"""Tests for failure injection and recovery."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.allocators import MinIncrementalEnergy, make_allocator
from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.simulation.failures import (
    ServerFailure,
    inject_failures,
    random_failures,
)
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


def plan(vms, n_servers=4, spec=SPEC):
    cluster = Cluster.homogeneous(spec, n_servers)
    return MinIncrementalEnergy().allocate(vms, cluster)


class TestValidation:
    def test_failure_time_must_be_positive(self):
        with pytest.raises(ValidationError):
            ServerFailure(server_id=0, time=0)

    def test_unknown_server_rejected(self):
        allocation = plan([make_vm(0, 1, 5)])
        with pytest.raises(ValidationError):
            inject_failures(allocation, [ServerFailure(99, 2)])

    def test_double_failure_rejected(self):
        allocation = plan([make_vm(0, 1, 5)])
        with pytest.raises(ValidationError):
            inject_failures(allocation, [ServerFailure(0, 2),
                                         ServerFailure(0, 4)])


class TestRandomFailures:
    def test_counts_and_bounds(self):
        cluster = Cluster.homogeneous(SPEC, 10)
        failures = random_failures(cluster, 4, horizon=50, seed=0)
        assert len(failures) == 4
        assert len({f.server_id for f in failures}) == 4
        assert all(1 <= f.time <= 50 for f in failures)

    def test_too_many_failures_rejected(self):
        cluster = Cluster.homogeneous(SPEC, 2)
        with pytest.raises(ValidationError):
            random_failures(cluster, 3, horizon=10)

    def test_reproducible(self):
        cluster = Cluster.homogeneous(SPEC, 10)
        a = random_failures(cluster, 3, horizon=50, seed=7)
        b = random_failures(cluster, 3, horizon=50, seed=7)
        assert a == b


class TestRecoveryMechanics:
    def test_no_failures_is_identity_energy(self):
        from repro.energy.cost import allocation_cost

        vms = generate_vms(30, mean_interarrival=3.0, seed=0)
        allocation = MinIncrementalEnergy().allocate(
            vms, Cluster.paper_all_types(15))
        outcome = inject_failures(allocation, [])
        assert outcome.killed == 0
        assert outcome.total_energy == pytest.approx(
            allocation_cost(allocation).total)

    def test_running_vm_is_killed_and_recovered(self):
        vm = make_vm(0, 1, 10, cpu=2.0)
        allocation = plan([vm], n_servers=2)
        victim = allocation.server_of(vm)
        outcome = inject_failures(allocation,
                                  [ServerFailure(victim, time=5)])
        assert outcome.killed == 1
        assert outcome.recovered == 1
        assert outcome.lost == ()
        assert outcome.wasted_energy > 0
        # The repaired plan hosts the head on the dead server and the
        # remainder elsewhere.
        pieces = outcome.allocation.vms
        assert len(pieces) == 2
        head, remainder = sorted(pieces, key=lambda v: v.start)
        assert (head.start, head.end) == (1, 4)
        assert (remainder.start, remainder.end) == (5, 10)
        assert outcome.allocation.server_of(remainder) != victim

    def test_not_yet_started_vm_moves_whole(self):
        vm = make_vm(0, 10, 20, cpu=2.0)
        allocation = plan([vm], n_servers=2)
        victim = allocation.server_of(vm)
        outcome = inject_failures(allocation,
                                  [ServerFailure(victim, time=3)])
        assert outcome.killed == 0  # nothing was interrupted
        assert outcome.wasted_energy == 0
        moved = outcome.allocation.vms[0]
        assert (moved.start, moved.end) == (10, 20)
        assert outcome.allocation.server_of(moved) != victim

    def test_finished_vm_untouched(self):
        vm = make_vm(0, 1, 3, cpu=2.0)
        allocation = plan([vm], n_servers=2)
        victim = allocation.server_of(vm)
        outcome = inject_failures(allocation,
                                  [ServerFailure(victim, time=8)])
        assert outcome.killed == 0
        assert outcome.allocation.server_of(vm) == victim

    def test_unrecoverable_vm_reported_lost(self):
        # Single server: after it dies there is nowhere to go.
        vm = make_vm(0, 1, 10, cpu=2.0)
        allocation = plan([vm], n_servers=1)
        outcome = inject_failures(allocation, [ServerFailure(0, time=5)])
        assert outcome.lost == (vm,)
        assert outcome.recovery_rate == 0.0

    def test_cascading_failures(self):
        vm = make_vm(0, 1, 20, cpu=2.0)
        allocation = plan([vm], n_servers=3)
        first = allocation.server_of(vm)
        second = (first + 1) % 3
        outcome = inject_failures(
            allocation,
            [ServerFailure(first, 5), ServerFailure(second, 10)])
        # Whether the remainder landed on `second` determines a second
        # kill; in any case the final plan must be valid on survivors.
        outcome.allocation.validate()
        last_piece = max(outcome.allocation.vms, key=lambda v: v.end)
        assert outcome.allocation.server_of(last_piece) not in \
            {first, second} or last_piece.end < 5

    def test_recovery_rate_full_when_capacity_exists(self):
        vms = generate_vms(40, mean_interarrival=2.0, seed=1)
        cluster = Cluster.paper_all_types(20)
        allocation = MinIncrementalEnergy().allocate(vms, cluster)
        failures = random_failures(cluster, 2, allocation.horizon(),
                                   seed=3)
        outcome = inject_failures(allocation, failures)
        assert outcome.recovery_rate == 1.0
        outcome.allocation.validate()


class TestRecoveryPolicies:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 500),
           st.sampled_from(["min-energy", "ffps", "best-fit",
                            "round-robin"]))
    def test_any_policy_yields_valid_plans(self, seed, policy):
        vms = generate_vms(25, mean_interarrival=2.0, seed=seed)
        cluster = Cluster.paper_all_types(12)
        allocation = MinIncrementalEnergy().allocate(vms, cluster)
        failures = random_failures(cluster, 2,
                                   max(1, allocation.horizon()), seed=seed)
        outcome = inject_failures(
            allocation, failures,
            recovery=make_allocator(policy, seed=seed))
        outcome.allocation.validate()
        assert outcome.killed >= outcome.recovered >= 0
        assert outcome.killed - outcome.recovered <= len(outcome.lost)
