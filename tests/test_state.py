"""Tests for ServerState: feasibility, placement, incremental cost.

The incremental-cost computation is local (it perturbs only neighbouring
busy segments), so its key test is the property check against the
from-scratch Eq.-17 oracle over random placement sequences.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy, server_cost
from repro.exceptions import CapacityError
from repro.model.intervals import TimeInterval
from repro.model.server import Server, ServerSpec

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


def new_state(policy=SleepPolicy.OPTIMAL) -> ServerState:
    return ServerState(Server(0, SPEC), policy=policy)


class TestFits:
    def test_fits_on_empty(self):
        assert new_state().probe(make_vm(0, 1, 5, cpu=10.0, memory=10.0)).feasible

    def test_rejects_oversized(self):
        assert not new_state().probe(make_vm(0, 1, 5, cpu=10.5)).feasible
        assert not new_state().probe(make_vm(0, 1, 5, memory=10.5)).feasible

    def test_rejects_overlapping_overload(self):
        state = new_state()
        state.place(make_vm(0, 1, 5, cpu=6.0))
        assert not state.probe(make_vm(1, 3, 8, cpu=6.0)).feasible

    def test_accepts_disjoint_in_time(self):
        state = new_state()
        state.place(make_vm(0, 1, 5, cpu=10.0))
        assert state.probe(make_vm(1, 6, 9, cpu=10.0)).feasible

    def test_accepts_exact_fill(self):
        state = new_state()
        state.place(make_vm(0, 1, 5, cpu=4.0, memory=4.0))
        assert state.probe(make_vm(1, 1, 5, cpu=6.0, memory=6.0)).feasible

    def test_fits_beyond_tracked_horizon(self):
        state = new_state()
        state.place(make_vm(0, 1, 2))
        assert state.probe(make_vm(1, 100_000, 100_001, cpu=10.0)).feasible

    def test_memory_binding(self):
        state = new_state()
        state.place(make_vm(0, 1, 5, cpu=1.0, memory=8.0))
        assert not state.probe(make_vm(1, 2, 3, cpu=1.0, memory=3.0)).feasible


class TestPlace:
    def test_place_returns_delta_and_accumulates(self):
        state = new_state()
        d1 = state.place(make_vm(0, 1, 2, cpu=2.0))
        d2 = state.place(make_vm(1, 5, 6, cpu=2.0))
        assert state.cost == pytest.approx(d1 + d2)

    def test_place_raises_on_overload(self):
        state = new_state()
        state.place(make_vm(0, 1, 5, cpu=6.0))
        with pytest.raises(CapacityError):
            state.place(make_vm(1, 1, 5, cpu=6.0))

    def test_usage_grows_across_horizon(self):
        state = new_state()
        state.place(make_vm(0, 1, 1000, cpu=3.0))
        assert not state.probe(make_vm(1, 999, 1000, cpu=8.0)).feasible
        assert state.probe(make_vm(1, 999, 1000, cpu=7.0)).feasible

    def test_busy_segments_merge(self):
        state = new_state()
        state.place(make_vm(0, 1, 3))
        state.place(make_vm(1, 4, 6))  # adjacent -> one segment
        assert state.busy_segments() == [TimeInterval(1, 6)]

    def test_busy_segments_keep_gaps(self):
        state = new_state()
        state.place(make_vm(0, 1, 2))
        state.place(make_vm(1, 9, 9))
        assert state.busy_segments() == [TimeInterval(1, 2),
                                         TimeInterval(9, 9)]

    def test_is_empty(self):
        state = new_state()
        assert state.is_empty
        state.place(make_vm(0, 1, 1))
        assert not state.is_empty

    def test_timeline_matches_segments(self):
        state = new_state()
        state.place(make_vm(0, 1, 2))
        state.place(make_vm(1, 7, 8))
        tl = state.timeline()
        assert tl.busy == (TimeInterval(1, 2), TimeInterval(7, 8))
        assert tl.idle == (TimeInterval(3, 6),)


class TestIncrementalCostOracle:
    """Local incremental cost must equal the full Eq.-17 recomputation."""

    def _check_sequence(self, placements, policy):
        state = new_state(policy)
        placed = []
        for i, (start, length) in enumerate(placements):
            vm = make_vm(i, start, start + length, cpu=0.5, memory=0.5)
            inc = state.incremental_cost(vm)
            oracle = (server_cost(SPEC, placed + [vm], policy=policy).total
                      - server_cost(SPEC, placed, policy=policy).total)
            assert inc == pytest.approx(oracle, abs=1e-9)
            delta = state.place(vm)
            assert delta == pytest.approx(oracle, abs=1e-9)
            placed.append(vm)
        assert state.cost == pytest.approx(
            server_cost(SPEC, placed, policy=policy).total, abs=1e-9)

    @settings(max_examples=150)
    @given(st.lists(st.tuples(st.integers(1, 50), st.integers(0, 12)),
                    min_size=1, max_size=12))
    def test_oracle_optimal_policy(self, placements):
        self._check_sequence(placements, SleepPolicy.OPTIMAL)

    @settings(max_examples=60)
    @given(st.lists(st.tuples(st.integers(1, 50), st.integers(0, 12)),
                    min_size=1, max_size=10))
    def test_oracle_never_sleep(self, placements):
        self._check_sequence(placements, SleepPolicy.NEVER_SLEEP)

    @settings(max_examples=60)
    @given(st.lists(st.tuples(st.integers(1, 50), st.integers(0, 12)),
                    min_size=1, max_size=10))
    def test_oracle_always_sleep(self, placements):
        self._check_sequence(placements, SleepPolicy.ALWAYS_SLEEP)

    def test_first_vm_pays_wake(self):
        state = new_state()
        vm = make_vm(0, 1, 1, cpu=2.0)
        # run 5*2*1=10, busy idle 50, wake 100
        assert state.incremental_cost(vm) == pytest.approx(160.0)

    def test_gap_interior_fill(self):
        state = new_state()
        state.place(make_vm(0, 1, 1))
        state.place(make_vm(1, 10, 10))
        # Filling the whole gap removes the gap cost min(400, 100)=100
        # and adds 8 busy-idle units (400).
        vm = make_vm(2, 2, 9, cpu=2.0)
        expected = 5 * 2 * 8 + 400 - 100
        assert state.incremental_cost(vm) == pytest.approx(expected)

    def test_extend_before_first_segment(self):
        state = new_state()
        state.place(make_vm(0, 10, 11))
        # New VM at [1,2]: busy 100, new gap [3,9] costs min(350,100)=100.
        vm = make_vm(1, 1, 2, cpu=1.0)
        expected = 5 * 1 * 2 + 100 + 100
        assert state.incremental_cost(vm) == pytest.approx(expected)
