"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.model.cluster import Cluster
from repro.model.intervals import TimeInterval
from repro.model.server import Server, ServerSpec
from repro.model.vm import VM, VMSpec


@pytest.fixture
def small_spec() -> ServerSpec:
    """A small server: 10 cu / 10 GB, 50-100 W, alpha = 100."""
    return ServerSpec("small", cpu_capacity=10.0, memory_capacity=10.0,
                      p_idle=50.0, p_peak=100.0, transition_time=1.0)


@pytest.fixture
def big_spec() -> ServerSpec:
    """A big server: 40 cu / 40 GB, 150-300 W, alpha = 600."""
    return ServerSpec("big", cpu_capacity=40.0, memory_capacity=40.0,
                      p_idle=150.0, p_peak=300.0, transition_time=2.0)


@pytest.fixture
def small_server(small_spec: ServerSpec) -> Server:
    return Server(0, small_spec)


@pytest.fixture
def two_server_cluster(small_spec: ServerSpec,
                       big_spec: ServerSpec) -> Cluster:
    return Cluster.from_specs([small_spec, big_spec])


@pytest.fixture
def unit_vm_spec() -> VMSpec:
    """A 1 cu / 1 GB VM type."""
    return VMSpec("unit", cpu=1.0, memory=1.0)


def make_vm(vm_id: int, start: int, end: int, cpu: float = 1.0,
            memory: float = 1.0, name: str = "t") -> VM:
    """Terse VM constructor used across the suite."""
    return VM(vm_id=vm_id, spec=VMSpec(name, cpu=cpu, memory=memory),
              interval=TimeInterval(start, end))


@pytest.fixture
def vm_factory():
    return make_vm
