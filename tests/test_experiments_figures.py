"""Tests for the figure-reproduction functions (reduced grids)."""

from __future__ import annotations


from repro.experiments import figures
from repro.experiments.config import ScenarioConfig

SEEDS = (0, 1)
IAS = (1.0, 6.0)


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = figures.format_table(("a", "bb"), [(1, 2.5), (33, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "-+-" in lines[1]
        assert all(len(line) == len(lines[0]) for line in lines[1:])


class TestFig2:
    def test_structure(self):
        result = figures.fig2(n_vms_list=(60,), interarrivals=IAS,
                              seeds=SEEDS)
        assert result.figure == "fig2"
        assert len(result.series) == 1
        series = result.series[0]
        assert series.label == "60 VMs"
        assert series.xs() == list(IAS)
        assert series.fit is not None and series.fit.kind == "linear"
        assert "fig2" in result.format()

    def test_reduction_positive_at_light_load(self):
        result = figures.fig2(n_vms_list=(100,), interarrivals=(8.0,),
                              seeds=(0, 1, 2))
        assert result.series[0].points[0].reduction_pct > 0


class TestFig3:
    def test_ours_beats_ffps_utilisation(self):
        result = figures.fig3(n_vms=80, interarrivals=(4.0,), seeds=SEEDS)
        point = result.points[0].comparison
        assert point.algorithm_cpu_util.mean > point.baseline_cpu_util.mean
        assert "ours cpu %" in result.format()


class TestFig4:
    def test_points_sorted_by_load(self):
        result = figures.fig4(n_vms_list=(60,), interarrivals=IAS,
                              seeds=SEEDS)
        xs = result.series[0].xs()
        assert xs == sorted(xs)
        assert result.series[0].fit.kind == "logarithmic"


class TestFig5:
    def test_series_per_transition(self):
        result = figures.fig5(transition_times=(0.5, 3.0), n_vms=80,
                              interarrivals=IAS, seeds=SEEDS)
        assert [s.label for s in result.series] == \
            ["transition 0.5 min", "transition 3.0 min"]

    def test_shorter_transition_saves_more(self):
        result = figures.fig5(transition_times=(0.5, 3.0), n_vms=150,
                              interarrivals=(4.0,), seeds=(0, 1, 2))
        short, long_ = result.series
        assert short.points[0].reduction_pct > long_.points[0].reduction_pct


class TestFig6:
    def test_shorter_vms_save_more(self):
        result = figures.fig6(mean_durations=(2.0, 10.0), n_vms=150,
                              interarrivals=(4.0,), seeds=(0, 1, 2))
        short, long_ = result.series
        assert short.points[0].reduction_pct > long_.points[0].reduction_pct


class TestFig7:
    def test_standard_small_structure(self):
        result = figures.fig7(n_vms_list=(60,), interarrivals=IAS,
                              seeds=SEEDS)
        assert result.series[0].fit.kind == "logarithmic"
        for point in result.series[0].points:
            config = point.comparison.config
            assert all("standard" in t.name for t in config.vm_types)
            assert {t.name for t in config.server_types} == \
                {"type1", "type2", "type3"}


class TestFig8:
    def test_two_panels(self):
        result = figures.fig8(n_vms=80, interarrivals=(4.0,), seeds=SEEDS)
        assert result.all_types.points[0].x == 4.0
        assert "(a) all server types" in result.format()

    def test_ffps_worse_on_all_types(self):
        result = figures.fig8(n_vms=120, interarrivals=(4.0,),
                              seeds=(0, 1, 2))
        ffps_all = result.all_types.points[0] \
            .comparison.baseline_cpu_util.mean
        ffps_small = result.small_types.points[0] \
            .comparison.baseline_cpu_util.mean
        assert ffps_all < ffps_small  # big servers hurt FFPS utilisation


class TestFig9:
    def test_four_series(self):
        result = figures.fig9(n_vms=80, interarrivals=IAS, seeds=SEEDS)
        labels = [s.label for s in result.series]
        assert len(labels) == 4
        assert any("all types" in lb for lb in labels)
        assert any("types 1-3" in lb for lb in labels)


class TestAblations:
    def test_zoo_sorted_by_energy(self):
        config = ScenarioConfig(n_vms=50, mean_interarrival=3.0,
                                seeds=(0,))
        result = figures.ablation_zoo(config,
                                      algorithms=("ffps", "min-energy",
                                                  "worst-fit"))
        energies = [r.energy_mean for r in result.rows]
        assert energies == sorted(energies)
        assert "worst-fit" in result.format()

    def test_sleep_policy_optimal_wins(self):
        config = ScenarioConfig(n_vms=50, mean_interarrival=4.0,
                                seeds=(0, 1))
        result = figures.ablation_sleep_policy(config)
        by_label = {r.label: r.energy_mean for r in result.rows}
        assert by_label["optimal"] <= by_label["never-sleep"]
        assert by_label["optimal"] <= by_label["always-sleep"]

    def test_initial_wake_share_small_but_positive(self):
        config = ScenarioConfig(n_vms=50, mean_interarrival=3.0,
                                seeds=(0,))
        result = figures.ablation_initial_wake(config)
        for row in result.rows:
            assert 0 < row.reduction_vs_ffps_pct < 50


class TestILPGap:
    def test_gaps_nonnegative(self):
        result = figures.ilp_gap(n_vms=6, n_servers=4, seeds=(0, 1))
        for _, optimal, heuristic_gap, ffps_gap in result.rows:
            assert optimal > 0
            assert heuristic_gap >= -1e-9
            assert ffps_gap >= -1e-9
        assert result.mean_heuristic_gap_pct >= 0
        assert "optimal" in result.format()
