"""The construction API: make_allocator(name, **params) and its errors."""

from __future__ import annotations

import pytest

import repro
from repro.allocators import allocator_names, make_allocator
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.random_fit import RandomFit
from repro.energy import SleepPolicy
from repro.exceptions import (
    AllocatorConfigError,
    ReproError,
    ValidationError,
)


class TestMakeAllocator:
    def test_builds_every_registered_name(self):
        for name in allocator_names():
            assert make_allocator(name).name == name

    def test_forwards_seed(self):
        a = make_allocator("random-fit", seed=42)
        b = make_allocator("random-fit", seed=42)
        assert isinstance(a, RandomFit)
        assert a._rng.integers(1000) == b._rng.integers(1000)

    def test_forwards_policy_enum(self):
        allocator = make_allocator("min-energy",
                                   policy=SleepPolicy.NEVER_SLEEP)
        assert allocator._policy is SleepPolicy.NEVER_SLEEP

    def test_coerces_policy_string(self):
        allocator = make_allocator("min-energy", policy="never-sleep")
        assert allocator._policy is SleepPolicy.NEVER_SLEEP

    def test_forwards_engine(self):
        assert make_allocator("best-fit", engine="dense").engine == "dense"

    def test_extension_specific_parameter(self):
        # Extensions register their own kwargs; the registry must not
        # whitelist a fixed set. WeightedMinEnergy-style params go through
        # the same path, exercised here via the common trio.
        allocator = make_allocator("ffps", seed=7, policy="always-sleep",
                                   engine="dense")
        assert allocator.engine == "dense"
        assert allocator._policy is SleepPolicy.ALWAYS_SLEEP


class TestConfigErrors:
    def test_unknown_name_lists_choices(self):
        with pytest.raises(AllocatorConfigError) as err:
            make_allocator("simulated-annealing")
        for name in allocator_names():
            assert name in str(err.value)

    def test_unknown_parameter_lists_accepted(self):
        with pytest.raises(AllocatorConfigError) as err:
            make_allocator("min-energy", temperature=0.5)
        message = str(err.value)
        assert "temperature" in message
        assert "seed" in message and "policy" in message

    def test_unknown_policy_string_lists_policies(self):
        with pytest.raises(AllocatorConfigError) as err:
            make_allocator("min-energy", policy="deep-sleep")
        assert "never-sleep" in str(err.value)

    def test_unknown_engine_raises_validation_error(self):
        with pytest.raises(ValidationError, match="engine"):
            make_allocator("min-energy", engine="quantum")

    def test_error_type_is_a_validation_error(self):
        assert issubclass(AllocatorConfigError, ValidationError)
        assert issubclass(AllocatorConfigError, ReproError)
        assert repro.AllocatorConfigError is AllocatorConfigError


class TestKeywordOnlyConstruction:
    def test_positional_construction_rejected(self):
        with pytest.raises(TypeError):
            MinIncrementalEnergy(0)
        with pytest.raises(TypeError):
            RandomFit(SleepPolicy.OPTIMAL)

    def test_uniform_parameter_names(self):
        # Every registered allocator takes the same keyword trio.
        for name in allocator_names():
            allocator = make_allocator(name, seed=3, policy="optimal",
                                       engine="indexed")
            assert allocator._policy is SleepPolicy.OPTIMAL
            assert allocator.engine == "indexed"
