"""Property-based tests for placement constraints."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.allocators import make_allocator
from repro.exceptions import AllocationError, ValidationError
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.workload.generator import PoissonWorkload
from repro.model.catalog import STANDARD_VM_TYPES

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def groups_strategy(n_vms: int):
    group = st.sets(st.integers(0, n_vms - 1), min_size=2, max_size=4)
    return st.lists(group, max_size=3)


@SLOW
@given(st.integers(0, 5000), groups_strategy(20), groups_strategy(20),
       st.sampled_from(["min-energy", "ffps", "best-fit", "round-robin"]))
def test_satisfied_or_infeasible(seed, colocate, separate, algo):
    """Any allocation produced under constraints satisfies them; the only
    alternative outcomes are an upfront contradiction or infeasibility."""
    try:
        constraints = PlacementConstraints.build(colocate=colocate,
                                                 separate=separate)
    except ValidationError:
        return  # contradictory groups are rejected eagerly: also correct
    wl = PoissonWorkload(mean_interarrival=2.0, mean_duration=5.0,
                         vm_types=STANDARD_VM_TYPES)
    vms = wl.generate(20, rng=seed)
    cluster = Cluster.paper_all_types(12)
    try:
        allocation = make_allocator(algo, seed=seed).allocate(
            vms, cluster, constraints=constraints)
    except AllocationError:
        return  # constrained instances may genuinely be infeasible
    allocation.validate(vms=vms)
    constraints.validate_allocation(allocation)


@SLOW
@given(st.integers(0, 5000), groups_strategy(15))
def test_affinity_classes_partition(seed, colocate):
    """Affinity classes are disjoint and cover exactly the grouped ids."""
    try:
        constraints = PlacementConstraints.build(colocate=colocate)
    except ValidationError:
        return
    classes = constraints.affinity_classes()
    seen: set[int] = set()
    for cls_ in classes:
        assert not (seen & cls_), "classes must be disjoint"
        seen |= cls_
    grouped = set().union(*colocate) if colocate else set()
    assert seen == grouped


@settings(max_examples=40, deadline=None)
@given(groups_strategy(10), groups_strategy(10))
def test_build_is_deterministic(colocate, separate):
    def attempt():
        try:
            return PlacementConstraints.build(colocate=colocate,
                                              separate=separate), None
        except ValidationError as exc:
            return None, str(exc)

    first = attempt()
    second = attempt()
    assert (first[0] is None) == (second[0] is None)
    if first[0] is not None:
        assert first[0] == second[0]
