"""Tests for admission control."""

from __future__ import annotations

import pytest

from repro.allocators import FirstFitPowerSaving
from repro.energy.cost import allocation_cost
from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.phases import DemandPhase, PhasedVM
from repro.model.server import ServerSpec
from repro.simulation.admission import AdmissionController
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestValidation:
    def test_rejects_negative_delay(self):
        with pytest.raises(ValidationError):
            AdmissionController(max_delay=-1)


class TestAcceptance:
    def test_everything_fits(self):
        vms = generate_vms(30, mean_interarrival=3.0, seed=0)
        cluster = Cluster.paper_all_types(15)
        outcome = AdmissionController().run(vms, cluster)
        assert outcome.accepted == 30
        assert outcome.rejected == ()
        assert outcome.rejection_rate == 0.0
        outcome.allocation.validate()

    def test_energy_matches_allocation_cost(self):
        vms = generate_vms(30, mean_interarrival=3.0, seed=1)
        cluster = Cluster.paper_all_types(15)
        outcome = AdmissionController().run(vms, cluster)
        assert outcome.total_energy == pytest.approx(
            allocation_cost(outcome.allocation).total)


class TestRejection:
    def test_overload_rejects(self):
        # Three simultaneous full-capacity VMs, one server, no delay.
        vms = [make_vm(i, 1, 5, cpu=10.0) for i in range(3)]
        cluster = Cluster.homogeneous(SPEC, 1)
        outcome = AdmissionController().run(vms, cluster)
        assert outcome.accepted == 1
        assert len(outcome.rejected) == 2
        assert outcome.rejection_rate == pytest.approx(2 / 3)

    def test_rejected_vms_reported_unmodified(self):
        vms = [make_vm(0, 1, 5, cpu=10.0), make_vm(1, 1, 5, cpu=10.0)]
        cluster = Cluster.homogeneous(SPEC, 1)
        outcome = AdmissionController().run(vms, cluster)
        assert outcome.rejected == (vms[1],)


class TestDeferral:
    def test_delay_rescues_request(self):
        # Second VM can start right after the first ends (delay 5).
        vms = [make_vm(0, 1, 5, cpu=10.0), make_vm(1, 1, 5, cpu=10.0)]
        cluster = Cluster.homogeneous(SPEC, 1)
        outcome = AdmissionController(max_delay=5).run(vms, cluster)
        assert outcome.accepted == 2
        assert outcome.delayed == 1
        assert outcome.total_delay == 5
        assert outcome.mean_delay == pytest.approx(2.5)
        placed = sorted(outcome.allocation.vms, key=lambda v: v.start)
        assert placed[1].start == 6  # shifted whole

    def test_insufficient_delay_still_rejects(self):
        vms = [make_vm(0, 1, 5, cpu=10.0), make_vm(1, 1, 5, cpu=10.0)]
        cluster = Cluster.homogeneous(SPEC, 1)
        outcome = AdmissionController(max_delay=3).run(vms, cluster)
        assert len(outcome.rejected) == 1

    def test_minimal_delay_is_used(self):
        vms = [make_vm(0, 1, 3, cpu=10.0), make_vm(1, 2, 4, cpu=10.0)]
        cluster = Cluster.homogeneous(SPEC, 1)
        outcome = AdmissionController(max_delay=10).run(vms, cluster)
        late = max(outcome.allocation.vms, key=lambda v: v.start)
        assert late.start == 4  # shifted by exactly 2

    def test_phased_vm_shifts_with_phases(self):
        blocker = make_vm(0, 1, 4, cpu=10.0)
        phased = PhasedVM.from_phases(1, 1, [DemandPhase(2, 4.0, 2.0),
                                             DemandPhase(2, 8.0, 2.0)])
        cluster = Cluster.homogeneous(SPEC, 1)
        outcome = AdmissionController(max_delay=10).run(
            [blocker, phased], cluster)
        assert outcome.accepted == 2
        moved = [v for v in outcome.allocation.vms if v.vm_id == 1][0]
        assert isinstance(moved, PhasedVM)
        assert moved.start == 5
        assert moved.phases == phased.phases


class TestPolicies:
    def test_custom_allocator(self):
        vms = generate_vms(20, mean_interarrival=2.0, seed=2)
        cluster = Cluster.paper_all_types(10)
        outcome = AdmissionController(
            allocator=FirstFitPowerSaving(seed=0)).run(vms, cluster)
        assert outcome.accepted == 20

    def test_rejection_rate_decreases_with_fleet_size(self):
        vms = [make_vm(i, 1, 10, cpu=8.0, memory=8.0) for i in range(8)]
        small = AdmissionController().run(
            vms, Cluster.homogeneous(SPEC, 2))
        large = AdmissionController().run(
            vms, Cluster.homogeneous(SPEC, 8))
        assert large.rejection_rate < small.rejection_rate
