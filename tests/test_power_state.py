"""Tests for the server power-state machine."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.model.server import Server, ServerSpec
from repro.simulation.power_state import PowerState, ServerMachine

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=2.0)


def machine() -> ServerMachine:
    return ServerMachine(Server(0, SPEC))


class TestTransitions:
    def test_initial_state_is_power_saving(self):
        assert machine().state is PowerState.POWER_SAVING

    def test_wake_activates_and_charges_alpha(self):
        m = machine()
        m.wake()
        assert m.state is PowerState.ACTIVE
        assert m.transitions == 1
        assert m.transition_energy == 200.0  # peak * transition_time

    def test_wake_twice_raises(self):
        m = machine()
        m.wake()
        with pytest.raises(SimulationError):
            m.wake()

    def test_sleep_requires_active(self):
        with pytest.raises(SimulationError):
            machine().sleep()

    def test_sleep_requires_no_residents(self):
        m = machine()
        m.wake()
        m.start_vm(0, 1.0, 1.0)
        with pytest.raises(SimulationError):
            m.sleep()

    def test_wake_sleep_cycle_accumulates(self):
        m = machine()
        m.wake()
        m.sleep()
        m.wake()
        assert m.transitions == 2
        assert m.transition_energy == 400.0


class TestVMLifecycle:
    def test_start_requires_active(self):
        with pytest.raises(SimulationError):
            machine().start_vm(0, 1.0, 1.0)

    def test_start_twice_raises(self):
        m = machine()
        m.wake()
        m.start_vm(0, 1.0, 1.0)
        with pytest.raises(SimulationError):
            m.start_vm(0, 1.0, 1.0)

    def test_cpu_overcommit_raises(self):
        m = machine()
        m.wake()
        m.start_vm(0, 6.0, 1.0)
        with pytest.raises(SimulationError, match="CPU"):
            m.start_vm(1, 5.0, 1.0)

    def test_memory_overcommit_raises(self):
        m = machine()
        m.wake()
        m.start_vm(0, 1.0, 6.0)
        with pytest.raises(SimulationError, match="memory"):
            m.start_vm(1, 1.0, 5.0)

    def test_end_unknown_vm_raises(self):
        m = machine()
        m.wake()
        with pytest.raises(SimulationError):
            m.end_vm(0, 1.0, 1.0)

    def test_end_releases_resources(self):
        m = machine()
        m.wake()
        m.start_vm(0, 4.0, 3.0)
        m.end_vm(0, 4.0, 3.0)
        assert m.resident_cpu == 0.0
        assert m.resident_mem == 0.0
        m.sleep()  # now legal


class TestPowerDraw:
    def test_sleeping_draws_zero(self):
        assert machine().power_draw() == 0.0

    def test_active_idle_draw(self):
        m = machine()
        m.wake()
        assert m.power_draw() == 50.0

    def test_active_loaded_draw(self):
        m = machine()
        m.wake()
        m.start_vm(0, 5.0, 1.0)
        assert m.power_draw() == 75.0  # affine midpoint

    def test_transitioning_draws_peak(self):
        m = machine()
        m.state = PowerState.TRANSITIONING
        assert m.power_draw() == 100.0
