"""Tests for the sensitivity-sweep harness and the new CLI commands."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.sensitivity import sensitivity_sweep


class TestSensitivitySweep:
    BASE = ScenarioConfig(n_vms=40, mean_interarrival=3.0, seeds=(0, 1))

    def test_point_per_value(self):
        result = sensitivity_sweep(self.BASE, "mean_interarrival",
                                   (1.0, 6.0))
        assert [p.value for p in result.points] == [1.0, 6.0]
        assert result.field == "mean_interarrival"

    def test_significance_attached(self):
        result = sensitivity_sweep(self.BASE, "mean_duration", (5.0,))
        point = result.points[0]
        assert 0.0 <= point.test.p_value <= 1.0
        assert point.test.n == 2

    def test_single_seed_degenerate_significance(self):
        base = self.BASE.with_(seeds=(0,))
        result = sensitivity_sweep(base, "mean_duration", (5.0,))
        assert result.points[0].test.p_value == 1.0

    def test_n_vms_cast_to_int(self):
        result = sensitivity_sweep(self.BASE, "n_vms", (30.0,))
        assert result.points[0].value == 30.0

    def test_rejects_unknown_field(self):
        with pytest.raises(ValidationError, match="cannot sweep"):
            sensitivity_sweep(self.BASE, "vm_types", (1.0,))

    def test_rejects_empty_values(self):
        with pytest.raises(ValidationError):
            sensitivity_sweep(self.BASE, "mean_duration", ())

    def test_format(self):
        result = sensitivity_sweep(self.BASE, "mean_duration", (5.0,))
        out = result.format()
        assert "reduction %" in out
        assert "p-value" in out

    def test_custom_algorithm(self):
        result = sensitivity_sweep(self.BASE, "mean_duration", (5.0,),
                                   algorithm="best-fit")
        assert result.algorithm == "best-fit"


class TestAnalyzeCommand:
    def test_generated_workload(self, capsys):
        assert main(["analyze", "--vms", "30", "--interarrival", "2"]) == 0
        out = capsys.readouterr().out
        assert "max concurrent" in out
        assert "energy lower bound" in out

    def test_from_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "t.csv"
        assert main(["trace", "--vms", "15", "--out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["analyze", "--trace", str(trace)]) == 0
        assert "15 VMs" in capsys.readouterr().out

    def test_explicit_fleet_size(self, capsys):
        assert main(["analyze", "--vms", "20", "--servers", "7"]) == 0
        assert "7 servers" in capsys.readouterr().out


class TestSweepCommand:
    def test_basic(self, capsys):
        code = main(["sweep", "--field", "mean_interarrival",
                     "--values", "2", "6", "--vms", "30",
                     "--seeds", "0", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_interarrival" in out
        assert "significant" in out


class TestSolveCommand:
    def test_exact(self, capsys):
        code = main(["solve", "--vms", "6", "--servers", "5",
                     "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "exact ILP" in out
        assert "heuristic" in out

    def test_receding(self, capsys):
        code = main(["solve", "--vms", "8", "--servers", "5",
                     "--window", "10"])
        assert code == 0
        assert "receding horizon" in capsys.readouterr().out
