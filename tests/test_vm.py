"""Tests for VM specs and request instances."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.model.intervals import TimeInterval
from repro.model.vm import VM, VMSpec


class TestVMSpec:
    def test_valid_spec(self):
        spec = VMSpec("m1.small", cpu=1.0, memory=1.7)
        assert spec.cpu == 1.0
        assert spec.memory == 1.7

    @pytest.mark.parametrize("cpu", [0.0, -1.0])
    def test_rejects_nonpositive_cpu(self, cpu):
        with pytest.raises(ValidationError):
            VMSpec("bad", cpu=cpu, memory=1.0)

    @pytest.mark.parametrize("memory", [0.0, -0.5])
    def test_rejects_nonpositive_memory(self, memory):
        with pytest.raises(ValidationError):
            VMSpec("bad", cpu=1.0, memory=memory)

    def test_immutable(self):
        spec = VMSpec("x", cpu=1.0, memory=1.0)
        with pytest.raises(AttributeError):
            spec.cpu = 2.0  # type: ignore[misc]

    def test_str_mentions_resources(self):
        assert "2.0cu" in str(VMSpec("x", cpu=2.0, memory=4.0))


class TestVM:
    def test_accessors(self):
        vm = VM(3, VMSpec("t", cpu=2.0, memory=4.0), TimeInterval(5, 9))
        assert vm.start == 5
        assert vm.end == 9
        assert vm.duration == 5
        assert vm.cpu == 2.0
        assert vm.memory == 4.0

    def test_cpu_time_is_demand_times_duration(self):
        vm = VM(0, VMSpec("t", cpu=3.0, memory=1.0), TimeInterval(1, 4))
        assert vm.cpu_time == 12.0

    def test_active_at(self):
        vm = VM(0, VMSpec("t", cpu=1.0, memory=1.0), TimeInterval(2, 4))
        assert vm.active_at(2)
        assert vm.active_at(4)
        assert not vm.active_at(1)
        assert not vm.active_at(5)

    def test_rejects_negative_id(self):
        with pytest.raises(ValidationError):
            VM(-1, VMSpec("t", cpu=1.0, memory=1.0), TimeInterval(1, 2))

    def test_single_unit_vm(self):
        vm = VM(0, VMSpec("t", cpu=1.0, memory=1.0), TimeInterval(7, 7))
        assert vm.duration == 1
        assert vm.cpu_time == 1.0

    def test_str_contains_id_and_type(self):
        vm = VM(12, VMSpec("m1", cpu=1.0, memory=1.0), TimeInterval(1, 2))
        assert "vm12" in str(vm)
        assert "m1" in str(vm)
