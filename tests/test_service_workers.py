"""Process-per-shard scan workers: bit-exact equivalence with the
in-process scan, replica streaming across every mutating op, and
crash recovery with a pool attached."""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError, ValidationError
from repro.model.cluster import Cluster
from repro.service import (
    AllocationDaemon,
    ClusterStateStore,
    WorkerPool,
    consolidate_request,
    fail_server_request,
    place_batch_request,
    place_request,
    recover_server_request,
)
from repro.workload.generator import generate_vms
from repro.workload.trace import vm_from_record, vm_to_record


def fresh_daemon(n_servers: int = 24, **kwargs) -> AllocationDaemon:
    store = ClusterStateStore(Cluster.paper_all_types(n_servers))
    return AllocationDaemon(store, **kwargs)


def workload(count: int, seed: int):
    """A workload whose vm ids cannot collide with the synthetic
    head/remainder ids a failure replacement mints (max + 1, so the
    ids are spaced out to leave minting room between arrivals)."""
    out = []
    for vm in generate_vms(count, mean_interarrival=1.0, seed=seed):
        record = vm_to_record(vm)
        record["vm_id"] = 10_000 + 100 * vm.vm_id
        out.append(vm_from_record(record))
    return out


def drive(daemon: AllocationDaemon, vms) -> list[tuple]:
    """One mixed workload: places, a failure, a recovery, a batch and
    a consolidation, returning the decision trail."""
    trail = []
    third = len(vms) // 3
    for vm in vms[:third]:
        r = daemon.handle(place_request(vm))
        trail.append((r["vm_id"], r.get("decision"), r.get("server_id")))
    r = daemon.handle(fail_server_request(1))
    trail.append(("fail", tuple(sorted(
        (m["vm_id"], m.get("server_id")) for m in r["replacements"]))))
    for vm in vms[third:2 * third]:
        r = daemon.handle(place_request(vm))
        trail.append((r["vm_id"], r.get("decision"), r.get("server_id")))
    r = daemon.handle(recover_server_request(1))
    trail.append(("recover", r["ok"]))
    r = daemon.handle(place_batch_request(vms[2 * third:]))
    trail.append(("batch", tuple(
        (d["vm_id"], d.get("decision"), d.get("server_id"))
        for d in r["decisions"])))
    r = daemon.handle(consolidate_request())
    trail.append(("consolidate", tuple(
        (m["vm_id"], m["source_id"], m["target_id"])
        for m in r["moves"])))
    return trail


class TestPoolEquivalence:
    @pytest.mark.parametrize("algorithm",
                             ["min-energy", "ffps", "random-fit"])
    def test_pooled_daemon_is_bit_identical(self, algorithm):
        vms = workload(60, seed=13)
        plain = fresh_daemon(algorithm=algorithm, seed=5, shards=4)
        pooled = fresh_daemon(algorithm=algorithm, seed=5, shards=4,
                              scan_processes=2)
        try:
            assert pooled._pool is not None and len(pooled._pool) == 2
            assert drive(plain, vms) == drive(pooled, vms)
            assert dict(plain.store.placements) == \
                dict(pooled.store.placements)
            assert plain.store.energy_accumulated == \
                pooled.store.energy_accumulated  # bit-identical
        finally:
            pooled.handle({"op": "shutdown"})
            plain.handle({"op": "shutdown"})

    def test_shutdown_closes_the_pool(self):
        daemon = fresh_daemon(shards=2, scan_processes=2)
        pool = daemon._pool
        assert pool is not None and not pool.closed
        daemon.handle({"op": "shutdown"})
        assert daemon._pool is None and pool.closed

    def test_single_shard_daemon_skips_the_pool(self):
        daemon = fresh_daemon(shards=1, scan_processes=2)
        try:
            assert daemon._pool is None
        finally:
            daemon.handle({"op": "shutdown"})


class TestPoolValidation:
    def test_processes_must_be_positive(self):
        store = ClusterStateStore(Cluster.paper_all_types(4))
        with pytest.raises(ValidationError):
            WorkerPool(store.to_snapshot(), algorithm="min-energy",
                       processes=0)

    def test_negative_scan_processes_rejected(self):
        store = ClusterStateStore(Cluster.paper_all_types(4))
        with pytest.raises(ValidationError):
            AllocationDaemon(store, scan_processes=-1)

    def test_closed_pool_refuses_scans(self):
        store = ClusterStateStore(Cluster.paper_all_types(4))
        with WorkerPool(store.to_snapshot(), algorithm="min-energy",
                        processes=1) as pool:
            pass
        assert pool.closed
        with pytest.raises(ServiceError):
            pool.scan({"vm_id": 0}, [[(0, 0)]])
        pool.close()  # idempotent


class TestOrphanReaping:
    def test_workers_exit_when_primary_is_sigkilled(self, tmp_path):
        """Forked workers inherit a copy of the primary's pipe end, so
        SIGKILL never EOFs their pipes — the parent-pid watchdog must
        reap them anyway."""
        import os
        import signal
        import subprocess
        import sys
        import time

        script = (
            "import os, sys, time\n"
            "sys.path.insert(0, os.environ['REPRO_SRC'])\n"
            "from repro.model.cluster import Cluster\n"
            "from repro.service import AllocationDaemon, "
            "ClusterStateStore\n"
            "daemon = AllocationDaemon("
            "ClusterStateStore(Cluster.paper_all_types(6)), "
            "shards=2, scan_processes=2)\n"
            "print(' '.join(str(p.pid) "
            "for p, _ in daemon._pool._workers), flush=True)\n"
            "time.sleep(60)\n")
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        primary = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, text=True,
            env={**os.environ, "REPRO_SRC": src})
        try:
            worker_pids = [int(p) for p in
                           primary.stdout.readline().split()]
            assert len(worker_pids) == 2
        finally:
            primary.send_signal(signal.SIGKILL)
        primary.wait(10)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            alive = []
            for pid in worker_pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                alive.append(pid)
            if not alive:
                break
            time.sleep(0.2)
        assert not alive, f"orphaned scan workers survived: {alive}"


class TestCrashRecoveryWithPool:
    def test_kill_and_restore_keeps_bit_exactness(self, tmp_path):
        """A pooled daemon crashes mid-stream; the restore rebuilds the
        pool (scan_processes rides in the config) and the continued
        run matches an uninterrupted pooled daemon bit-for-bit."""
        vms = workload(40, seed=21)
        crashy = fresh_daemon(shards=3, scan_processes=2, seed=2,
                              data_dir=tmp_path / "crashy", fsync=False)
        trail = []
        try:
            for vm in vms[:22]:
                r = crashy.handle(place_request(vm))
                trail.append((r["vm_id"], r.get("decision"),
                              r.get("server_id")))
            crashy.handle(fail_server_request(2))
        finally:
            # Simulated crash: drop the daemon, keep the journal. The
            # pool is orphaned; its daemonic workers die with the test.
            crashy._pool.close()

        restored = AllocationDaemon.restore(tmp_path / "crashy")
        try:
            assert int(restored.config["scan_processes"]) == 2
            assert restored._pool is not None
            for vm in vms[22:]:
                r = restored.handle(place_request(vm))
                trail.append((r["vm_id"], r.get("decision"),
                              r.get("server_id")))
        finally:
            restored.handle({"op": "shutdown"})

        straight = fresh_daemon(shards=3, scan_processes=2, seed=2)
        expected = []
        try:
            for vm in vms[:22]:
                r = straight.handle(place_request(vm))
                expected.append((r["vm_id"], r.get("decision"),
                                 r.get("server_id")))
            straight.handle(fail_server_request(2))
            for vm in vms[22:]:
                r = straight.handle(place_request(vm))
                expected.append((r["vm_id"], r.get("decision"),
                                 r.get("server_id")))
        finally:
            straight.handle({"op": "shutdown"})

        assert trail == expected
        assert dict(restored.store.placements) == \
            dict(straight.store.placements)
        assert restored.store.energy_accumulated == \
            straight.store.energy_accumulated
