"""Tests for the offline (clairvoyant) ordering extensions."""

from __future__ import annotations

import repro.extensions  # noqa: F401 - registers the offline allocators
from repro.allocators import allocator_names, make_allocator
from repro.energy.cost import allocation_cost
from repro.extensions import LongestFirstMinEnergy, OfflineMinEnergy
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms

from conftest import make_vm


class TestRegistration:
    def test_registered_by_name(self):
        names = allocator_names()
        assert "min-energy-offline" in names
        assert "min-energy-longest" in names

    def test_make_by_name(self):
        assert isinstance(make_allocator("min-energy-offline"),
                          OfflineMinEnergy)
        assert isinstance(make_allocator("min-energy-longest"),
                          LongestFirstMinEnergy)


class TestOrdering:
    def test_offline_orders_by_cpu_time_desc(self):
        vms = [make_vm(0, 1, 2, cpu=1.0),      # cpu_time 2
               make_vm(1, 5, 9, cpu=4.0),      # cpu_time 20
               make_vm(2, 3, 4, cpu=3.0)]      # cpu_time 6
        ordered = OfflineMinEnergy().order_vms(vms)
        assert [v.vm_id for v in ordered] == [1, 2, 0]

    def test_longest_orders_by_duration_desc(self):
        vms = [make_vm(0, 1, 2), make_vm(1, 5, 12), make_vm(2, 3, 5)]
        ordered = LongestFirstMinEnergy().order_vms(vms)
        assert [v.vm_id for v in ordered] == [1, 2, 0]

    def test_ties_broken_by_start_then_id(self):
        vms = [make_vm(1, 5, 6, cpu=2.0), make_vm(0, 5, 6, cpu=2.0)]
        ordered = OfflineMinEnergy().order_vms(vms)
        assert [v.vm_id for v in ordered] == [0, 1]


class TestBehaviour:
    def test_produces_valid_allocations(self):
        vms = generate_vms(60, mean_interarrival=2.0, seed=4)
        cluster = Cluster.paper_all_types(30)
        for name in ("min-energy-offline", "min-energy-longest"):
            allocation = make_allocator(name).allocate(vms, cluster)
            allocation.validate(vms=vms)

    def test_offline_not_much_worse_than_online(self):
        # Clairvoyance should help or at least not hurt on average.
        diffs = []
        for seed in range(5):
            vms = generate_vms(80, mean_interarrival=4.0, seed=seed)
            cluster = Cluster.paper_all_types(40)
            online = allocation_cost(
                make_allocator("min-energy").allocate(vms, cluster)).total
            offline = allocation_cost(
                make_allocator("min-energy-offline").allocate(
                    vms, cluster)).total
            diffs.append((online - offline) / online)
        assert sum(diffs) / len(diffs) > -0.05
