"""The batch API and sharded fan-out must not change any decision.

``Allocator.allocate_batch`` with any shard count must produce
*bit-identical* placements and Eq.-17 energy to the sequential
``allocate`` path — that is the determinism guarantee that lets the
daemon fan feasibility scans out across a thread pool while staying
exactly the paper's algorithms. Every registered allocator is held to
it (``==`` on the placement maps and on the float energy totals, no
tolerance), plus a Hypothesis property over random workload shapes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.allocators import Decision, allocator_names, make_allocator
from repro.allocators.state import ServerState
from repro.energy import allocation_cost
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.placement import ShardedFleet, shard_bounds
from repro.workload.generator import PoissonWorkload, generate_vms

VMS = generate_vms(120, mean_interarrival=2.5, seed=3)
CLUSTER = Cluster.paper_all_types(40)

SHARD_COUNTS = (1, 2, 4)


def _sequential(algo, vms=VMS, cluster=CLUSTER, seed=0):
    plan = make_allocator(algo, seed=seed).allocate(vms, cluster)
    placements = {vm.vm_id: sid for vm, sid in plan.items()}
    return placements, allocation_cost(plan).total


def _batched(algo, shards, vms=VMS, cluster=CLUSTER, seed=0):
    allocator = make_allocator(algo, seed=seed)
    decisions = allocator.allocate_batch(vms, cluster, shards=shards)
    placements = {d.vm.vm_id: d.server_id for d in decisions if d.placed}
    plan = Allocation(cluster, {d.vm: d.server_id for d in decisions
                                if d.placed})
    return placements, allocation_cost(plan).total, decisions


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("algo", allocator_names())
    def test_identical_to_sequential(self, algo, shards):
        placements_seq, energy_seq = _sequential(algo)
        placements_batch, energy_batch, _ = _batched(algo, shards)
        assert placements_batch == placements_seq
        assert energy_batch == energy_seq  # bit-identical, no approx

    @pytest.mark.parametrize("algo", ["min-energy", "ffps", "random-fit",
                                      "round-robin"])
    def test_seeded_runs_agree_across_shards(self, algo):
        baseline = _batched(algo, 1, seed=11)[:2]
        for shards in (2, 4, 7):
            assert _batched(algo, shards, seed=11)[:2] == baseline

    def test_decisions_in_request_order(self):
        _, _, decisions = _batched("best-fit", 4)
        assert [d.vm for d in decisions] == list(VMS)

    def test_rejections_are_decisions_not_exceptions(self):
        cluster = Cluster.paper_all_types(1)
        vms = generate_vms(50, mean_interarrival=0.2, seed=5)
        decisions = make_allocator("best-fit").allocate_batch(
            vms, cluster, shards=2)
        assert len(decisions) == len(vms)
        rejected = [d for d in decisions if not d.placed]
        assert rejected, "tiny fleet must reject something"
        for decision in rejected:
            assert decision.server_id is None
            assert decision.energy_delta == 0.0

    def test_constraints_are_honoured(self):
        constraints = PlacementConstraints.build(
            separate=[tuple(vm.vm_id for vm in VMS[:6])])
        allocator = make_allocator("first-fit")
        decisions = allocator.allocate_batch(
            VMS, CLUSTER, constraints, shards=4)
        servers = [d.server_id for d in decisions[:6] if d.placed]
        assert len(servers) == len(set(servers))
        plan = make_allocator("first-fit").allocate(
            VMS, CLUSTER, constraints)
        assert {d.vm.vm_id: d.server_id for d in decisions if d.placed} \
            == {vm.vm_id: sid for vm, sid in plan.items()}


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 40), st.floats(0.5, 5.0), st.integers(0, 5_000),
       st.sampled_from(SHARD_COUNTS),
       st.sampled_from(["min-energy", "best-fit", "ffps", "round-robin"]))
def test_sharding_never_changes_decisions(count, interarrival, seed,
                                          shards, algo):
    """shards=1 is the inline sequential scan; any other count must
    agree decision-for-decision, including rejections on tight fleets
    (where ``allocate`` would raise, ``allocate_batch`` records)."""
    workload = PoissonWorkload(mean_interarrival=interarrival)
    vms = workload.generate(count, rng=seed)
    cluster = Cluster.paper_all_types(max(5, count // 2))
    baseline = make_allocator(algo, seed=seed).allocate_batch(
        vms, cluster, shards=1)
    decisions = make_allocator(algo, seed=seed).allocate_batch(
        vms, cluster, shards=shards)
    assert [(d.vm.vm_id, d.server_id, d.energy_delta)
            for d in decisions] == \
        [(d.vm.vm_id, d.server_id, d.energy_delta) for d in baseline]


class TestShardBounds:
    def test_partition_is_contiguous_and_complete(self):
        for n in (0, 1, 5, 16, 97):
            for shards in (1, 2, 3, 8):
                bounds = shard_bounds(n, shards)
                flat = [i for lo, hi in bounds for i in range(lo, hi)]
                assert flat == list(range(n))

    def test_balanced_within_one(self):
        sizes = [hi - lo for lo, hi in shard_bounds(100, 7)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100


class TestShardedFleet:
    def _states(self, n=12):
        return [ServerState(server)
                for server in Cluster.paper_all_types(n)]

    def test_sequence_protocol_preserves_fleet_order(self):
        states = self._states()
        with ShardedFleet(states, shards=4) as fleet:
            assert len(fleet) == len(states)
            assert [fleet[i] for i in range(len(fleet))] == states

    def test_shard_count_clamped_to_fleet_size(self):
        with ShardedFleet(self._states(3), shards=64) as fleet:
            assert fleet.n_shards == 3

    def test_scatter_routes_by_position(self):
        states = self._states()
        with ShardedFleet(states, shards=3) as fleet:
            chunks = fleet.scatter(list(enumerate(states)))
            assert len(chunks) == 3
            for shard, chunk in enumerate(chunks):
                lo, hi = fleet.bounds[shard]
                assert [ordinal for ordinal, _ in chunk] == \
                    list(range(lo, hi))

    def test_scatter_rejects_foreign_state(self):
        states = self._states()
        stranger = ServerState(Cluster.paper_all_types(1)[0])
        with ShardedFleet(states, shards=2) as fleet:
            with pytest.raises(ValidationError):
                fleet.scatter([(0, stranger)])

    def test_close_is_idempotent(self):
        fleet = ShardedFleet(self._states(), shards=2)
        fleet.close()
        fleet.close()

    def test_decision_placed_property(self):
        vm = VMS[0]
        assert Decision(vm=vm, server_id=3, energy_delta=1.0).placed
        assert not Decision(vm=vm, server_id=None).placed
