"""Tests for the event queue."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import EventKind, EventQueue


class TestOrdering:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5, EventKind.VM_START, vm_id=1)
        q.push(2, EventKind.VM_START, vm_id=2)
        assert q.pop().time == 2
        assert q.pop().time == 5

    def test_same_tick_kind_priority(self):
        # Within a tick: WAKE < VM_START < VM_END < SLEEP.
        q = EventQueue()
        q.push(3, EventKind.SERVER_SLEEP, server_id=0)
        q.push(3, EventKind.VM_END, vm_id=0)
        q.push(3, EventKind.VM_START, vm_id=1)
        q.push(3, EventKind.SERVER_WAKE, server_id=0)
        kinds = [q.pop().kind for _ in range(4)]
        assert kinds == [EventKind.SERVER_WAKE, EventKind.VM_START,
                         EventKind.VM_END, EventKind.SERVER_SLEEP]

    def test_fifo_for_identical_keys(self):
        q = EventQueue()
        q.push(1, EventKind.VM_START, vm_id=10)
        q.push(1, EventKind.VM_START, vm_id=20)
        assert q.pop().vm_id == 10
        assert q.pop().vm_id == 20


class TestQueueBehaviour:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1, EventKind.VM_START, vm_id=0)
        assert len(q) == 1
        assert q

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1, EventKind.VM_START, vm_id=0)
        assert q.peek() is not None
        assert len(q) == 1

    def test_peek_empty_is_none(self):
        assert EventQueue().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1, EventKind.VM_START, vm_id=0)

    def test_drain_consumes_all_in_order(self):
        q = EventQueue()
        for t in (9, 1, 5):
            q.push(t, EventKind.VM_START, vm_id=t)
        assert [e.time for e in q.drain()] == [1, 5, 9]
        assert not q

    def test_push_after_drain_raises(self):
        q = EventQueue()
        list(q.drain())
        with pytest.raises(SimulationError):
            q.push(1, EventKind.VM_START, vm_id=0)

    def test_event_str(self):
        q = EventQueue()
        e = q.push(4, EventKind.SERVER_WAKE, server_id=3)
        assert "SERVER_WAKE" in str(e)
        assert "srv3" in str(e)
        e2 = q.push(4, EventKind.VM_START, vm_id=7)
        assert "vm7" in str(e2)
