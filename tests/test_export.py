"""Tests for figure-data export."""

from __future__ import annotations

import csv
import json

import pytest

from repro.exceptions import ValidationError
from repro.experiments import figures
from repro.experiments.export import figure_records, save_csv, save_json

SEEDS = (0,)
IAS = (2.0, 6.0)


@pytest.fixture(scope="module")
def fig2_result():
    return figures.fig2(n_vms_list=(40,), interarrivals=IAS, seeds=SEEDS)


@pytest.fixture(scope="module")
def fig3_result():
    return figures.fig3(n_vms=40, interarrivals=IAS, seeds=SEEDS)


class TestFigureRecords:
    def test_sweep_figure(self, fig2_result):
        records = figure_records(fig2_result)
        assert len(records) == 2
        first = records[0]
        assert first["figure"] == "fig2"
        assert first["series"] == "40 VMs"
        assert first["x"] == 2.0
        assert first["fit_kind"] == "linear"
        assert ";" in first["fit_params"]

    def test_utilization_figure(self, fig3_result):
        records = figure_records(fig3_result)
        assert len(records) == 2
        assert all(0 <= r["ours_cpu_util"] <= 1 for r in records)

    def test_fig8_panels(self):
        result = figures.fig8(n_vms=40, interarrivals=(4.0,), seeds=SEEDS)
        records = figure_records(result)
        assert {r["series"] for r in records} == {"all types", "types 1-3"}

    def test_unsupported_object(self):
        with pytest.raises(ValidationError):
            figure_records("not a figure")


class TestSaveCSV:
    def test_round_trip(self, tmp_path, fig2_result):
        path = tmp_path / "fig2.csv"
        count = save_csv(fig2_result, path)
        assert count == 2
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert float(rows[0]["x"]) == 2.0
        assert rows[0]["figure"] == "fig2"


class TestSaveJSON:
    def test_round_trip(self, tmp_path, fig3_result):
        path = tmp_path / "fig3.json"
        count = save_json(fig3_result, path)
        records = json.loads(path.read_text())
        assert len(records) == count == 2
        assert records[0]["figure"] == "fig3"


class TestCLIExport:
    def test_figure_with_out(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig3.csv"
        assert main(["figure", "fig3", "--quick", "--out", str(out)]) == 0
        assert out.exists()
        assert "exported" in capsys.readouterr().out
