"""Tests for server specs: validation, power model, transitions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.model.server import Server, ServerSpec


def spec(name="s", cpu=10.0, mem=10.0, idle=50.0, peak=100.0, trans=1.0):
    return ServerSpec(name, cpu_capacity=cpu, memory_capacity=mem,
                      p_idle=idle, p_peak=peak, transition_time=trans)


class TestServerSpecValidation:
    def test_valid(self):
        assert spec().cpu_capacity == 10.0

    @pytest.mark.parametrize("cpu", [0.0, -5.0])
    def test_rejects_nonpositive_cpu(self, cpu):
        with pytest.raises(ValidationError):
            spec(cpu=cpu)

    @pytest.mark.parametrize("mem", [0.0, -1.0])
    def test_rejects_nonpositive_memory(self, mem):
        with pytest.raises(ValidationError):
            spec(mem=mem)

    def test_rejects_negative_idle(self):
        with pytest.raises(ValidationError):
            spec(idle=-1.0)

    def test_rejects_peak_below_idle(self):
        with pytest.raises(ValidationError):
            spec(idle=100.0, peak=50.0)

    def test_rejects_negative_transition(self):
        with pytest.raises(ValidationError):
            spec(trans=-0.5)

    def test_peak_equal_idle_allowed(self):
        # A fully power-unproportional server: legal (P^1 = 0).
        s = spec(idle=80.0, peak=80.0)
        assert s.power_per_cpu_unit == 0.0


class TestPowerModel:
    def test_idle_at_zero_load(self):
        assert spec().power_at_load(0.0) == 50.0

    def test_peak_at_full_load(self):
        assert spec().power_at_load(10.0) == 100.0

    def test_affine_midpoint(self):
        # Eq. 1: P(0.5) = idle + 0.5 * (peak - idle)
        assert spec().power_at_load(5.0) == 75.0

    def test_power_per_cpu_unit(self):
        # Eq. 2: (100 - 50) / 10
        assert spec().power_per_cpu_unit == 5.0

    def test_rejects_negative_load(self):
        with pytest.raises(ValidationError):
            spec().power_at_load(-1.0)

    def test_rejects_overload(self):
        with pytest.raises(ValidationError):
            spec().power_at_load(10.5)

    @given(st.floats(0.0, 10.0))
    def test_power_within_idle_peak_band(self, load):
        s = spec()
        power = s.power_at_load(load)
        assert s.p_idle <= power <= s.p_peak

    @given(st.floats(0.0, 9.0), st.floats(0.0, 1.0))
    def test_power_is_monotone_in_load(self, load, delta):
        s = spec()
        assert s.power_at_load(load + delta) >= s.power_at_load(load)


class TestTransitionCost:
    def test_alpha_is_peak_times_transition_time(self):
        assert spec(peak=200.0, idle=100.0, trans=3.0).transition_cost == 600.0

    def test_zero_transition_time(self):
        assert spec(trans=0.0).transition_cost == 0.0

    def test_with_transition_time_copies(self):
        original = spec(trans=1.0)
        modified = original.with_transition_time(2.5)
        assert modified.transition_cost == 250.0
        assert original.transition_cost == 100.0  # unchanged
        assert modified.name == original.name

    def test_idle_peak_ratio(self):
        assert spec(idle=40.0, peak=100.0).idle_peak_ratio == 0.4


class TestServer:
    def test_delegates_to_spec(self):
        server = Server(2, spec())
        assert server.cpu_capacity == 10.0
        assert server.memory_capacity == 10.0
        assert server.p_idle == 50.0
        assert server.p_peak == 100.0
        assert server.transition_cost == 100.0
        assert server.power_per_cpu_unit == 5.0

    def test_fits(self):
        server = Server(0, spec())
        assert server.fits(10.0, 10.0)
        assert not server.fits(10.5, 1.0)
        assert not server.fits(1.0, 10.5)

    def test_rejects_negative_id(self):
        with pytest.raises(ValidationError):
            Server(-1, spec())

    def test_str(self):
        assert str(Server(4, spec(name="blade"))) == "srv4:blade"
