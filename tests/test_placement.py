"""Unit tests for the placement engine: occupancy indexes, probe(), and
the candidate index (the pre-probe wrapper trio is gone)."""

from __future__ import annotations

import pytest

from repro.allocators.state import ServerState
from repro.model.intervals import TimeInterval
from repro.model.server import Server, ServerSpec
from repro.placement import (
    CandidateIndex,
    DenseOccupancy,
    Feasibility,
    SkylineOccupancy,
)
from repro.placement.occupancy import DEFAULT_ENGINE, ENGINES, make_occupancy

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


def new_state(engine: str = DEFAULT_ENGINE) -> ServerState:
    return ServerState(Server(0, SPEC), engine=engine)


class TestSkylineOccupancy:
    def test_empty_peak_is_zero(self):
        occ = SkylineOccupancy()
        assert occ.peak(0, 1000) == (0.0, 0.0)
        assert len(occ) == 0

    def test_add_creates_two_change_points(self):
        occ = SkylineOccupancy()
        occ.add(5, 9, 2.0, 1.0)
        assert occ.points() == [5, 10]
        assert occ.peak(5, 9) == (2.0, 1.0)
        assert occ.peak(0, 4) == (0.0, 0.0)
        assert occ.peak(10, 99) == (0.0, 0.0)

    def test_closed_interval_semantics(self):
        occ = SkylineOccupancy()
        occ.add(3, 3, 1.0, 1.0)  # a single time unit
        assert occ.peak(3, 3) == (1.0, 1.0)
        assert occ.peak(2, 2) == (0.0, 0.0)
        assert occ.peak(4, 4) == (0.0, 0.0)

    def test_overlapping_adds_stack(self):
        occ = SkylineOccupancy()
        occ.add(1, 10, 2.0, 1.0)
        occ.add(5, 15, 3.0, 1.0)
        assert occ.peak(1, 4) == (2.0, 1.0)
        assert occ.peak(5, 10) == (5.0, 2.0)
        assert occ.peak(11, 15) == (3.0, 1.0)

    def test_subtract_restores_and_coalesces(self):
        occ = SkylineOccupancy()
        occ.add(1, 10, 2.0, 1.0)
        occ.add(5, 15, 3.0, 1.0)
        occ.subtract(5, 15, 3.0, 1.0)
        assert occ.points() == [1, 11]
        occ.subtract(1, 10, 2.0, 1.0)
        assert len(occ) == 0

    def test_memory_independent_of_horizon(self):
        occ = SkylineOccupancy()
        occ.add(10**9, 10**9 + 5, 1.0, 1.0)
        assert len(occ) == 2  # not horizon-proportional

    def test_probe_piece_fits(self):
        occ = SkylineOccupancy()
        occ.add(1, 5, 4.0, 4.0)
        reason, pc, pm = occ.probe_piece(1, 5, 6.0, 6.0, 10.0, 10.0, 1e-9)
        assert reason is None
        assert (pc, pm) == (4.0, 4.0)

    def test_probe_piece_reports_first_cpu_violation(self):
        occ = SkylineOccupancy()
        occ.add(4, 8, 6.0, 1.0)
        reason, pc, pm = occ.probe_piece(1, 10, 5.0, 1.0, 10.0, 10.0, 1e-9)
        assert reason == "cpu:overlap@4"
        assert pc == 6.0

    def test_probe_piece_cpu_wins_over_mem(self):
        occ = SkylineOccupancy()
        occ.add(2, 3, 1.0, 9.0)   # earlier mem violation
        occ.add(6, 7, 9.0, 1.0)   # later cpu violation
        reason, _, _ = occ.probe_piece(1, 10, 5.0, 5.0, 10.0, 10.0, 1e-9)
        assert reason == "cpu:overlap@6"  # cpu checked before memory

    def test_probe_violation_clamped_to_piece_start(self):
        occ = SkylineOccupancy()
        occ.add(1, 10, 9.0, 1.0)
        reason, _, _ = occ.probe_piece(5, 7, 5.0, 1.0, 10.0, 10.0, 1e-9)
        assert reason == "cpu:overlap@5"  # segment opened before the piece

    def test_compact_preserves_future_queries(self):
        occ = SkylineOccupancy()
        occ.add(1, 3, 1.0, 1.0)
        occ.add(6, 9, 2.0, 2.0)
        occ.add(20, 25, 3.0, 3.0)
        before = occ.peak(15, 30)
        occ.compact(15)
        assert occ.peak(15, 30) == before
        assert len(occ.points()) <= 3

    def test_compact_drops_leading_zeros(self):
        occ = SkylineOccupancy()
        occ.add(1, 3, 1.0, 1.0)
        occ.compact(10)  # usage at 10 is zero: nothing left to keep
        assert len(occ) == 0


class TestDenseOccupancy:
    def test_matches_skyline_on_basic_sequence(self):
        sky, dense = SkylineOccupancy(), DenseOccupancy()
        for occ in (sky, dense):
            occ.add(1, 10, 2.5, 1.5)
            occ.add(5, 15, 3.25, 2.25)
            occ.subtract(5, 15, 3.25, 2.25)
        for lo, hi in [(0, 4), (1, 10), (5, 15), (0, 100)]:
            assert sky.peak(lo, hi) == dense.peak(lo, hi)

    def test_probe_piece_agrees_with_skyline(self):
        sky, dense = SkylineOccupancy(), DenseOccupancy()
        for occ in (sky, dense):
            occ.add(4, 8, 6.0, 1.0)
        args = (1, 10, 5.0, 1.0, 10.0, 10.0, 1e-9)
        assert sky.probe_piece(*args) == dense.probe_piece(*args)

    def test_grows_beyond_initial_horizon(self):
        dense = DenseOccupancy()
        dense.add(1, 5000, 1.0, 1.0)
        assert dense.peak(4999, 5000) == (1.0, 1.0)

    def test_compact_is_a_no_op(self):
        dense = DenseOccupancy()
        dense.add(1, 5, 1.0, 1.0)
        dense.compact(100)
        assert dense.peak(1, 5) == (1.0, 1.0)


class TestMakeOccupancy:
    def test_engines(self):
        assert isinstance(make_occupancy("indexed"), SkylineOccupancy)
        assert isinstance(make_occupancy("dense"), DenseOccupancy)
        assert DEFAULT_ENGINE in ENGINES

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="dense"):
            make_occupancy("quantum")


class TestProbe:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_feasible_verdict_is_truthy(self, engine):
        verdict = new_state(engine).probe(make_vm(0, 1, 5, cpu=10.0))
        assert verdict
        assert verdict.feasible and verdict.reason is None

    @pytest.mark.parametrize("engine", ENGINES)
    def test_static_capacity_reasons(self, engine):
        state = new_state(engine)
        assert state.probe(make_vm(0, 1, 5, cpu=10.5)).reason == \
            "cpu:capacity"
        assert state.probe(make_vm(0, 1, 5, memory=10.5)).reason == \
            "mem:capacity"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_overlap_reason_names_first_violation(self, engine):
        state = new_state(engine)
        state.place(make_vm(0, 4, 8, cpu=6.0))
        verdict = state.probe(make_vm(1, 1, 10, cpu=6.0))
        assert not verdict
        assert verdict.reason == "cpu:overlap@4"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_peaks_and_headroom(self, engine):
        state = new_state(engine)
        state.place(make_vm(0, 1, 5, cpu=3.0, memory=2.0))
        verdict = state.probe(make_vm(1, 1, 5, cpu=1.0, memory=1.0))
        assert (verdict.peak_cpu, verdict.peak_mem) == (3.0, 2.0)
        assert (verdict.headroom_cpu, verdict.headroom_mem) == (7.0, 8.0)

    def test_feasibility_is_a_named_tuple(self):
        verdict = Feasibility(True, None, 1.0, 2.0, 9.0, 8.0)
        assert verdict.peak_cpu == 1.0
        assert bool(verdict) is True
        assert bool(verdict._replace(feasible=False)) is False


class TestRemovedWrappers:
    def test_deprecated_trio_is_gone(self):
        # The pre-probe fits/fit_reason/peak_usage wrappers completed
        # their deprecation cycle and were removed; probe() answers all
        # three questions in one pass.
        state = new_state()
        for name in ("fits", "fit_reason", "peak_usage"):
            assert not hasattr(state, name)

    def test_probe_covers_the_removed_surface(self):
        state = new_state()
        state.place(make_vm(0, 1, 5, cpu=3.0, memory=2.0))
        verdict = state.probe(make_vm(1, 3, 8, cpu=6.0))
        assert bool(verdict) is verdict.feasible
        assert verdict.reason is None
        assert (verdict.peak_cpu, verdict.peak_mem) == (3.0, 2.0)


class TestRetireAndCompact:
    def test_retire_keeps_cost_and_shrinks_vms(self):
        state = new_state()
        vm = make_vm(0, 1, 5, cpu=2.0)
        delta = state.place(vm)
        state.retire(vm, before=6)
        assert state.vms == []
        assert state.cost == delta  # energy stays on the books

    def test_retired_server_still_prices_future_like_untouched_twin(self):
        compacted, control = new_state(), new_state()
        old = make_vm(0, 1, 5, cpu=2.0)
        for st in (compacted, control):
            st.place(old)
        compacted.retire(old, before=6)
        future = make_vm(1, 40, 45, cpu=2.0)
        assert compacted.probe(future) == control.probe(future)
        assert compacted.incremental_cost(future) == \
            control.incremental_cost(future)

    def test_compact_bounds_occupancy_points(self):
        state = new_state()
        for i in range(50):
            vm = make_vm(i, 10 * i + 1, 10 * i + 4, cpu=1.0)
            state.place(vm)
            state.retire(vm, before=10 * i + 5)
        assert state.occupancy_points() <= 4

    def test_retire_unknown_vm_raises(self):
        from repro.exceptions import CapacityError
        with pytest.raises(CapacityError):
            new_state().retire(make_vm(0, 1, 5))

    def test_is_pristine(self):
        state = new_state()
        assert state.is_pristine
        vm = make_vm(0, 1, 5)
        state.place(vm)
        assert not state.is_pristine
        state.retire(vm, before=6)
        assert not state.is_pristine  # history: wake already paid


class TestCandidateIndex:
    def _fleet(self):
        small = ServerSpec("small", cpu_capacity=4.0, memory_capacity=4.0,
                           p_idle=20.0, p_peak=40.0, transition_time=1.0)
        states = [ServerState(Server(0, SPEC)),
                  ServerState(Server(1, small)),
                  ServerState(Server(2, SPEC))]
        return states, CandidateIndex(states)

    def test_covers_is_identity_bound(self):
        states, index = self._fleet()
        assert index.covers(states)
        assert not index.covers(list(states))  # equal but not identical

    def test_candidates_returns_original_list_when_all_admit(self):
        states, index = self._fleet()
        assert index.candidates(make_vm(0, 1, 5, cpu=1.0)) is states

    def test_candidates_filters_by_spec_preserving_order(self):
        states, index = self._fleet()
        picked = index.candidates(make_vm(0, 1, 5, cpu=6.0))
        assert [st.server.server_id for st in picked] == [0, 2]

    def test_spec_admits_keyed_by_spec_identity(self):
        states, index = self._fleet()
        admits = index.spec_admits(make_vm(0, 1, 5, memory=6.0))
        assert admits[id(SPEC)] is True
        assert admits[id(states[1].server.spec)] is False
