"""Tests for the epoch-based migration consolidation extension."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.allocators import FirstFitPowerSaving, MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.exceptions import ValidationError
from repro.extensions import EpochConsolidator
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(epoch_length=0),
        dict(epoch_length=-5),
        dict(migration_cost_per_gb=-1.0),
    ])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValidationError):
            EpochConsolidator(**kwargs)


class TestMechanics:
    def test_no_spanning_vms_means_no_migrations(self):
        # All VMs end before the first epoch boundary.
        vms = [make_vm(i, 1, 5, cpu=1.0) for i in range(4)]
        cluster = Cluster.homogeneous(SPEC, 4)
        result = EpochConsolidator(epoch_length=50).allocate(vms, cluster)
        assert result.migration_count == 0
        assert len(result.allocation) == 4

    def test_zero_saving_keeps_vm_in_place(self):
        # A single VM on a homogeneous fleet: no move can help.
        vms = [make_vm(0, 1, 40, cpu=2.0)]
        cluster = Cluster.homogeneous(SPEC, 3)
        result = EpochConsolidator(epoch_length=10).allocate(vms, cluster)
        assert result.migration_count == 0
        assert result.total_energy == pytest.approx(
            allocation_cost(MinIncrementalEnergy().allocate(
                vms, cluster)).total)

    def test_migration_splits_vm_into_pieces(self):
        # Force a bad initial plan (worst-fit spreads), then let the
        # consolidator fix it with free migrations.
        from repro.allocators import WorstFit

        vms = [make_vm(0, 1, 40, cpu=1.0), make_vm(1, 1, 40, cpu=1.0)]
        cluster = Cluster.homogeneous(SPEC, 2)
        result = EpochConsolidator(
            epoch_length=10, migration_cost_per_gb=0.0,
            base=WorstFit()).allocate(vms, cluster)
        assert result.migration_count >= 1
        # Pieces of both VMs end up co-located after the move.
        assert len(result.allocation) >= 3  # at least one VM split

    def test_migration_cost_gates_moves(self):
        from repro.allocators import WorstFit

        vms = [make_vm(0, 1, 40, cpu=1.0), make_vm(1, 1, 40, cpu=1.0)]
        cluster = Cluster.homogeneous(SPEC, 2)
        free = EpochConsolidator(epoch_length=10, migration_cost_per_gb=0.0,
                                 base=WorstFit()).allocate(vms, cluster)
        priced_out = EpochConsolidator(
            epoch_length=10, migration_cost_per_gb=1e9,
            base=WorstFit()).allocate(vms, cluster)
        assert free.migration_count >= 1
        assert priced_out.migration_count == 0

    def test_migration_records_original_vm_id(self):
        from repro.allocators import WorstFit

        vms = [make_vm(0, 1, 40, cpu=1.0), make_vm(1, 1, 40, cpu=1.0)]
        cluster = Cluster.homogeneous(SPEC, 2)
        result = EpochConsolidator(epoch_length=10,
                                   migration_cost_per_gb=0.0,
                                   base=WorstFit()).allocate(vms, cluster)
        for migration in result.migrations:
            assert migration.vm_id in (0, 1)
            assert migration.source != migration.target
            assert migration.time % 10 == 0


class TestEnergyAccounting:
    def test_placement_energy_matches_analytic(self):
        vms = generate_vms(60, mean_interarrival=4.0, seed=3)
        cluster = Cluster.paper_all_types(30)
        result = EpochConsolidator(epoch_length=15).allocate(vms, cluster)
        result.allocation.validate()
        assert result.placement_energy == pytest.approx(
            allocation_cost(result.allocation).total, rel=1e-9)

    def test_total_includes_migration_energy(self):
        from repro.allocators import WorstFit

        vms = [make_vm(0, 1, 40, cpu=1.0, memory=2.0),
               make_vm(1, 1, 40, cpu=1.0, memory=2.0)]
        cluster = Cluster.homogeneous(SPEC, 2)
        result = EpochConsolidator(epoch_length=10,
                                   migration_cost_per_gb=3.0,
                                   base=WorstFit()).allocate(vms, cluster)
        assert result.migration_energy == pytest.approx(
            result.migration_count * 3.0 * 2.0)
        assert result.total_energy == pytest.approx(
            result.placement_energy + result.migration_energy)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 1000), st.integers(5, 30),
           st.floats(0.0, 10.0))
    def test_never_worse_than_initial_plan(self, seed, epoch, cost_gb):
        # The pass only applies strictly-saving moves, so the total can
        # never exceed the initial plan's energy.
        vms = generate_vms(40, mean_interarrival=5.0, seed=seed)
        cluster = Cluster.paper_all_types(20)
        base = FirstFitPowerSaving(seed=seed)
        initial = allocation_cost(base.allocate(vms, cluster)).total
        result = EpochConsolidator(
            epoch_length=epoch, migration_cost_per_gb=cost_gb,
            base=FirstFitPowerSaving(seed=seed)).allocate(vms, cluster)
        result.allocation.validate()
        assert result.total_energy <= initial + 1e-6

    def test_rescues_a_bad_initial_plan(self):
        vms = generate_vms(120, mean_interarrival=6.0, seed=0)
        cluster = Cluster.paper_all_types(60)
        ffps = FirstFitPowerSaving(seed=0)
        initial = allocation_cost(ffps.allocate(vms, cluster)).total
        result = EpochConsolidator(
            epoch_length=10, migration_cost_per_gb=1.0,
            base=FirstFitPowerSaving(seed=0)).allocate(vms, cluster)
        assert result.migration_count > 0
        assert result.total_energy < initial
