"""Concurrency hammer tests: metrics and the daemon under parallel load.

:class:`ServiceMetrics` is shared by the daemon's per-connection
threads and the shard-scan pool, so its counters are hammered from many
threads and must come out *exact* — a single lost increment is a bug,
not noise. The TCP daemon is likewise driven by concurrent clients;
the commit lock must keep the state consistent (every placement
journal-countable, the energy ledger matching a from-scratch
recomputation) whatever the interleaving.
"""

from __future__ import annotations

import threading

import pytest

from repro.model.cluster import Cluster
from repro.service import (
    AllocationDaemon,
    ClusterStateStore,
    AllocationClient,
    serve_tcp,
)
from repro.service.metrics import (
    Histogram,
    LatencyReservoir,
    ServiceMetrics,
)
from conftest import make_vm

THREADS = 8
PER_THREAD = 500


def hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on N threads; re-raise any failure."""
    errors: list[BaseException] = []

    def wrapped(index: int) -> None:
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - funneled to pytest
            errors.append(exc)

    pool = [threading.Thread(target=wrapped, args=(i,))
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


class TestMetricsThreadSafety:
    def test_counters_are_exact_under_contention(self):
        metrics = ServiceMetrics()
        metrics.register_algorithm("min-energy")

        def worker(index: int) -> None:
            for i in range(PER_THREAD):
                decision = "placed" if (index + i) % 2 == 0 else "rejected"
                metrics.observe_request(decision, 0.001, delay=i % 3,
                                        algorithm="min-energy",
                                        candidates=i % 10)
                metrics.observe_error()
                metrics.observe_overload()
                metrics.observe_batch(i % 50 + 1)
                metrics.observe_shard_scan(0.0001)

        hammer(worker)
        total = THREADS * PER_THREAD
        assert sum(metrics.requests.values()) == total
        assert sum(metrics.decisions.values()) == total
        assert metrics.errors == total
        assert metrics.overloaded == total
        assert metrics.delayed == THREADS * sum(
            1 for i in range(PER_THREAD) if i % 3)
        assert metrics.latency.count == total
        assert metrics.latency_hist.count == total
        assert metrics.candidates.count == total
        assert metrics.batch_size.count == total
        assert metrics.shard_scan.count == total

    def test_histogram_exact_under_contention(self):
        hist = Histogram((1.0, 10.0, 100.0))

        def worker(index: int) -> None:
            for i in range(PER_THREAD):
                hist.observe(float(i % 200))

        hammer(worker)
        pairs, total, count = hist.snapshot()
        assert count == THREADS * PER_THREAD
        assert pairs[-1] == (float("inf"), count)
        assert total == THREADS * sum(float(i % 200)
                                      for i in range(PER_THREAD))

    def test_reservoir_exact_under_contention(self):
        reservoir = LatencyReservoir(capacity=256)

        def worker(index: int) -> None:
            for _ in range(PER_THREAD):
                reservoir.observe(0.002)

        hammer(worker)
        assert reservoir.count == THREADS * PER_THREAD
        assert reservoir.quantile(0.5) == 0.002

    def test_render_during_mutation_never_tears(self):
        """A scrape racing the recorders must always parse and never
        observe count-vs-bucket inconsistencies within one family."""
        metrics = ServiceMetrics()
        store = ClusterStateStore(Cluster.paper_all_types(5))
        stop = threading.Event()
        failures: list[str] = []

        def scrape() -> None:
            while not stop.is_set():
                text = metrics.render(store)
                for family in ("repro_batch_size",
                               "repro_placement_duration_seconds"):
                    buckets = [line for line in text.splitlines()
                               if line.startswith(f"{family}_bucket")]
                    inf_count = int(buckets[-1].rsplit(" ", 1)[1])
                    count = int([line for line in text.splitlines()
                                 if line.startswith(f"{family}_count")
                                 ][0].rsplit(" ", 1)[1])
                    if inf_count != count:
                        failures.append(
                            f"{family}: +Inf {inf_count} != {count}")

        scraper = threading.Thread(target=scrape)
        scraper.start()
        try:
            hammer(lambda index: [
                (metrics.observe_request("placed", 0.001),
                 metrics.observe_batch(3))
                for _ in range(PER_THREAD)], threads=4)
        finally:
            stop.set()
            scraper.join()
        assert not failures


class TestConcurrentClients:
    def test_parallel_tcp_clients_keep_state_consistent(self):
        """Many clients race mutating requests; the commit lock must
        keep the store's ledger exact whatever the interleaving."""
        store = ClusterStateStore(Cluster.paper_all_types(60))
        daemon = AllocationDaemon(store, shards=4, max_inflight=0)
        server = serve_tcp(daemon, port=0)
        host, port = server.server_address
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        clients = 6
        per_client = 20
        # Distinct ids per client; one shared arrival time so any
        # interleaving is a valid online order.
        batches = [
            [make_vm(index * per_client + i, 0, 5 + (i % 7),
                     cpu=1.0 + (i % 3), memory=1.0 + ((i + index) % 4))
             for i in range(per_client)]
            for index in range(clients)]
        outcomes: list[dict[str, object]] = []

        def worker(index: int) -> None:
            with AllocationClient(host, port) as client:
                response = client.place_batch(batches[index])
                assert response["ok"], response
                outcomes.append(response)

        try:
            hammer(worker, threads=clients)
        finally:
            server.shutdown()
            server.server_close()
        placed = sum(int(r["placed"]) for r in outcomes)
        assert placed == len(store.placements)
        assert sum(int(r["count"]) for r in outcomes) == \
            clients * per_client
        # the energy ledger survives the interleaving exactly
        assert store.energy_accumulated == pytest.approx(
            store.energy_total(), rel=1e-9)
        assert daemon.metrics.requests["placed"] == placed
