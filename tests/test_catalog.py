"""Tests for the Table I / Table II catalogs and their stated rules."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.model.catalog import (
    ALL_SERVER_TYPES,
    ALL_VM_TYPES,
    CPU_INTENSIVE_VM_TYPES,
    MEMORY_INTENSIVE_VM_TYPES,
    SERVER_TYPES,
    SMALL_SERVER_TYPES,
    STANDARD_VM_TYPES,
    VM_TYPES,
    server_type,
    vm_type,
)


class TestTable1:
    def test_nine_vm_types(self):
        assert len(ALL_VM_TYPES) == 9

    def test_family_sizes(self):
        assert len(STANDARD_VM_TYPES) == 4
        assert len(MEMORY_INTENSIVE_VM_TYPES) == 3
        assert len(CPU_INTENSIVE_VM_TYPES) == 2

    def test_names_unique(self):
        names = [spec.name for spec in ALL_VM_TYPES]
        assert len(set(names)) == len(names)

    def test_surviving_ocr_digits(self):
        # The two readable fragments of the paper's Table I.
        m1_xlarge = vm_type("standard-4")
        assert m1_xlarge.memory == 15.0
        c1_xlarge = vm_type("cpu-2")
        assert c1_xlarge.cpu == 20.0
        assert c1_xlarge.memory == 7.0

    def test_memory_intensive_have_high_memory_ratio(self):
        for spec in MEMORY_INTENSIVE_VM_TYPES:
            assert spec.memory / spec.cpu > 2.0

    def test_cpu_intensive_have_low_memory_ratio(self):
        for spec in CPU_INTENSIVE_VM_TYPES:
            assert spec.memory / spec.cpu < 1.0

    def test_lookup_by_name(self):
        assert vm_type("standard-1").cpu == 1.0

    def test_lookup_unknown_raises_with_candidates(self):
        with pytest.raises(ValidationError, match="standard-1"):
            vm_type("nope")

    def test_index_is_consistent(self):
        assert set(VM_TYPES) == {spec.name for spec in ALL_VM_TYPES}


class TestTable2:
    def test_five_server_types(self):
        assert len(SERVER_TYPES) == 5
        assert ALL_SERVER_TYPES == SERVER_TYPES

    def test_small_types_are_first_three(self):
        assert SMALL_SERVER_TYPES == SERVER_TYPES[:3]

    def test_idle_in_40_50_percent_band(self):
        # The paper's rule 2.
        for spec in SERVER_TYPES:
            assert 0.40 <= spec.idle_peak_ratio <= 0.50

    def test_power_monotone_in_capacity(self):
        # The paper's rule 3.
        for a, b in zip(SERVER_TYPES, SERVER_TYPES[1:]):
            assert b.cpu_capacity > a.cpu_capacity
            assert b.memory_capacity > a.memory_capacity
            assert b.p_idle > a.p_idle
            assert b.p_peak > a.p_peak

    def test_every_vm_fits_some_server(self):
        biggest = SERVER_TYPES[-1]
        for spec in ALL_VM_TYPES:
            assert spec.cpu <= biggest.cpu_capacity
            assert spec.memory <= biggest.memory_capacity

    def test_standard_vms_fit_small_servers(self):
        # Sec. IV-F allocates standard VMs on types 1-3.
        for vm_spec in STANDARD_VM_TYPES:
            assert any(vm_spec.cpu <= s.cpu_capacity
                       and vm_spec.memory <= s.memory_capacity
                       for s in SMALL_SERVER_TYPES)

    def test_largest_vm_requires_big_servers(self):
        # m2.4xlarge (26 cu / 68.4 GB) must need types 4-5: capacity
        # pressure is what differentiates the server mixes in Fig. 9.
        big_vm = vm_type("memory-3")
        fitting = [s for s in SERVER_TYPES
                   if big_vm.cpu <= s.cpu_capacity
                   and big_vm.memory <= s.memory_capacity]
        assert {s.name for s in fitting} == {"type4", "type5"}

    def test_default_transition_time_is_one_minute(self):
        for spec in SERVER_TYPES:
            assert spec.transition_time == 1.0

    def test_lookup_by_name(self):
        assert server_type("type3").cpu_capacity == 24.0

    def test_lookup_unknown_raises(self):
        with pytest.raises(ValidationError, match="type1"):
            server_type("mainframe")
