"""The indexed engine must not change what any allocator decides.

Every registered algorithm is run twice on the same workload — once per
engine — and must produce the *identical* placement map and a
*bit-identical* Eq.-17 energy total (``==`` on floats, no tolerance).
This is the contract that lets the skyline index and the fused candidate
scans replace the dense arrays as the production path while the dense
code remains the oracle.
"""

from __future__ import annotations

import pytest

from repro.allocators import allocator_names, make_allocator
from repro.energy import allocation_cost
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.workload import PhasedWorkload
from repro.workload.generator import generate_vms

VMS = generate_vms(150, mean_interarrival=3.0, seed=0)
CLUSTER = Cluster.paper_all_types(60)

# gamma-ff carries an active robustness config, and robust probing is
# indexed-only (the dense timeline has no radius planes) — there is no
# dense run to compare against.  Its correctness oracle is the
# brute-force robust probe in tests/test_robust.py instead.
DENSE_COMPARABLE = [a for a in allocator_names() if a != "gamma-ff"]


def _run(algo: str, engine: str, vms=VMS, cluster=CLUSTER, seed=0,
         constraints=None):
    allocator = make_allocator(algo, seed=seed, engine=engine)
    plan = allocator.allocate(vms, cluster, constraints)
    placements = {vm.vm_id: sid for vm, sid in plan.items()}
    return placements, allocation_cost(plan).total


class TestEngineEquivalence:
    @pytest.mark.parametrize("algo", DENSE_COMPARABLE)
    def test_identical_placements_and_energy(self, algo):
        placed_idx, energy_idx = _run(algo, "indexed")
        placed_dense, energy_dense = _run(algo, "dense")
        assert placed_idx == placed_dense
        assert energy_idx == energy_dense  # bit-identical, no approx

    @pytest.mark.parametrize("algo", ["min-energy", "ffps", "random-fit",
                                      "round-robin"])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_seeded_runs_agree(self, algo, seed):
        placed_idx, energy_idx = _run(algo, "indexed", seed=seed)
        placed_dense, energy_dense = _run(algo, "dense", seed=seed)
        assert placed_idx == placed_dense
        assert energy_idx == energy_dense

    @pytest.mark.parametrize("algo", DENSE_COMPARABLE)
    def test_phased_workload_agrees(self, algo):
        vms = PhasedWorkload(mean_interarrival=3.0).generate(80, rng=0)
        cluster = Cluster.paper_all_types(40)
        placed_idx, energy_idx = _run(algo, "indexed", vms, cluster)
        placed_dense, energy_dense = _run(algo, "dense", vms, cluster)
        assert placed_idx == placed_dense
        assert energy_idx == energy_dense

    @pytest.mark.parametrize("algo", ["min-energy", "first-fit",
                                      "best-fit"])
    def test_constrained_runs_agree(self, algo):
        ids = [vm.vm_id for vm in VMS[:20]]
        constraints = PlacementConstraints.build(
            separate=[ids[:6], ids[10:14]])
        placed_idx, energy_idx = _run(algo, "indexed",
                                      constraints=constraints)
        placed_dense, energy_dense = _run(algo, "dense",
                                          constraints=constraints)
        assert placed_idx == placed_dense
        assert energy_idx == energy_dense

    def test_tight_fleet_agrees_under_pressure(self):
        # Few servers: feasibility pruning and tie-breaking both bite.
        vms = generate_vms(80, mean_interarrival=2.0, seed=3)
        cluster = Cluster.paper_all_types(30)
        for algo in DENSE_COMPARABLE:
            placed_idx, energy_idx = _run(algo, "indexed", vms, cluster)
            placed_dense, energy_dense = _run(algo, "dense", vms, cluster)
            assert placed_idx == placed_dense, algo
            assert energy_idx == energy_dense, algo
