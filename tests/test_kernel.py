"""The batch probe kernel must be a bit-exact mirror of the scalar path.

Three contracts pin the vectorized fleet probe:

* **probe equivalence** — ``FleetKernel.probe_fleet`` equals the
  per-server ``ServerState.probe`` (and with it the underlying
  ``SkylineOccupancy.probe_piece`` loop) element-wise: feasible flag,
  reason string (code + first-violation tick), peaks and headrooms,
  over random fleets and random probe VMs — the hypothesis property;
* **decision equivalence** — every registered allocator places the same
  VMs on the same servers with bit-identical Eq.-17 energy whether the
  kernel is on or off (``==`` on floats, no tolerance);
* **config surface** — ``EngineConfig`` round-trips its spec string, is
  journaled through store snapshots, and the legacy bare-string ctor
  form still works but warns.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.allocators import allocator_names, make_allocator
from repro.allocators.state import ServerState
from repro.energy import allocation_cost
from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.model.phases import DemandPhase, PhasedVM
from repro.model.server import Server, ServerSpec
from repro.placement import EngineConfig, FeasibilityBatch, FleetKernel
from repro.service.state import ClusterStateStore
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC_SMALL = ServerSpec("small", cpu_capacity=6.0, memory_capacity=8.0,
                        p_idle=80.0, p_peak=140.0, transition_time=2.0)
SPEC_BIG = ServerSpec("big", cpu_capacity=12.0, memory_capacity=16.0,
                      p_idle=120.0, p_peak=260.0, transition_time=3.0)


def build_fleet(loads) -> list[ServerState]:
    """One state per entry; each entry is a list of committed VMs."""
    states = []
    for i, vms in enumerate(loads):
        spec = SPEC_SMALL if i % 2 == 0 else SPEC_BIG
        state = ServerState(Server(i, spec))
        for vm in vms:
            state.place_trusted(vm)
        states.append(state)
    return states


def assert_rows_match(batch: FeasibilityBatch,
                      states: list[ServerState], vm) -> None:
    assert len(batch) == len(states)
    for i, state in enumerate(states):
        scalar = state.probe(vm)
        view = batch[i]
        assert view.feasible == scalar.feasible, i
        assert view.reason == scalar.reason, i
        assert view.peak_cpu == scalar.peak_cpu, i
        assert view.peak_mem == scalar.peak_mem, i
        assert view.headroom_cpu == scalar.headroom_cpu, i
        assert view.headroom_mem == scalar.headroom_mem, i


# -- hypothesis property: batch == scalar element-wise ----------------------

committed = st.tuples(st.integers(0, 40), st.integers(1, 12),
                      st.floats(0.25, 6.0), st.floats(0.25, 8.0))
server_load = st.lists(committed, max_size=6)
fleet_loads = st.lists(server_load, min_size=1, max_size=7)
probe_vm = st.tuples(st.integers(0, 45), st.integers(1, 10),
                     st.floats(0.25, 14.0), st.floats(0.25, 18.0))


def _materialize(loads, probe):
    vm_id = 0
    fleet = []
    for entries in loads:
        vms = []
        for start, length, cpu, memory in entries:
            vms.append(make_vm(vm_id, start, start + length,
                               cpu=cpu, memory=memory))
            vm_id += 1
        fleet.append(vms)
    start, length, cpu, memory = probe
    return fleet, make_vm(10_000, start, start + length,
                          cpu=cpu, memory=memory)


class TestProbeEquivalenceProperty:
    @settings(max_examples=120, deadline=None)
    @given(loads=fleet_loads, probe=probe_vm)
    def test_probe_fleet_matches_scalar_probe(self, loads, probe):
        fleet, vm = _materialize(loads, probe)
        states = build_fleet(fleet)
        kernel = FleetKernel(states)
        assert_rows_match(kernel.probe_fleet(vm), states, vm)

    @settings(max_examples=60, deadline=None)
    @given(loads=fleet_loads, probe=probe_vm,
           data=st.data())
    def test_candidate_subsets_match(self, loads, probe, data):
        fleet, vm = _materialize(loads, probe)
        states = build_fleet(fleet)
        kernel = FleetKernel(states)
        picks = data.draw(st.lists(
            st.integers(0, len(states) - 1), max_size=len(states)))
        batch = kernel.probe_fleet(vm, np.array(picks, dtype=np.intp))
        assert len(batch) == len(picks)
        for j, pos in enumerate(picks):
            assert batch[j] == states[pos].probe(vm)

    @settings(max_examples=40, deadline=None)
    @given(loads=server_load, probe=probe_vm)
    def test_single_candidate_fleet(self, loads, probe):
        fleet, vm = _materialize([loads], probe)
        states = build_fleet(fleet)
        kernel = FleetKernel(states)
        assert kernel.probe_one(states[0], vm) == states[0].probe(vm)

    def test_empty_candidate_set(self):
        states = build_fleet([[], []])
        kernel = FleetKernel(states)
        vm = make_vm(1, 0, 5)
        batch = kernel.probe_fleet(vm, np.array([], dtype=np.intp))
        assert len(batch) == 0
        assert list(batch.feasible_indices()) == []
        assert batch.first_feasible() is None

    def test_phased_vm_probes_piecewise(self):
        states = build_fleet([[make_vm(0, 2, 6, cpu=4.0, memory=2.0)],
                              [], [make_vm(1, 0, 9, cpu=5.5)]])
        kernel = FleetKernel(states)
        vm = PhasedVM.from_phases(50, 1, [DemandPhase(3, 1.0, 2.0),
                                          DemandPhase(2, 3.0, 1.0),
                                          DemandPhase(2, 0.5, 6.0)])
        assert_rows_match(kernel.probe_fleet(vm), states, vm)

    def test_mutations_resync_through_watchers(self):
        states = build_fleet([[], []])
        kernel = FleetKernel(states)
        vm = make_vm(0, 1, 6, cpu=5.0, memory=5.0)
        assert kernel.probe_fleet(vm).feasible.all()
        states[0].place(make_vm(1, 2, 4, cpu=4.0))
        probe = make_vm(2, 3, 5, cpu=3.0)
        assert_rows_match(kernel.probe_fleet(probe), states, probe)
        states[0].remove(make_vm(1, 2, 4, cpu=4.0))
        assert_rows_match(kernel.probe_fleet(probe), states, probe)

    def test_foreign_candidate_raises(self):
        states = build_fleet([[]])
        kernel = FleetKernel(states)
        stranger = ServerState(Server(9, SPEC_BIG))
        with pytest.raises(KeyError):
            kernel.probe_fleet(make_vm(0, 0, 1), [stranger])


# -- allocator decisions: kernel on == kernel off ---------------------------

VMS = generate_vms(140, mean_interarrival=3.0, seed=3)
CLUSTER = Cluster.paper_all_types(50)


def _run(algo, engine, seed=0, constraints=None):
    allocator = make_allocator(algo, seed=seed, engine=engine)
    plan = allocator.allocate(VMS, CLUSTER, constraints)
    placements = {vm.vm_id: sid for vm, sid in plan.items()}
    return placements, allocation_cost(plan).total


class TestKernelDecisionEquivalence:
    @pytest.mark.parametrize("algo", allocator_names())
    def test_identical_placements_and_energy(self, algo):
        placed_on, energy_on = _run(algo, "indexed:kernel=on")
        placed_off, energy_off = _run(algo, "indexed:kernel=off")
        assert placed_on == placed_off
        assert energy_on == energy_off  # bit-identical, no approx

    @pytest.mark.parametrize("algo", ["min-energy", "ffps", "random-fit",
                                      "round-robin", "best-fit"])
    def test_seeded_runs_agree(self, algo):
        placed_on, energy_on = _run(algo, "indexed:kernel=on", seed=11)
        placed_off, energy_off = _run(algo, "indexed:kernel=off", seed=11)
        assert placed_on == placed_off
        assert energy_on == energy_off

    @pytest.mark.parametrize("algo", ["min-energy", "first-fit",
                                      "best-fit"])
    def test_constrained_runs_agree(self, algo):
        ids = [vm.vm_id for vm in VMS]
        constraints = PlacementConstraints.build(
            separate=[ids[:6], ids[10:14]])
        placed_on, energy_on = _run(algo, "indexed:kernel=on",
                                    constraints=constraints)
        placed_off, energy_off = _run(algo, "indexed:kernel=off",
                                      constraints=constraints)
        assert placed_on == placed_off
        assert energy_on == energy_off


# -- EngineConfig surface ---------------------------------------------------

class TestEngineConfig:
    @pytest.mark.parametrize("spec", ["indexed", "dense",
                                      "indexed:kernel=off",
                                      "indexed:kernel=on,shards=8",
                                      "dense:shards=2"])
    def test_spec_round_trips(self, spec):
        config = EngineConfig.parse(spec)
        assert EngineConfig.parse(config.spec) == config

    def test_kernel_defaults_follow_engine(self):
        assert EngineConfig(engine="indexed").use_kernel is True
        assert EngineConfig(engine="dense").use_kernel is False
        assert EngineConfig(engine="indexed",
                            kernel=False).use_kernel is False

    def test_dense_kernel_is_rejected(self):
        with pytest.raises(ValidationError):
            EngineConfig(engine="dense", kernel=True)
        with pytest.raises(ValidationError):
            EngineConfig.parse("dense:kernel=on")

    def test_bad_specs_are_rejected(self):
        for bad in ("warp", "indexed:kernel=maybe", "indexed:shards=x",
                    "indexed:turbo=on", "indexed:kernel"):
            with pytest.raises(ValidationError):
                EngineConfig.parse(bad)

    def test_record_round_trips(self):
        config = EngineConfig(engine="indexed", kernel=False, shards=4)
        assert EngineConfig.from_record(config.to_record()) == config

    def test_ctor_string_is_removed(self):
        # The bare-string constructor form finished its deprecation
        # cycle: allocator ctors and coerce() now reject it outright.
        with pytest.raises(ValidationError, match="removed"):
            make_allocator("first-fit").__class__(engine="indexed")
        with pytest.raises(ValidationError, match="EngineConfig"):
            EngineConfig.coerce("dense")
        # Sanctioned spec-string surfaces still parse strings silently.
        assert EngineConfig.coerce("dense", warn=False) == \
            EngineConfig(engine="dense")

    def test_make_allocator_spec_string_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            allocator = make_allocator("min-energy",
                                       engine="indexed:kernel=off")
        assert allocator.engine_config == EngineConfig(
            engine="indexed", kernel=False)

    def test_snapshot_journals_engine_config(self):
        store = ClusterStateStore(Cluster.paper_all_types(4),
                                  engine="indexed:kernel=off,shards=2")
        document = store.to_snapshot()
        assert document["engine"] == "indexed:kernel=off,shards=2"
        restored = ClusterStateStore.from_snapshot(document)
        assert restored.engine_config == store.engine_config
        assert restored.engine == "indexed"

    def test_legacy_snapshot_engine_string_restores(self):
        store = ClusterStateStore(Cluster.paper_all_types(3))
        document = store.to_snapshot()
        document["engine"] = "dense"  # pre-config snapshots: bare name
        restored = ClusterStateStore.from_snapshot(document)
        assert restored.engine_config == EngineConfig(engine="dense")
