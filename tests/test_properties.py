"""Cross-module property-based tests (hypothesis).

These are the system-level invariants: any workload the generator can
produce must yield feasible allocations from every algorithm, consistent
energies across the analytic accounting and the simulator, and cost
orderings that respect optimality.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.allocators import make_allocator
from repro.allocators.registry import allocator_names
from repro.energy.cost import SleepPolicy, allocation_cost, server_cost
from repro.model.catalog import STANDARD_VM_TYPES
from repro.model.cluster import Cluster
from repro.simulation import SimulationEngine
from repro.workload.generator import PoissonWorkload

from conftest import make_vm

SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def workload_strategy():
    return st.tuples(
        st.integers(5, 35),                  # vm count
        st.floats(0.5, 8.0),                 # mean inter-arrival
        st.floats(1.0, 12.0),                # mean duration
        st.integers(0, 10_000),              # seed
    )


@SLOW
@given(workload_strategy(), st.sampled_from(sorted(allocator_names())))
def test_every_allocator_produces_feasible_plans(params, algo):
    # Standard VM types fit every server type, so every draw is feasible
    # even for adversarially bad allocators (worst-fit can otherwise
    # starve the few servers able to host m2.4xlarge VMs).
    count, ia, dur, seed = params
    wl = PoissonWorkload(mean_interarrival=ia, mean_duration=dur,
                         vm_types=STANDARD_VM_TYPES)
    vms = wl.generate(count, rng=seed)
    cluster = Cluster.paper_all_types(max(5, count))
    allocation = make_allocator(algo, seed=seed).allocate(vms, cluster)
    allocation.validate(vms=vms)
    assert len(allocation) == count


@SLOW
@given(workload_strategy(),
       st.sampled_from(["min-energy", "ffps", "best-fit"]))
def test_simulated_energy_equals_analytic(params, algo):
    count, ia, dur, seed = params
    wl = PoissonWorkload(mean_interarrival=ia, mean_duration=dur,
                         vm_types=STANDARD_VM_TYPES)
    vms = wl.generate(count, rng=seed)
    cluster = Cluster.paper_all_types(max(5, count))
    allocation = make_allocator(algo, seed=seed).allocate(vms, cluster)
    sim = SimulationEngine(cluster).replay(allocation)
    assert sim.total_energy == pytest.approx(
        allocation_cost(allocation).total, rel=1e-9)


@SLOW
@given(workload_strategy())
def test_min_energy_never_worse_than_its_own_greedy_bound(params):
    # The heuristic's accumulated incremental costs must equal the final
    # Eq.-17 cost of its plan (internal consistency of the greedy).
    count, ia, dur, seed = params
    wl = PoissonWorkload(mean_interarrival=ia, mean_duration=dur,
                         vm_types=STANDARD_VM_TYPES)
    vms = wl.generate(count, rng=seed)
    cluster = Cluster.paper_all_types(max(5, count))
    allocation = make_allocator("min-energy").allocate(vms, cluster)
    total = allocation_cost(allocation).total
    recomputed = sum(
        server_cost(cluster.server(sid).spec,
                    allocation.vms_on(sid)).total
        for sid in allocation.used_servers())
    assert total == pytest.approx(recomputed, rel=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 60), st.integers(0, 10)),
                min_size=1, max_size=12))
def test_optimal_sleep_policy_dominates(pairs):
    vms = [make_vm(i, s, s + d, cpu=0.5, memory=0.5)
           for i, (s, d) in enumerate(pairs)]
    spec = Cluster.paper_all_types(1)[0].spec
    optimal = server_cost(spec, vms, policy=SleepPolicy.OPTIMAL).total
    never = server_cost(spec, vms, policy=SleepPolicy.NEVER_SLEEP).total
    always = server_cost(spec, vms, policy=SleepPolicy.ALWAYS_SLEEP).total
    assert optimal <= never + 1e-9
    assert optimal <= always + 1e-9


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 1000), st.integers(4, 10))
def test_ilp_optimum_lower_bounds_every_heuristic(seed, count):
    from repro.ilp import solve_ilp

    wl = PoissonWorkload(mean_interarrival=2.0, mean_duration=4.0,
                         vm_types=STANDARD_VM_TYPES)
    vms = wl.generate(count, rng=seed)
    cluster = Cluster.paper_all_types(4)
    optimal = solve_ilp(vms, cluster).objective
    for algo in ("min-energy", "ffps", "best-fit", "worst-fit"):
        cost = allocation_cost(
            make_allocator(algo, seed=seed).allocate(vms, cluster)).total
        assert optimal <= cost + 1e-6


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_energy_components_nonnegative(seed):
    wl = PoissonWorkload(mean_interarrival=2.0, mean_duration=5.0)
    vms = wl.generate(20, rng=seed)
    cluster = Cluster.paper_all_types(10)
    allocation = make_allocator("min-energy").allocate(vms, cluster)
    cost = allocation_cost(allocation)
    assert cost.run >= 0
    assert cost.busy_idle >= 0
    assert cost.gaps >= 0
    assert cost.initial_wake >= 0
