"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro

#: The pinned top-level surface. Adding a name is a deliberate API
#: decision — update this list in the same change; removing one is a
#: breaking change.
EXPECTED_ALL = [
    "Allocator",
    "BestFit",
    "Decision",
    "FirstFit",
    "FirstFitPowerSaving",
    "GammaFF",
    "MinIncrementalEnergy",
    "PowerAwareFirstFit",
    "RandomFit",
    "RoundRobin",
    "WorstFit",
    "allocator_names",
    "make_allocator",
    "CostBreakdown",
    "EnergyReport",
    "SleepPolicy",
    "allocation_cost",
    "energy_report",
    "run_energy",
    "AllocationError",
    "AllocatorConfigError",
    "CapacityError",
    "OverloadedError",
    "ProtocolVersionError",
    "ReproError",
    "RetryableError",
    "ServiceError",
    "SimulationError",
    "SolverError",
    "TransportError",
    "UnknownOperationError",
    "ValidationError",
    "CandidateIndex",
    "DenseOccupancy",
    "EngineConfig",
    "Feasibility",
    "FeasibilityBatch",
    "FleetKernel",
    "ShardedFleet",
    "SkylineOccupancy",
    "RobustnessConfig",
    "RobustSkyline",
    "ScenarioConfig",
    "compare_averaged",
    "ConsolidationReport",
    "FragmentationMonitor",
    "MigrationPlanner",
    "PlannedMove",
    "VictimSelector",
    "EpochConsolidator",
    "LongestFirstMinEnergy",
    "OfflineMinEnergy",
    "SuperlinearPowerModel",
    "evaluate_under_model",
    "RecedingHorizonSolver",
    "solve_ilp",
    "solve_relaxation",
    "concurrency_profile",
    "conflict_graph",
    "energy_lower_bound",
    "energy_reduction_ratio",
    "linear_fit",
    "logarithmic_fit",
    "utilization_stats",
    "VM",
    "DemandPhase",
    "PhasedVM",
    "Allocation",
    "Cluster",
    "PlacementConstraints",
    "Server",
    "ServerSpec",
    "TimeInterval",
    "VMSpec",
    "server_type",
    "vm_type",
    "CandidateVerdict",
    "CostTerms",
    "ExplainRecorder",
    "FlightRecorder",
    "JsonLogger",
    "PlacementExplanation",
    "SLOConfig",
    "SLOTracker",
    "TelemetryRing",
    "TelemetrySample",
    "TraceContext",
    "Tracer",
    "format_decision_table",
    "get_logger",
    "get_tracer",
    "set_logger",
    "set_tracer",
    "to_chrome_trace",
    "use_logger",
    "use_tracer",
    "write_chrome_trace",
    "AllocationClient",
    "AllocationDaemon",
    "ClientConfig",
    "ClusterStateStore",
    "PlacementResult",
    "ReplaySummary",
    "STATUSES",
    "SUPPORTED_VERSIONS",
    "consolidate_request",
    "place_batch_request",
    "replay_trace",
    "serve_async",
    "start_gateway",
    "SimulationEngine",
    "simulate_online",
    "BurstyWorkload",
    "DiurnalWorkload",
    "HeavyTailWorkload",
    "PhasedWorkload",
    "PoissonWorkload",
    "Trace",
    "generate_vms",
    "__version__",
]


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_all_is_pinned(self):
        """The exact export surface, so additions and removals are
        deliberate (reviewed here) rather than accidental."""
        assert sorted(repro.__all__) == sorted(EXPECTED_ALL)
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_service_batch_surface_pinned(self):
        import repro.service as service

        for name in ("place_batch_request", "SUPPORTED_VERSIONS",
                     "negotiate_version", "parse_batch_records",
                     "PROTOCOL_VERSION"):
            assert name in service.__all__, name
            assert hasattr(service, name), name
        assert service.PROTOCOL_VERSION in service.SUPPORTED_VERSIONS

    def test_service_fault_surface_pinned(self):
        import repro.service as service

        for name in ("AllocationClient", "ClientConfig", "FaultEvent",
                     "FaultInjector", "FailureReport", "Replacement",
                     "fail_server_request", "recover_server_request"):
            assert name in service.__all__, name
            assert hasattr(service, name), name
        assert not hasattr(service, "DaemonClient")
        for op in ("fail_server", "recover_server"):
            assert op in service.OPS

    def test_service_v3_surface_pinned(self):
        import repro.service as service

        for name in ("AsyncDaemonServer", "serve_async", "GatewayServer",
                     "start_gateway", "WorkerPool", "WorkerFleet",
                     "encode_frame", "read_frame", "write_frame",
                     "FrameDecoder", "FRAME_MAGIC", "CODES", "envelope",
                     "error_fields", "http_status_of", "apply_entry",
                     "AppliedEntry"):
            assert name in service.__all__, name
            assert hasattr(service, name), name
        assert 3 in service.SUPPORTED_VERSIONS
        assert service.PROTOCOL_VERSION == 3

    def test_service_consolidation_surface_pinned(self):
        import repro.service as service
        from repro.service import FaultEvent

        for name in ("ConsolidationReport", "consolidate_request"):
            assert name in service.__all__, name
            assert hasattr(service, name), name
        assert "consolidate" in service.OPS
        # The chaos vocabulary covers forced episodes too.
        FaultEvent(after=0, kind="consolidate")

    def test_results_vocabulary_pinned(self):
        from repro import results

        assert results.STATUSES == ("placed", "rejected", "deferred",
                                    "replaced")
        for name in ("PlacementResult", "Decision", "AdmissionDecision"):
            assert name in results.__all__, name
            assert hasattr(results, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_key_classes_exposed(self):
        for name in ("MinIncrementalEnergy", "FirstFitPowerSaving",
                     "Cluster", "VM", "Allocation", "SimulationEngine",
                     "Trace", "ScenarioConfig", "AllocationDaemon",
                     "ClusterStateStore", "AllocationClient"):
            assert name in repro.__all__

    def test_key_functions_exposed(self):
        for name in ("generate_vms", "allocation_cost", "energy_report",
                     "solve_ilp", "solve_relaxation",
                     "energy_reduction_ratio", "utilization_stats",
                     "compare_averaged", "make_allocator"):
            assert name in repro.__all__

    def test_subpackages_importable(self):
        for module in ("repro.model", "repro.energy", "repro.allocators",
                       "repro.ilp", "repro.simulation", "repro.workload",
                       "repro.metrics", "repro.experiments", "repro.cli",
                       "repro.service", "repro.consolidation"):
            importlib.import_module(module)


class TestDocstrings:
    def test_package_docstring_names_the_paper(self):
        assert "ICDCS" in repro.__doc__

    @pytest.mark.parametrize("module_name", [
        "repro.model.intervals", "repro.model.vm", "repro.model.server",
        "repro.model.catalog", "repro.model.cluster",
        "repro.model.allocation", "repro.energy.power",
        "repro.energy.segments", "repro.energy.cost",
        "repro.energy.accounting", "repro.allocators.base",
        "repro.allocators.state", "repro.allocators.min_energy",
        "repro.allocators.ffps", "repro.ilp.formulation",
        "repro.ilp.solver", "repro.ilp.relaxation",
        "repro.simulation.engine", "repro.simulation.events",
        "repro.simulation.power_state", "repro.simulation.telemetry",
        "repro.workload.generator", "repro.workload.patterns",
        "repro.workload.trace", "repro.metrics.fitting",
        "repro.metrics.reduction", "repro.metrics.summary",
        "repro.metrics.utilization", "repro.experiments.config",
        "repro.experiments.runner", "repro.experiments.figures",
        "repro.experiments.tables", "repro.cli",
        "repro.model.phases", "repro.model.constraints",
        "repro.energy.pricing", "repro.energy.timeout",
        "repro.simulation.failures", "repro.simulation.admission",
        "repro.workload.phased", "repro.workload.transforms",
        "repro.workload.characterize",
        "repro.metrics.significance", "repro.metrics.latency",
        "repro.analysis.conflicts", "repro.analysis.bounds",
        "repro.analysis.sizing", "repro.analysis.diagnostics",
        "repro.ilp.receding",
        "repro.experiments.sensitivity", "repro.experiments.export",
        "repro.experiments.report", "repro.experiments.scaling",
        "repro.extensions.consolidation", "repro.extensions.offline",
        "repro.extensions.cost_terms", "repro.extensions.robustness",
        "repro.extensions.warmpool",
        "repro.service.protocol", "repro.service.state",
        "repro.service.persistence", "repro.service.metrics",
        "repro.service.daemon", "repro.service.client",
        "repro.service.faults", "repro.simulation.recovery",
        "repro.consolidation.fragmentation",
        "repro.consolidation.victim", "repro.consolidation.planner",
        "repro.results",
        "repro.placement.sharding", "repro.allocators.batch",
    ])
    def test_every_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"
