"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_key_classes_exposed(self):
        for name in ("MinIncrementalEnergy", "FirstFitPowerSaving",
                     "Cluster", "VM", "Allocation", "SimulationEngine",
                     "Trace", "ScenarioConfig", "AllocationDaemon",
                     "ClusterStateStore", "DaemonClient"):
            assert name in repro.__all__

    def test_key_functions_exposed(self):
        for name in ("generate_vms", "allocation_cost", "energy_report",
                     "solve_ilp", "solve_relaxation",
                     "energy_reduction_ratio", "utilization_stats",
                     "compare_averaged", "make_allocator"):
            assert name in repro.__all__

    def test_subpackages_importable(self):
        for module in ("repro.model", "repro.energy", "repro.allocators",
                       "repro.ilp", "repro.simulation", "repro.workload",
                       "repro.metrics", "repro.experiments", "repro.cli",
                       "repro.service"):
            importlib.import_module(module)


class TestDocstrings:
    def test_package_docstring_names_the_paper(self):
        assert "ICDCS" in repro.__doc__

    @pytest.mark.parametrize("module_name", [
        "repro.model.intervals", "repro.model.vm", "repro.model.server",
        "repro.model.catalog", "repro.model.cluster",
        "repro.model.allocation", "repro.energy.power",
        "repro.energy.segments", "repro.energy.cost",
        "repro.energy.accounting", "repro.allocators.base",
        "repro.allocators.state", "repro.allocators.min_energy",
        "repro.allocators.ffps", "repro.ilp.formulation",
        "repro.ilp.solver", "repro.ilp.relaxation",
        "repro.simulation.engine", "repro.simulation.events",
        "repro.simulation.power_state", "repro.simulation.telemetry",
        "repro.workload.generator", "repro.workload.patterns",
        "repro.workload.trace", "repro.metrics.fitting",
        "repro.metrics.reduction", "repro.metrics.summary",
        "repro.metrics.utilization", "repro.experiments.config",
        "repro.experiments.runner", "repro.experiments.figures",
        "repro.experiments.tables", "repro.cli",
        "repro.model.phases", "repro.model.constraints",
        "repro.energy.pricing", "repro.energy.timeout",
        "repro.simulation.failures", "repro.simulation.admission",
        "repro.workload.phased", "repro.workload.transforms",
        "repro.workload.characterize",
        "repro.metrics.significance", "repro.metrics.latency",
        "repro.analysis.conflicts", "repro.analysis.bounds",
        "repro.analysis.sizing", "repro.analysis.diagnostics",
        "repro.ilp.receding",
        "repro.experiments.sensitivity", "repro.experiments.export",
        "repro.experiments.report", "repro.experiments.scaling",
        "repro.extensions.consolidation", "repro.extensions.offline",
        "repro.extensions.cost_terms", "repro.extensions.robustness",
        "repro.extensions.warmpool",
        "repro.service.protocol", "repro.service.state",
        "repro.service.persistence", "repro.service.metrics",
        "repro.service.daemon", "repro.service.client",
    ])
    def test_every_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"
