"""Protocol v3: binary framing, connection sniffing, the typed error
envelope, and cross-protocol parity (v1 lines == v3 frames == REST)."""

from __future__ import annotations

import io
import json
import socket
import urllib.request

import pytest

from repro.exceptions import ServiceError
from repro.model.cluster import Cluster
from repro.service import (
    AllocationClient,
    AllocationDaemon,
    ClusterStateStore,
    FrameDecoder,
    encode_frame,
    place_request,
    read_frame,
    serve_async,
    start_gateway,
    write_frame,
)
from repro.service.framing import FRAME_MAGIC, HEADER_SIZE, MAX_FRAME
from repro.workload.generator import generate_vms


def fresh_daemon(n_servers: int = 20, **kwargs) -> AllocationDaemon:
    store = ClusterStateStore(Cluster.paper_all_types(n_servers))
    return AllocationDaemon(store, algorithm="min-energy", **kwargs)


class TestFraming:
    def test_round_trip(self):
        payload = b'{"op": "ping"}'
        frame = encode_frame(payload)
        assert frame[0] == FRAME_MAGIC
        assert len(frame) == HEADER_SIZE + len(payload)
        stream = io.BytesIO(frame)
        assert read_frame(stream) == payload

    def test_write_then_read(self):
        stream = io.BytesIO()
        write_frame(stream, b"abc")
        write_frame(stream, b"")
        stream.seek(0)
        assert read_frame(stream) == b"abc"
        assert read_frame(stream) == b""
        assert read_frame(stream) is None  # clean EOF

    def test_truncated_frame_is_an_error(self):
        frame = encode_frame(b"hello")
        with pytest.raises(ServiceError):
            read_frame(io.BytesIO(frame[:-2]))
        with pytest.raises(ServiceError):
            read_frame(io.BytesIO(frame[:3]))  # torn header

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(b"x"))
        frame[0] = 0x7B  # '{' — a JSON-lines byte
        with pytest.raises(ServiceError):
            read_frame(io.BytesIO(bytes(frame)))

    def test_oversized_length_rejected(self):
        header = bytes([FRAME_MAGIC, 0x03]) + (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(ServiceError):
            read_frame(io.BytesIO(header))

    def test_decoder_handles_byte_dribble(self):
        frames = [encode_frame(f"payload-{i}".encode()) for i in range(3)]
        blob = b"".join(frames)
        decoder = FrameDecoder()
        seen: list[bytes] = []
        for i in range(len(blob)):
            seen.extend(decoder.feed(blob[i:i + 1]))
        assert seen == [f"payload-{i}".encode() for i in range(3)]
        assert decoder.pending == 0

    def test_decoder_handles_coalesced_frames(self):
        frames = [encode_frame(b"a"), encode_frame(b"bb")]
        decoder = FrameDecoder()
        assert decoder.feed(b"".join(frames)) == [b"a", b"bb"]


class TestSniffingServer:
    """One async port serves JSON lines and v3 frames side by side."""

    def _serve(self):
        daemon = fresh_daemon()
        server = serve_async(daemon)
        return daemon, server

    def test_lines_and_frames_share_one_port(self):
        daemon, server = self._serve()
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=10) as raw:
                raw.sendall(b'{"op": "ping"}\n')
                reply = raw.makefile("r", encoding="utf-8").readline()
                assert json.loads(reply)["ok"] is True
            with socket.create_connection((host, port), timeout=10) as raw:
                raw.sendall(encode_frame(
                    json.dumps({"op": "ping", "v": 3}).encode()))
                stream = raw.makefile("rb")
                response = json.loads(read_frame(stream))
                assert response["ok"] is True and response["v"] == 3
        finally:
            server.stop()

    def test_framed_connection_is_persistent(self):
        daemon, server = self._serve()
        host, port = server.address
        vms = generate_vms(5, mean_interarrival=2.0, seed=4)
        try:
            with AllocationClient(*server.address,
                                  framing="frames") as client:
                for vm in vms:
                    assert client.place(vm)["ok"]
                assert client.stats()["placed"] == 5
        finally:
            server.stop()

    def test_v1_client_is_byte_unaware_of_v3(self):
        """A v1 JSON-lines exchange over the async server matches the
        blocking transport's bytes (modulo the timing field)."""
        daemon, server = self._serve()
        reference = fresh_daemon()
        vm = generate_vms(1, mean_interarrival=2.0, seed=7)[0]
        try:
            with socket.create_connection(server.address,
                                          timeout=10) as raw:
                raw.sendall((json.dumps(place_request(vm)) + "\n").encode())
                line = raw.makefile("r", encoding="utf-8").readline()
        finally:
            server.stop()
        over_wire = json.loads(line)
        direct = json.loads(reference.handle_line(
            json.dumps(place_request(vm))))
        over_wire.pop("latency_ms", None)
        direct.pop("latency_ms", None)
        assert over_wire == direct
        assert "v" not in over_wire  # v1 requests get no version echo

    def test_error_shapes_per_generation(self):
        daemon = fresh_daemon()
        v1 = daemon.handle({"op": "tick", "now": -1})
        assert isinstance(v1["error"], str)
        assert "retry_after" not in v1
        v3 = daemon.handle({"op": "tick", "now": -1, "v": 3})
        assert v3["error"]["code"] == "bad_request"
        assert v3["error"]["retryable"] is False
        unknown = daemon.handle({"op": "nope", "v": 3})
        assert unknown["error"]["code"] == "unknown_op"
        assert unknown["supported_ops"]  # self-description stays top-level


class TestAsyncChaosSoak:
    """The chaos vocabulary against the async server: a retrying
    framed client streams placements while a FaultInjector fails,
    recovers, consolidates and pulls debug dumps mid-stream."""

    def test_fault_injection_over_async_frames(self, tmp_path):
        from repro.service import ClientConfig, FaultEvent, FaultInjector
        from repro.workload.trace import vm_from_record, vm_to_record

        vms = []
        for vm in generate_vms(30, mean_interarrival=1.0, seed=17):
            record = vm_to_record(vm)
            record["vm_id"] = 10_000 + 100 * vm.vm_id
            vms.append(vm_from_record(record))
        daemon = fresh_daemon(20, data_dir=tmp_path, fsync=False,
                              shards=2)
        server = serve_async(daemon)
        try:
            with AllocationClient(*server.address, framing="frames",
                                  config=ClientConfig(retries=3,
                                                      backoff=0.01)
                                  ) as client:
                injector = FaultInjector([
                    FaultEvent(after=8, kind="fail", server_id=0),
                    FaultEvent(after=14, kind="dump_debug"),
                    FaultEvent(after=16, kind="recover", server_id=0),
                    FaultEvent(after=22, kind="consolidate"),
                ], client)
                for position, vm in enumerate(vms):
                    injector.fire_due(position)
                    assert client.place(vm)["ok"]
                injector.drain()
                assert injector.pending == ()
                assert all(r["ok"] for _, r in injector.responses)
                stats = client.stats()
                assert stats["placed"] == len(vms)
                assert stats["servers_failed"] == 0
        finally:
            server.stop()
        # the journal replays to the same fleet state
        restored = AllocationDaemon.restore(tmp_path)
        assert dict(restored.store.placements) == \
            dict(daemon.store.placements)
        assert restored.store.energy_accumulated == \
            daemon.store.energy_accumulated


class TestCrossProtocolParity:
    """The same workload through v1 lines, v3 frames and the REST
    gateway produces identical decisions, journal bytes and counters."""

    def _run_lines(self, daemon, server, vms, ids):
        with AllocationClient(*server.address) as client:
            return [client._request({**place_request(vm), **ids(i)})
                    for i, vm in enumerate(vms)]

    def _run_frames(self, daemon, server, vms, ids):
        with AllocationClient(*server.address,
                              framing="frames") as client:
            return [client._request({**place_request(vm), **ids(i)})
                    for i, vm in enumerate(vms)]

    def _run_gateway(self, daemon, gateway, vms, ids):
        port = gateway.server_address[1]
        out = []
        for i, vm in enumerate(vms):
            fields = ids(i)
            body = json.dumps(
                {"vm": place_request(vm)["vm"]}).encode()
            req = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/place", data=body,
                headers={"X-Trace-Id": fields["trace_id"],
                         "X-Request-Id": fields["request_id"]},
                method="POST")
            with urllib.request.urlopen(req, timeout=10) as resp:
                out.append(json.load(resp))
        return out

    def test_three_transports_one_truth(self, tmp_path):
        vms = generate_vms(25, mean_interarrival=1.5, seed=11)

        def ids(i: int) -> dict[str, str]:
            return {"trace_id": f"{i:032x}", "request_id": f"{i:016x}"}

        responses = {}
        daemons = {}
        for mode in ("lines", "frames", "gateway"):
            daemon = fresh_daemon(15, data_dir=tmp_path / mode,
                                  fsync=False)
            daemons[mode] = daemon
            if mode == "gateway":
                gateway = start_gateway(daemon)
                try:
                    responses[mode] = self._run_gateway(
                        daemon, gateway, vms, ids)
                finally:
                    gateway.shutdown()
            else:
                server = serve_async(daemon)
                run = self._run_lines if mode == "lines" \
                    else self._run_frames
                try:
                    responses[mode] = run(daemon, server, vms, ids)
                finally:
                    server.stop()

        def decisions(mode):
            return [(r["vm_id"], r.get("decision"), r.get("server_id"))
                    for r in responses[mode]]

        assert decisions("lines") == decisions("frames") \
            == decisions("gateway")
        base = daemons["lines"]
        for mode in ("frames", "gateway"):
            other = daemons[mode]
            assert dict(other.store.placements) == \
                dict(base.store.placements)
            assert other.store.energy_accumulated == \
                base.store.energy_accumulated
            assert other.metrics.requests == base.metrics.requests

        journal_bytes = {
            mode: (tmp_path / mode / "journal.jsonl").read_bytes()
            for mode in responses}
        assert journal_bytes["lines"] == journal_bytes["frames"] \
            == journal_bytes["gateway"]
