"""Tests for the exact ILP formulation and solver."""

from __future__ import annotations

import pytest

from repro.allocators import FirstFitPowerSaving, MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.exceptions import SolverError, ValidationError
from repro.ilp import build_problem, solve_ilp, solve_problem, solve_relaxation
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)
CHEAP = ServerSpec("cheap", cpu_capacity=10.0, memory_capacity=10.0,
                   p_idle=20.0, p_peak=40.0, transition_time=1.0)


class TestFormulation:
    def test_variable_counts(self):
        vms = [make_vm(0, 1, 3), make_vm(1, 2, 4)]
        cluster = Cluster.homogeneous(SPEC, 2)
        problem = build_problem(vms, cluster)
        assert problem.horizon == 4
        # x: 2*2, y: 2*4, z: 2*4
        assert problem.n_variables == 4 + 8 + 8

    def test_index_layout_disjoint(self):
        vms = [make_vm(0, 1, 2)]
        cluster = Cluster.homogeneous(SPEC, 2)
        p = build_problem(vms, cluster)
        indices = {p.x_index(i, 0) for i in range(2)}
        indices |= {p.y_index(i, t) for i in range(2) for t in (1, 2)}
        indices |= {p.z_index(i, t) for i in range(2) for t in (1, 2)}
        assert len(indices) == p.n_variables
        assert max(indices) == p.n_variables - 1

    def test_infeasible_pair_fixed_to_zero(self):
        vms = [make_vm(0, 1, 2, cpu=20.0)]
        big = ServerSpec("big", 30.0, 30.0, 10.0, 20.0)
        cluster = Cluster.from_specs([SPEC, big])
        p = build_problem(vms, cluster)
        assert p.var_upper[p.x_index(0, 0)] == 0.0
        assert p.var_upper[p.x_index(1, 0)] == 1.0

    def test_rejects_empty_vms(self):
        with pytest.raises(ValidationError):
            build_problem([], Cluster.homogeneous(SPEC, 1))

    def test_rejects_start_before_one(self):
        with pytest.raises(ValidationError):
            build_problem([make_vm(0, 0, 2)], Cluster.homogeneous(SPEC, 1))

    def test_z_is_continuous(self):
        vms = [make_vm(0, 1, 2)]
        p = build_problem(vms, Cluster.homogeneous(SPEC, 1))
        assert p.integrality[p.z_index(0, 1)] == 0
        assert p.integrality[p.x_index(0, 0)] == 1
        assert p.integrality[p.y_index(0, 1)] == 1


class TestSolver:
    def test_single_vm_exact_cost(self):
        # One VM, one server: optimum = W + idle*len + alpha
        vm = make_vm(0, 1, 4, cpu=2.0)
        cluster = Cluster.homogeneous(SPEC, 1)
        result = solve_ilp([vm], cluster)
        expected = 5 * 2 * 4 + 50 * 4 + 100
        assert result.objective == pytest.approx(expected)
        assert result.is_optimal

    def test_picks_cheaper_server(self):
        vm = make_vm(0, 1, 4, cpu=2.0)
        cluster = Cluster.from_specs([SPEC, CHEAP])
        result = solve_ilp([vm], cluster)
        assert result.allocation.server_of(vm) == 1

    def test_consolidates_when_cheaper(self):
        vms = [make_vm(0, 1, 4, cpu=2.0), make_vm(1, 1, 4, cpu=2.0)]
        cluster = Cluster.homogeneous(SPEC, 2)
        result = solve_ilp(vms, cluster)
        assert len(result.allocation.used_servers()) == 1

    def test_objective_matches_analytic_accounting(self):
        vms = generate_vms(8, mean_interarrival=2.0, seed=1)
        cluster = Cluster.paper_all_types(5)
        result = solve_ilp(vms, cluster)
        analytic = allocation_cost(result.allocation).total
        assert result.objective == pytest.approx(analytic, rel=1e-9)

    def test_optimum_lower_bounds_heuristics(self):
        for seed in range(3):
            vms = generate_vms(8, mean_interarrival=2.0, seed=seed)
            cluster = Cluster.paper_all_types(5)
            optimal = solve_ilp(vms, cluster).objective
            heuristic = allocation_cost(
                MinIncrementalEnergy().allocate(vms, cluster)).total
            ffps = allocation_cost(
                FirstFitPowerSaving(seed=seed).allocate(vms, cluster)).total
            assert optimal <= heuristic + 1e-6
            assert optimal <= ffps + 1e-6

    def test_sleep_vs_active_decision(self):
        # Two VMs with a long gap: optimum sleeps (alpha=100 < idle*8=400).
        vms = [make_vm(0, 1, 1, cpu=1.0), make_vm(1, 10, 10, cpu=1.0)]
        cluster = Cluster.homogeneous(SPEC, 1)
        result = solve_ilp(vms, cluster)
        # run 2*5 + busy idle 2*50 + 2 wakes
        assert result.objective == pytest.approx(10 + 100 + 200)

    def test_short_gap_stays_active(self):
        vms = [make_vm(0, 1, 1, cpu=1.0), make_vm(1, 3, 3, cpu=1.0)]
        cluster = Cluster.homogeneous(SPEC, 1)
        result = solve_ilp(vms, cluster)
        # run 10 + busy idle 100 + bridge gap idle 50 + 1 wake 100
        assert result.objective == pytest.approx(10 + 100 + 50 + 100)

    def test_indicator_constraints_do_not_change_optimum(self):
        vms = generate_vms(6, mean_interarrival=2.0, seed=4)
        cluster = Cluster.paper_all_types(5)
        plain = solve_problem(build_problem(vms, cluster))
        explicit = solve_problem(
            build_problem(vms, cluster, include_indicator_constraints=True))
        assert plain.objective == pytest.approx(explicit.objective)

    def test_infeasible_instance_raises(self):
        # Two simultaneous full-capacity VMs, one server.
        vms = [make_vm(0, 1, 3, cpu=10.0), make_vm(1, 1, 3, cpu=10.0)]
        cluster = Cluster.homogeneous(SPEC, 1)
        with pytest.raises(SolverError):
            solve_ilp(vms, cluster)


class TestRelaxation:
    def test_lower_bounds_ilp(self):
        vms = generate_vms(8, mean_interarrival=2.0, seed=2)
        cluster = Cluster.paper_all_types(5)
        lb = solve_relaxation(vms, cluster)
        exact = solve_ilp(vms, cluster)
        assert lb.lower_bound <= exact.objective + 1e-6

    def test_gap_of(self):
        vms = [make_vm(0, 1, 2)]
        cluster = Cluster.homogeneous(SPEC, 1)
        lb = solve_relaxation(vms, cluster)
        assert lb.gap_of(lb.lower_bound) == pytest.approx(0.0)
        assert lb.gap_of(2 * lb.lower_bound) == pytest.approx(1.0)
