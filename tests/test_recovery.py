"""Unit tests for the shared crash-recovery mechanics
(:mod:`repro.simulation.recovery`): the cut rule and the target rule
both failure paths (offline replay, live service) agree on."""

from __future__ import annotations

import pytest

from repro.allocators import FirstFit, MinIncrementalEnergy
from repro.allocators.state import ServerState
from repro.model.cluster import Cluster
from repro.model.phases import DemandPhase, PhasedVM
from repro.model.server import Server, ServerSpec
from repro.model.vm import VMSpec
from repro.simulation.recovery import recover_target, split_remainder

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


class TestSplitRemainder:
    def test_running_vm_splits_into_head_and_remainder(self):
        vm = make_vm(7, 2, 9, cpu=3.0)
        head, remainder, next_id = split_remainder(vm, 5, 100)
        assert head is not None
        assert (head.start, head.end) == (2, 4)
        assert (remainder.start, remainder.end) == (5, 9)
        assert {head.vm_id, remainder.vm_id} == {100, 101}
        assert next_id == 102
        assert head.spec == remainder.spec == vm.spec

    def test_not_yet_started_vm_moves_whole(self):
        vm = make_vm(7, 5, 9)
        head, remainder, next_id = split_remainder(vm, 5, 100)
        assert head is None
        assert remainder is vm  # same id, no waste
        assert next_id == 100  # counter untouched

    def test_cut_at_exact_start_moves_whole(self):
        vm = make_vm(1, 3, 6)
        head, remainder, _ = split_remainder(vm, 3, 10)
        assert head is None and remainder is vm

    def test_phased_vm_keeps_demand_profile(self):
        vm = PhasedVM(vm_id=0, spec=VMSpec("t", 1.0, 1.0),
                      interval=make_vm(0, 1, 6).interval,
                      phases=(DemandPhase(3, 0.5, 1.0),
                              DemandPhase(3, 1.0, 0.5)))
        head, remainder, _ = split_remainder(vm, 4, 50)
        assert isinstance(head, PhasedVM)
        assert isinstance(remainder, PhasedVM)
        # Head covers the first phase entirely, remainder the second.
        assert head.demand_at(head.start) == vm.demand_at(vm.start)
        assert remainder.demand_at(remainder.end) == vm.demand_at(vm.end)


class TestRecoverTarget:
    def _states(self, n):
        return {s.server_id: ServerState(s)
                for s in Cluster.homogeneous(SPEC, n)}

    def test_skips_dead_servers(self):
        states = self._states(3)
        target = recover_target(make_vm(0, 1, 5), states, {0: 1, 1: 1},
                                FirstFit())
        assert target.server.server_id == 2

    def test_none_when_nothing_fits(self):
        states = self._states(2)
        states[1].place(make_vm(0, 1, 5, cpu=8.0))
        target = recover_target(make_vm(1, 1, 5, cpu=4.0), states,
                                {0: 1}, FirstFit())
        assert target is None

    def test_all_dead_is_lost(self):
        states = self._states(2)
        assert recover_target(make_vm(0, 1, 5), states, {0: 1, 1: 2},
                              FirstFit()) is None

    def test_sequence_and_mapping_agree(self):
        mapping = self._states(3)
        sequence = [ServerState(Server(i, SPEC)) for i in range(3)]
        mapping[1].place(make_vm(0, 1, 5, cpu=2.0))
        sequence[1].place(make_vm(0, 1, 5, cpu=2.0))
        vm = make_vm(1, 2, 6, cpu=1.0)
        allocator = MinIncrementalEnergy()
        chosen_m = recover_target(vm, mapping, {0: 1}, allocator)
        chosen_s = recover_target(vm, sequence, {0: 1}, allocator)
        assert chosen_m.server.server_id == chosen_s.server.server_id

    def test_min_energy_prefers_busy_survivor(self):
        states = self._states(3)
        states[2].place(make_vm(0, 1, 5, cpu=2.0))
        # Sharing server 2's busy window is cheaper than waking 1.
        target = recover_target(make_vm(1, 1, 5, cpu=1.0), states,
                                {0: 1}, MinIncrementalEnergy())
        assert target.server.server_id == 2

    def test_probe_infeasible_survivors_are_filtered(self):
        states = self._states(2)
        states[1].place(make_vm(0, 1, 5, cpu=9.5))
        vm = make_vm(1, 1, 5, cpu=1.0)
        target = recover_target(vm, states, {}, FirstFit())
        assert target.server.server_id == 0
