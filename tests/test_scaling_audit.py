"""Tests for the scaling study and the audit CLI command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.experiments.scaling import measure_scaling


class TestMeasureScaling:
    def test_points_and_fit(self):
        study = measure_scaling([20, 40, 80], repeats=1)
        assert [p.n_vms for p in study.points] == [20, 40, 80]
        assert all(p.seconds > 0 for p in study.points)
        assert study.algorithm == "min-energy"
        # sane exponent band for any of the registered algorithms
        assert -1.0 < study.exponent < 4.0

    def test_needs_two_sizes(self):
        with pytest.raises(ValidationError):
            measure_scaling([50])

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValidationError):
            measure_scaling([20, 40], repeats=0)

    def test_other_algorithm(self):
        study = measure_scaling([20, 40], algorithm="ffps", repeats=1)
        assert study.algorithm == "ffps"

    def test_format(self):
        study = measure_scaling([20, 40], repeats=1)
        out = study.format()
        assert "empirical exponent" in out
        assert "ms" in out

    def test_larger_instances_take_longer(self):
        study = measure_scaling([30, 300], repeats=2)
        assert study.points[-1].seconds > study.points[0].seconds


class TestAuditCommand:
    def test_generated_workload(self, capsys):
        code = main(["audit", "--vms", "40", "--interarrival", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload characterisation" in out
        assert "stranded capacity" in out
        assert "wake-up waits" in out
        assert "lower bound" in out

    def test_from_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.csv"
        assert main(["trace", "--vms", "20", "--out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["audit", "--trace", str(trace)]) == 0
        assert "20" in capsys.readouterr().out

    def test_custom_algorithm(self, capsys):
        code = main(["audit", "--vms", "30", "--algorithm", "ffps"])
        assert code == 0
        assert "ffps" in capsys.readouterr().out
