"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; a broken example is a broken
promise. Each script runs in a subprocess with a generous timeout and
must exit 0 with non-trivial output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, \
        f"{script} failed:\n{result.stderr[-2000:]}"
    assert len(result.stdout.strip()) > 50, \
        f"{script} produced almost no output"
