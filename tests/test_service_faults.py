"""Fault tolerance of the online allocation service: live ``fail_server``
/ ``recover_server`` events, atomic journal groups, kill+restore of the
post-failure state, the deterministic fault-injection harness, and the
end-to-end live-versus-offline energy equality."""

from __future__ import annotations

import json

import pytest

from repro.allocators import MinIncrementalEnergy
from repro.energy import allocation_cost
from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.service import (
    AllocationDaemon,
    ClusterStateStore,
    FaultEvent,
    FaultInjector,
    dump_debug_request,
    fail_server_request,
    place_request,
    read_journal,
    recover_server_request,
)
from repro.simulation import simulate_online
from repro.simulation.failures import ServerFailure, inject_failures
from repro.simulation.power_state import PowerState
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)


def online_order(vms):
    return sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))


class DictApiTarget:
    """Adapts the daemon's in-process dict API to the injector's
    client-shaped surface, so one fault schedule drives both."""

    def __init__(self, daemon):
        self._daemon = daemon

    def fail_server(self, server_id, time=None):
        return self._daemon.handle(fail_server_request(server_id, time))

    def recover_server(self, server_id):
        return self._daemon.handle(recover_server_request(server_id))

    def dump_debug(self):
        return self._daemon.handle(dump_debug_request())


class TestStoreFailServer:
    def test_running_vm_splits_and_replaces(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3))
        store.commit(make_vm(0, 1, 8, cpu=4.0), 0)
        store.advance_to(3)
        report = store.fail_server(0, 4)
        assert (report.server_id, report.time) == (0, 4)
        assert store.clock == 4  # the failure advanced the clock
        [r] = report.replacements
        assert r.vm.vm_id == 0
        assert (r.head.start, r.head.end) == (1, 3)
        assert (r.remainder.start, r.remainder.end) == (4, 8)
        assert r.server_id in (1, 2)
        assert report.killed == 1 and report.replaced == 1
        assert report.lost == ()
        assert store.is_failed(0)
        assert store.servers_failed() == 1
        assert store.dead_servers() == {0: 4}
        # Head stays on the victim's books, remainder on the target.
        placed = {vm.vm_id: sid for vm, sid in store.placements}
        assert placed[r.head.vm_id] == 0
        assert placed[r.remainder.vm_id] == r.server_id
        assert 0 not in placed  # the original entry was replaced

    def test_not_started_vm_moves_whole(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        store.commit(make_vm(7, 5, 9), 0)
        report = store.fail_server(0, 2)
        [r] = report.replacements
        assert r.head is None
        assert r.remainder.vm_id == 7  # id kept: nothing ran
        assert report.killed == 0 and report.replaced == 1

    def test_remainder_lost_when_nothing_fits(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        store.commit(make_vm(0, 1, 6, cpu=8.0), 0)
        store.commit(make_vm(1, 1, 6, cpu=8.0), 1)
        report = store.fail_server(0, 3)
        [r] = report.replacements
        assert r.lost and r.server_id is None
        assert report.lost == (r.vm,)
        # The head's waste is still accounted on the dead server.
        assert r.head is not None

    def test_dead_server_rejects_commits(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        store.fail_server(0, 1)
        with pytest.raises(ValidationError, match="failed at tick"):
            store.commit(make_vm(0, 2, 4), 0)
        store.commit(make_vm(0, 2, 4), 1)  # survivors still accept

    def test_failure_validation(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        with pytest.raises(ValidationError):
            store.fail_server(9, 1)  # unknown server
        store.advance_to(5)
        with pytest.raises(ValidationError):
            store.fail_server(0, 3)  # in the past
        store.fail_server(0, 5)
        with pytest.raises(ValidationError):
            store.fail_server(0, 6)  # already failed
        with pytest.raises(ValidationError):
            store.recover_server(1)  # not failed
        with pytest.raises(ValidationError):
            store.recover_server(9)  # unknown server

    def test_failed_machine_draws_no_power(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        store.commit(make_vm(0, 1, 6, cpu=5.0), 0)
        store.advance_to(2)
        assert store.fleet_power() > 0
        store.fail_server(0, 3)
        assert store.machines[0].state is PowerState.FAILED
        assert store.fleet_power() == 0.0
        assert store.servers_active() == 0

    def test_recover_readmits_and_next_wake_pays_alpha(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        store.fail_server(0, 2)
        store.recover_server(0)
        assert not store.is_failed(0)
        assert store.machines[0].state is PowerState.POWER_SAVING
        transitions = store.machines[0].transitions
        store.commit(make_vm(0, 3, 5), 0)
        store.advance_to(3)
        assert store.machines[0].state is PowerState.ACTIVE
        assert store.machines[0].transitions == transitions + 1

    def test_energy_accumulated_stays_consistent(self):
        vms = generate_vms(60, mean_interarrival=2.0, seed=3)
        store = ClusterStateStore(Cluster.paper_all_types(30))
        daemon = AllocationDaemon(store)
        for vm in online_order(vms):
            assert daemon.handle(place_request(vm))["decision"] == "placed"
        victims = sorted({sid for vm, sid in store.placements
                          if vm.end >= store.clock + 2})[:2]
        for offset, sid in enumerate(victims):
            daemon.handle(fail_server_request(sid, store.clock + 1))
        store.run_to_completion()
        assert store.energy_accumulated == pytest.approx(
            store.energy_total(), rel=1e-12)

    def test_live_failures_match_offline_inject_failures(self):
        vms = generate_vms(80, mean_interarrival=2.0, seed=5)
        cluster = Cluster.paper_all_types(40)
        store = ClusterStateStore(cluster)
        daemon = AllocationDaemon(store)
        for vm in online_order(vms):
            assert daemon.handle(place_request(vm))["decision"] == "placed"
        clock = store.clock
        by_server = {}
        for vm, sid in store.placements:
            by_server[sid] = max(by_server.get(sid, -1), vm.end)
        victims = [sid for sid, end in sorted(by_server.items())
                   if end >= clock + 2][:2]
        assert len(victims) == 2
        schedule = [ServerFailure(server_id=sid, time=clock + 1 + i)
                    for i, sid in enumerate(victims)]
        for failure in schedule:
            response = daemon.handle(
                fail_server_request(failure.server_id, failure.time))
            assert response["ok"], response
        store.run_to_completion()

        alloc, _ = simulate_online(vms, Cluster.paper_all_types(40),
                                   MinIncrementalEnergy())
        outcome = inject_failures(alloc, schedule)
        assert store.energy_total() == pytest.approx(
            allocation_cost(outcome.allocation).total, rel=1e-12)
        offline = {vm.vm_id: sid for vm, sid in outcome.allocation.items()}
        online = {vm.vm_id: sid for vm, sid in store.allocation().items()}
        assert online == offline  # split ids included

    def test_snapshot_roundtrip_with_failure_events(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3))
        store.commit(make_vm(0, 1, 8, cpu=4.0), 0)
        store.commit(make_vm(1, 2, 6, cpu=2.0), 1)
        store.fail_server(0, 4)
        store.recover_server(0)
        store.commit(make_vm(50, 5, 7), 0)
        document = json.loads(json.dumps(store.to_snapshot()))
        assert document["format_version"] == 2
        restored = ClusterStateStore.from_snapshot(document)
        assert restored.to_snapshot() == store.to_snapshot()
        assert restored.clock == store.clock
        assert restored.energy_accumulated == store.energy_accumulated
        assert restored.dead_servers() == store.dead_servers()
        assert {vm.vm_id: sid for vm, sid in restored.placements} == \
            {vm.vm_id: sid for vm, sid in store.placements}

    def test_snapshot_stays_v1_without_events(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        store.commit(make_vm(0, 1, 3), 0)
        assert store.to_snapshot()["format_version"] == 1


class TestDaemonFailureOps:
    def test_fail_server_response_shape(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        daemon.handle(place_request(make_vm(0, 1, 8, cpu=4.0)))
        response = daemon.handle(fail_server_request(0, 3))
        assert response["ok"] is True
        assert response["op"] == "fail_server"
        assert (response["server_id"], response["time"]) == (0, 3)
        assert response["killed"] == 1
        assert response["replaced"] == 1
        assert response["lost"] == []
        [item] = response["replacements"]
        assert item["vm_id"] == 0
        assert item["server_id"] == 1
        assert item["head_id"] is not None
        assert item["remainder_id"] is not None
        assert response["latency_ms"] >= 0
        assert response["energy_delta"] == pytest.approx(
            response["victim_delta"] + item["energy_delta"])

    def test_fail_server_default_time_is_the_clock(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        daemon.handle(place_request(make_vm(0, 4, 8)))
        response = daemon.handle(fail_server_request(1))
        assert response["time"] == store.clock == 4

    def test_fail_server_protocol_validation(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        # The wire protocol gates the new ops behind v2.
        v1 = json.loads(daemon.handle_line(
            '{"op": "fail_server", "server_id": 0}'))
        assert v1["ok"] is False and "version 2" in v1["error"]
        assert not store.is_failed(0)
        bad = daemon.handle({"op": "fail_server", "v": 2,
                             "server_id": "zero"})
        assert bad["ok"] is False and "server_id" in bad["error"]
        bad_time = daemon.handle({"op": "fail_server", "v": 2,
                                  "server_id": 0, "time": 0})
        assert bad_time["ok"] is False and "time" in bad_time["error"]
        unknown = daemon.handle(fail_server_request(99))
        assert unknown["ok"] is False and "unknown server" in \
            unknown["error"]["message"]

    def test_dead_server_is_excluded_from_placement(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        daemon.handle(fail_server_request(0, 1))
        response = daemon.handle(place_request(make_vm(0, 2, 4)))
        assert response["decision"] == "placed"
        assert response["server_id"] == 1  # only the survivor
        daemon.handle(fail_server_request(1, 2))
        rejected = daemon.handle(place_request(make_vm(1, 3, 5)))
        assert rejected["decision"] == "rejected"

    def test_recover_server_readmits(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        daemon = AllocationDaemon(store)
        daemon.handle(fail_server_request(0, 1))
        assert daemon.handle(
            place_request(make_vm(0, 2, 4)))["decision"] == "rejected"
        response = daemon.handle(recover_server_request(0))
        assert response["ok"] is True
        assert response["servers_failed"] == 0
        assert daemon.handle(
            place_request(make_vm(1, 3, 5)))["decision"] == "placed"

    def test_stats_and_metrics_report_failures(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        daemon.handle(place_request(make_vm(0, 1, 8, cpu=4.0)))
        daemon.handle(fail_server_request(0, 3))
        stats = daemon.handle({"op": "stats"})
        assert stats["servers_failed"] == 1
        text = daemon.handle({"op": "metrics"})["text"]
        assert "repro_failures_total 1" in text
        assert "repro_replacements_total 1" in text
        assert "repro_vms_lost_total 0" in text
        assert "repro_servers_failed 1" in text

    def test_failure_is_one_atomic_journal_group(self, tmp_path):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3))
        daemon = AllocationDaemon(store, data_dir=tmp_path, fsync=False)
        daemon.handle(place_request(make_vm(0, 1, 8, cpu=4.0)))
        daemon.handle(place_request(make_vm(1, 2, 9, cpu=3.0)))
        response = daemon.handle(fail_server_request(0, 4))
        entries = list(read_journal(tmp_path / "journal.jsonl"))
        fails = [e for e in entries if e["op"] == "fail_server"]
        assert len(fails) == 1
        [group] = fails
        assert group["server_id"] == 0 and group["time"] == 4
        # Every re-placement of the episode travels inside the group —
        # no separate place entries for remainders.
        assert len(group["replacements"]) == len(
            response["replacements"]) >= 1
        assert [e["op"] for e in entries] == \
            ["init", "place", "place", "fail_server"]

    def test_kill_and_restore_reproduces_post_failure_state(self,
                                                            tmp_path):
        store = ClusterStateStore(Cluster.paper_all_types(10))
        first = AllocationDaemon(store, data_dir=tmp_path, fsync=False)
        vms = generate_vms(30, mean_interarrival=2.0, seed=9)
        for vm in online_order(vms):
            first.handle(place_request(vm))
        victim = next(sid for vm, sid in store.placements
                      if vm.end >= store.clock + 1)
        first.handle(fail_server_request(victim, store.clock + 1))
        first.handle(recover_server_request(victim))
        expected = store.to_snapshot()
        expected_metrics = (first.metrics.failures,
                            first.metrics.replacements,
                            first.metrics.vms_lost)
        del first  # hard kill: no shutdown snapshot

        second = AllocationDaemon.restore(tmp_path, fsync=False)
        assert second.store.to_snapshot() == expected
        assert (second.metrics.failures, second.metrics.replacements,
                second.metrics.vms_lost) == expected_metrics
        assert second.store.dead_servers() == {}
        # The restored daemon keeps serving.
        assert second.handle(place_request(make_vm(
            900, second.store.clock + 1,
            second.store.clock + 3)))["ok"] is True


class TestFaultInjector:
    class Recorder:
        def __init__(self):
            self.calls = []

        def fail_server(self, server_id, time=None):
            self.calls.append(("fail", server_id, time))
            return {"ok": True, "op": "fail_server"}

        def recover_server(self, server_id):
            self.calls.append(("recover", server_id))
            return {"ok": True, "op": "recover_server"}

        def dump_debug(self):
            self.calls.append(("dump_debug",))
            return {"ok": True, "op": "dump_debug", "records": []}

    def test_fires_in_position_order(self):
        target = self.Recorder()
        injector = FaultInjector([
            FaultEvent(after=5, kind="recover", server_id=1),
            FaultEvent(after=2, kind="fail", server_id=1, time=4),
        ], target)
        assert injector.fire_due(1) == []
        assert target.calls == []
        fired = injector.fire_due(3)
        assert len(fired) == 1
        assert target.calls == [("fail", 1, 4)]
        injector.fire_due(5)
        assert target.calls[-1] == ("recover", 1)
        assert injector.pending == ()

    def test_each_event_fires_exactly_once(self):
        target = self.Recorder()
        injector = FaultInjector(
            [FaultEvent(after=0, kind="fail", server_id=0)], target)
        injector.fire_due(0)
        injector.fire_due(0)
        injector.drain()
        assert target.calls == [("fail", 0, None)]

    def test_drain_fires_everything_left(self):
        target = self.Recorder()
        injector = FaultInjector([
            FaultEvent(after=3, kind="fail", server_id=0),
            FaultEvent(after=9, kind="recover", server_id=0),
        ], target)
        injector.drain()
        assert [c[0] for c in target.calls] == ["fail", "recover"]
        assert len(injector.responses) == 2

    def test_stall_sleeps_without_touching_the_daemon(self):
        target = self.Recorder()
        naps = []
        injector = FaultInjector(
            [FaultEvent(after=0, kind="stall", stall_ms=250.0)], target,
            sleep=naps.append)
        assert injector.fire_due(0) == []
        assert naps == [0.25]
        assert target.calls == []
        assert injector.responses == []

    def test_event_validation(self):
        with pytest.raises(ValidationError):
            FaultEvent(after=-1, kind="fail", server_id=0)
        with pytest.raises(ValidationError):
            FaultEvent(after=0, kind="meteor", server_id=0)
        with pytest.raises(ValidationError):
            FaultEvent(after=0, kind="fail")  # no server_id
        with pytest.raises(ValidationError):
            FaultEvent(after=0, kind="stall", stall_ms=-1.0)

    def test_dump_debug_event_pulls_the_flight_recorder(self):
        target = self.Recorder()
        injector = FaultInjector(
            [FaultEvent(after=0, kind="dump_debug")], target)
        fired = injector.fire_due(0)
        assert target.calls == [("dump_debug",)]
        assert fired[0]["op"] == "dump_debug"

    def test_drives_a_live_daemon(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        injector = FaultInjector([
            FaultEvent(after=1, kind="fail", server_id=0, time=2),
            FaultEvent(after=2, kind="recover", server_id=0),
            FaultEvent(after=3, kind="dump_debug"),
        ], DictApiTarget(daemon))
        daemon.handle(place_request(make_vm(0, 1, 6, cpu=4.0)))
        injector.fire_due(1)
        assert store.is_failed(0)
        injector.fire_due(2)
        assert not store.is_failed(0)
        injector.fire_due(3)
        assert all(resp["ok"] for _, resp in injector.responses)
        # The mid-chaos debug pull sees the whole episode so far.
        dump = injector.responses[-1][1]
        ops = [record["op"] for record in dump["records"]]
        assert {"place", "fail_server", "recover_server"} <= set(ops)


class TestEndToEnd:
    def test_stream_with_failures_kill_restore_matches_offline(
            self, tmp_path):
        """The acceptance scenario: >= 200 VMs streamed, a hard daemon
        kill+restore mid-stream, >= 3 live server failures while more
        than half the fleet's VMs are still running, another hard
        kill+restore of the *post-failure* state, and final fleet
        energy identical (rel 1e-12) to the offline
        ``inject_failures`` replay of the same schedule."""
        # Long-lived VMs keep dozens of servers busy past the last
        # arrival, so the failures cut genuinely running load.
        vms = generate_vms(220, mean_interarrival=1.0,
                           mean_duration=40.0, seed=11)
        ordered = online_order(vms)
        store = ClusterStateStore(Cluster.paper_all_types(110))
        first = AllocationDaemon(store, data_dir=tmp_path,
                                 snapshot_every=40, fsync=False)
        for vm in ordered[:120]:
            assert first.handle(place_request(vm))["decision"] == "placed"
        del first  # hard kill mid-stream

        second = AllocationDaemon.restore(tmp_path, fsync=False)
        for vm in ordered[120:]:
            assert second.handle(
                place_request(vm))["decision"] == "placed"

        # Build the failure schedule from what is actually running:
        # three distinct servers whose load outlives every failure
        # tick, processed in the offline (time, server_id) order.
        clock = second.store.clock
        by_server = {}
        for vm, sid in second.store.placements:
            by_server[sid] = max(by_server.get(sid, -1), vm.end)
        victims = [sid for sid, end in sorted(by_server.items())
                   if end >= clock + 3][:3]
        assert len(victims) == 3
        schedule = [ServerFailure(server_id=sid, time=clock + 1 + i)
                    for i, sid in enumerate(victims)]
        running = sum(1 for vm, _ in second.store.placements
                      if vm.end >= clock + 1)
        assert running >= 3  # the failures genuinely cut live VMs

        injector = FaultInjector(
            [FaultEvent(after=position, kind="fail",
                        server_id=failure.server_id, time=failure.time)
             for position, failure in enumerate(schedule)],
            DictApiTarget(second))
        fired = injector.drain()
        assert len(fired) == 3 and all(r["ok"] for r in fired)
        replaced_total = sum(r["replaced"] for r in fired)
        assert any(r["killed"] for r in fired)

        # One atomic journal group per failure, carrying every
        # re-placement of its episode.
        entries = list(read_journal(tmp_path / "journal.jsonl"))
        groups = [e for e in entries if e["op"] == "fail_server"]
        assert [(g["server_id"], g["time"]) for g in groups] == \
            [(f.server_id, f.time) for f in schedule]
        assert sum(len(g["replacements"]) for g in groups) == \
            sum(len(r["replacements"]) for r in fired)
        del second  # hard kill again, now with failure state on disk

        third = AllocationDaemon.restore(tmp_path, fsync=False)
        assert third.store.dead_servers() == \
            {f.server_id: f.time for f in schedule}
        assert third.metrics.failures == 3
        assert third.metrics.replacements == replaced_total
        third.store.run_to_completion()

        alloc, _ = simulate_online(vms, Cluster.paper_all_types(110),
                                   MinIncrementalEnergy())
        outcome = inject_failures(alloc, schedule)
        assert third.store.energy_total() == pytest.approx(
            allocation_cost(outcome.allocation).total, rel=1e-12)
        offline = {vm.vm_id: sid
                   for vm, sid in outcome.allocation.items()}
        online = {vm.vm_id: sid
                  for vm, sid in third.store.allocation().items()}
        assert online == offline  # head/remainder split ids included
        assert third.store.energy_accumulated == pytest.approx(
            third.store.energy_total(), rel=1e-12)
