"""Tests for the metrics package: reduction, utilisation, fits, aggregates."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.metrics.fitting import (
    adjusted_r_squared,
    exponential_fit,
    linear_fit,
    logarithmic_fit,
)
from repro.metrics.reduction import energy_reduction_ratio
from repro.metrics.summary import aggregate
from repro.metrics.utilization import server_profiles, utilization_stats
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=20.0,
                  p_idle=50.0, p_peak=100.0)


class TestReduction:
    def test_basic_ratio(self):
        assert energy_reduction_ratio(100.0, 80.0) == pytest.approx(0.2)

    def test_negative_when_worse(self):
        assert energy_reduction_ratio(100.0, 120.0) == pytest.approx(-0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValidationError):
            energy_reduction_ratio(0.0, 10.0)

    @given(st.floats(1.0, 1e6), st.floats(0.0, 1e6))
    def test_bounded_above_by_one(self, base, cost):
        assert energy_reduction_ratio(base, cost) <= 1.0


class TestUtilization:
    def test_server_profiles(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        vms = [make_vm(0, 1, 3, cpu=4.0, memory=2.0),
               make_vm(1, 2, 4, cpu=2.0, memory=6.0)]
        alloc = Allocation(cluster, {v: 0 for v in vms})
        cpu, mem = server_profiles(alloc, 0)
        assert list(cpu) == [4.0, 6.0, 6.0, 2.0]
        assert list(mem) == [2.0, 8.0, 8.0, 6.0]

    def test_profiles_empty_server(self):
        cluster = Cluster.homogeneous(SPEC, 2)
        alloc = Allocation(cluster, {make_vm(0, 1, 2): 0})
        cpu, mem = server_profiles(alloc, 1)
        assert cpu.size == 0 and mem.size == 0

    def test_nonzero_averaging(self):
        # cpu profile: [4, 0(gap not counted: profile is within span)] ...
        cluster = Cluster.homogeneous(SPEC, 1)
        vms = [make_vm(0, 1, 1, cpu=4.0, memory=4.0),
               make_vm(1, 3, 3, cpu=8.0, memory=4.0)]
        alloc = Allocation(cluster, {v: 0 for v in vms})
        stats = utilization_stats(alloc)
        # nonzero cpu samples: 4/10 and 8/10 -> mean 0.6; the idle unit at
        # t=2 is excluded per the paper's definition.
        assert stats.cpu == pytest.approx(0.6)
        assert stats.memory == pytest.approx(0.2)
        assert stats.cpu_samples == 2

    def test_multi_server_pooling(self):
        cluster = Cluster.homogeneous(SPEC, 2)
        vms = [make_vm(0, 1, 1, cpu=10.0, memory=20.0),
               make_vm(1, 1, 1, cpu=5.0, memory=10.0)]
        alloc = Allocation(cluster, {vms[0]: 0, vms[1]: 1})
        stats = utilization_stats(alloc)
        assert stats.cpu == pytest.approx(0.75)
        assert stats.memory == pytest.approx(0.75)

    def test_empty_allocation(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        stats = utilization_stats(Allocation(cluster, {}))
        assert stats.cpu == 0.0
        assert stats.memory == 0.0
        assert stats.cpu_samples == 0

    def test_imbalance(self):
        cluster = Cluster.homogeneous(SPEC, 1)
        alloc = Allocation(cluster,
                           {make_vm(0, 1, 1, cpu=8.0, memory=4.0): 0})
        stats = utilization_stats(alloc)
        assert stats.imbalance == pytest.approx(0.8 - 0.2)


class TestFits:
    def test_linear_exact(self):
        xs = [1, 2, 3, 4, 5]
        ys = [2 + 3 * x for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.params == pytest.approx((2.0, 3.0))
        assert fit.adj_r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(32.0)

    def test_logarithmic_exact(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [5 + 2 * math.log(x) for x in xs]
        fit = logarithmic_fit(xs, ys)
        assert fit.params == pytest.approx((5.0, 2.0))
        assert fit.adj_r_squared == pytest.approx(1.0)

    def test_logarithmic_rejects_nonpositive_x(self):
        with pytest.raises(ValidationError):
            logarithmic_fit([0.0, 1.0], [1.0, 2.0])

    def test_exponential_recovers_params(self):
        xs = np.linspace(0, 5, 12)
        ys = 4.0 * np.exp(-0.8 * xs) + 1.0
        fit = exponential_fit(list(xs), list(ys))
        assert fit.adj_r_squared > 0.999
        assert fit.predict(0.0) == pytest.approx(5.0, rel=1e-3)

    def test_exponential_needs_four_points(self):
        with pytest.raises(ValidationError):
            exponential_fit([1, 2, 3], [1, 2, 3])

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            linear_fit([1, 2], [1, 2, 3])

    def test_too_few_points(self):
        with pytest.raises(ValidationError):
            linear_fit([1], [1])

    def test_adjusted_r_squared_penalises(self):
        y = [1.0, 2.0, 3.0, 4.0, 2.5]
        predicted = [1.1, 1.9, 3.2, 3.8, 2.6]
        r2_1, adj_1 = adjusted_r_squared(y, predicted, 1)
        r2_3, adj_3 = adjusted_r_squared(y, predicted, 3)
        assert r2_1 == r2_3
        assert adj_3 < adj_1 <= r2_1

    def test_noisy_linear_reasonable_r2(self):
        rng = np.random.default_rng(0)
        xs = np.linspace(0, 10, 30)
        ys = 1.0 + 2.0 * xs + rng.normal(0, 0.5, 30)
        fit = linear_fit(list(xs), list(ys))
        assert fit.adj_r_squared > 0.95

    def test_str(self):
        fit = linear_fit([1, 2, 3], [1, 2, 3])
        assert "linear" in str(fit)
        assert "adjR2" in str(fit)


class TestAggregate:
    def test_single_value(self):
        agg = aggregate([5.0])
        assert agg.mean == 5.0
        assert agg.std == 0.0
        assert agg.ci_low == agg.ci_high == 5.0

    def test_mean_std(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.std == pytest.approx(1.0)
        assert agg.n == 3

    def test_ci_contains_mean(self):
        agg = aggregate([1.0, 2.0, 3.0, 4.0])
        assert agg.ci_low < agg.mean < agg.ci_high

    def test_wider_confidence_widens_interval(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert aggregate(data, 0.99).ci_halfwidth > \
            aggregate(data, 0.9).ci_halfwidth

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            aggregate([])

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 2.0])
    def test_bad_confidence_rejected(self, confidence):
        with pytest.raises(ValidationError):
            aggregate([1.0], confidence)

    def test_str(self):
        assert "n=2" in str(aggregate([1.0, 2.0]))
