"""Seed-robustness guards for the headline results.

The benchmark suite uses seeds 0-4; these tests re-check the qualitative
headline claims on a *disjoint* seed set, guarding the reproduction
against accidental seed cherry-picking.
"""

from __future__ import annotations


from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import compare_averaged
from repro.metrics.significance import paired_t_test

FRESH_SEEDS = (101, 202, 303, 404)


class TestHeadlinesOnFreshSeeds:
    def test_reduction_positive_at_light_load(self):
        config = ScenarioConfig(n_vms=150, mean_interarrival=8.0,
                                seeds=FRESH_SEEDS)
        result = compare_averaged(config)
        assert result.reduction.mean > 0.05

    def test_reduction_grows_with_interarrival(self):
        heavy = compare_averaged(ScenarioConfig(
            n_vms=150, mean_interarrival=0.5, seeds=FRESH_SEEDS))
        light = compare_averaged(ScenarioConfig(
            n_vms=150, mean_interarrival=8.0, seeds=FRESH_SEEDS))
        assert light.reduction.mean > heavy.reduction.mean

    def test_win_is_statistically_significant(self):
        # more seeds here: n=4 leaves the t-test under-powered
        config = ScenarioConfig(n_vms=150, mean_interarrival=6.0,
                                seeds=FRESH_SEEDS + (505, 606, 707, 808))
        result = compare_averaged(config)
        ours = [r.algorithm.total_energy for r in result.runs]
        ffps = [r.baseline.total_energy for r in result.runs]
        test = paired_t_test(ours, ffps)
        assert test.mean_diff < 0
        assert test.p_value < 0.05

    def test_utilisation_gap_holds(self):
        config = ScenarioConfig(n_vms=150, mean_interarrival=4.0,
                                seeds=FRESH_SEEDS)
        result = compare_averaged(config)
        assert result.algorithm_cpu_util.mean > \
            result.baseline_cpu_util.mean + 0.05

    def test_transition_time_ordering_holds(self):
        short = compare_averaged(ScenarioConfig(
            n_vms=150, mean_interarrival=4.0, transition_time=0.5,
            seeds=FRESH_SEEDS))
        long_ = compare_averaged(ScenarioConfig(
            n_vms=150, mean_interarrival=4.0, transition_time=3.0,
            seeds=FRESH_SEEDS))
        assert short.reduction.mean > long_.reduction.mean - 0.02

    def test_duration_ordering_holds(self):
        short = compare_averaged(ScenarioConfig(
            n_vms=150, mean_interarrival=4.0, mean_duration=2.0,
            seeds=FRESH_SEEDS))
        long_ = compare_averaged(ScenarioConfig(
            n_vms=150, mean_interarrival=4.0, mean_duration=10.0,
            seeds=FRESH_SEEDS))
        assert short.reduction.mean > long_.reduction.mean
