"""Property-based tests for service snapshots and journal replay.

Two durability invariants backstop the daemon: (1) a snapshot is a
lossless serialization — rebuilding a :class:`ClusterStateStore` from
``to_snapshot()`` yields a store whose own snapshot, clock, energy and
machine power states are identical; (2) replaying the request journal
after a hard kill reconstructs the exact pre-crash state, whatever the
workload looked like.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.model.cluster import Cluster
from repro.service import AllocationDaemon, ClusterStateStore, place_request
from repro.workload.generator import PoissonWorkload

SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def workload_strategy():
    return st.tuples(
        st.integers(0, 30),                  # vm count (0 = empty store)
        st.floats(0.5, 6.0),                 # mean inter-arrival
        st.floats(1.0, 10.0),                # mean duration
        st.integers(0, 10_000),              # seed
        st.integers(0, 8),                   # extra clock advance at end
    )


def build_store(params) -> ClusterStateStore:
    count, ia, dur, seed, extra = params
    wl = PoissonWorkload(mean_interarrival=ia, mean_duration=dur)
    vms = wl.generate(count, rng=seed)
    store = ClusterStateStore(Cluster.paper_all_types(max(5, count)))
    daemon = AllocationDaemon(store)
    for vm in sorted(vms, key=lambda v: (v.start, v.end, v.vm_id)):
        response = daemon.handle(place_request(vm))
        # A full fleet may reject; the protocol request must still be ok.
        assert response["ok"]
    if extra:
        store.advance_to(store.clock + extra)
    return store


@SLOW
@given(workload_strategy())
def test_snapshot_round_trip_is_identity(params):
    store = build_store(params)
    document = store.to_snapshot()
    restored = ClusterStateStore.from_snapshot(document)
    assert restored.to_snapshot() == document
    assert restored.clock == store.clock
    assert restored.energy_accumulated == store.energy_accumulated
    assert restored.energy_total() == store.energy_total()
    assert restored.telemetry().power.tolist() == \
        store.telemetry().power.tolist()
    for server_id, machine in store.machines.items():
        twin = restored.machines[server_id]
        assert twin.state is machine.state
        assert twin.resident_vms == machine.resident_vms
        assert twin.transitions == machine.transitions
        assert twin.transition_energy == machine.transition_energy


@SLOW
@given(workload_strategy(), st.integers(0, 200))
def test_journal_replay_is_deterministic(tmp_path_factory, params, cut):
    count, ia, dur, seed, extra = params
    wl = PoissonWorkload(mean_interarrival=ia, mean_duration=dur)
    vms = sorted(wl.generate(count, rng=seed),
                 key=lambda v: (v.start, v.end, v.vm_id))
    cut = min(cut, len(vms))
    data_dir = tmp_path_factory.mktemp("journal")

    store = ClusterStateStore(Cluster.paper_all_types(max(5, count)))
    daemon = AllocationDaemon(store, data_dir=data_dir,
                              snapshot_every=7, fsync=False)
    for vm in vms[:cut]:
        assert daemon.handle(place_request(vm))["ok"]
    if extra:
        daemon.handle({"op": "tick", "now": store.clock + extra})
    expected = store.to_snapshot()
    expected_counters = dict(daemon.metrics.requests)
    del daemon  # hard kill: no shutdown snapshot

    restored = AllocationDaemon.restore(data_dir, fsync=False)
    assert restored.store.to_snapshot() == expected
    assert dict(restored.metrics.requests) == expected_counters
    # the survivor keeps serving: remaining VMs place identically to a
    # daemon that never crashed
    witness_store = ClusterStateStore(
        Cluster.paper_all_types(max(5, count)))
    witness = AllocationDaemon(witness_store)
    for vm in vms[:cut]:
        witness.handle(place_request(vm))
    if extra:
        witness.handle({"op": "tick", "now": witness_store.clock + extra})
    for vm in vms[cut:]:
        a = restored.handle(place_request(vm))
        b = witness.handle(place_request(vm))
        assert a["decision"] == b["decision"]
        assert a.get("server_id") == b.get("server_id")
    assert restored.store.to_snapshot() == witness_store.to_snapshot()
