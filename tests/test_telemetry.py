"""Tests for the telemetry collector and series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.simulation.telemetry import Telemetry, TelemetryCollector


def sample_telemetry() -> Telemetry:
    collector = TelemetryCollector(4)
    collector.record(1, 10.0, 1, 2)
    collector.record(2, 20.0, 2, 3)
    collector.record(3, 0.0, 0, 0)
    collector.record(4, 30.0, 1, 1)
    return collector.freeze()


class TestCollector:
    def test_freeze_copies(self):
        collector = TelemetryCollector(2)
        collector.record(1, 5.0, 1, 1)
        frozen = collector.freeze()
        collector.record(2, 99.0, 1, 1)
        assert frozen.power[1] == 0.0  # unaffected by later writes

    def test_rejects_negative_horizon(self):
        with pytest.raises(ValidationError):
            TelemetryCollector(-1)

    def test_zero_horizon(self):
        t = TelemetryCollector(0).freeze()
        assert t.horizon == 0
        assert t.total_energy == 0.0
        assert t.peak_power == 0.0


class TestTelemetry:
    def test_total_energy_is_sum(self):
        assert sample_telemetry().total_energy == 60.0

    def test_peak_power(self):
        assert sample_telemetry().peak_power == 30.0

    def test_mean_active_servers(self):
        assert sample_telemetry().mean_active_servers == 1.0

    def test_window(self):
        window = sample_telemetry().window(2, 3)
        assert list(window.power) == [20.0, 0.0]
        assert window.horizon == 2

    def test_window_full_range(self):
        t = sample_telemetry()
        assert np.array_equal(t.window(1, 4).power, t.power)

    @pytest.mark.parametrize("bounds", [(0, 2), (1, 5), (3, 2)])
    def test_window_bounds_checked(self, bounds):
        with pytest.raises(ValidationError):
            sample_telemetry().window(*bounds)
