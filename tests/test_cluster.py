"""Tests for cluster construction and accessors."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.model.catalog import SERVER_TYPES, SMALL_SERVER_TYPES
from repro.model.cluster import Cluster
from repro.model.server import Server, ServerSpec


def spec(name="s", cpu=10.0):
    return ServerSpec(name, cpu_capacity=cpu, memory_capacity=10.0,
                      p_idle=50.0, p_peak=100.0)


class TestConstruction:
    def test_from_specs_assigns_sequential_ids(self):
        cluster = Cluster.from_specs([spec("a"), spec("b")])
        assert [s.server_id for s in cluster] == [0, 1]
        assert cluster[0].spec.name == "a"

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Cluster([])

    def test_rejects_non_sequential_ids(self):
        with pytest.raises(ValidationError):
            Cluster([Server(0, spec()), Server(2, spec())])

    def test_homogeneous(self):
        cluster = Cluster.homogeneous(spec("x"), 5)
        assert len(cluster) == 5
        assert cluster.spec_counts() == {"x": 5}

    def test_homogeneous_rejects_zero_count(self):
        with pytest.raises(ValidationError):
            Cluster.homogeneous(spec(), 0)

    def test_mixed_cycles_round_robin(self):
        cluster = Cluster.mixed([spec("a"), spec("b")], 5)
        names = [s.spec.name for s in cluster]
        assert names == ["a", "b", "a", "b", "a"]

    def test_mixed_rejects_empty_specs(self):
        with pytest.raises(ValidationError):
            Cluster.mixed([], 3)

    def test_mixed_transition_override(self):
        cluster = Cluster.mixed([spec("a")], 2, transition_time=2.5)
        assert all(s.spec.transition_time == 2.5 for s in cluster)

    def test_paper_all_types(self):
        cluster = Cluster.paper_all_types(10)
        assert len(cluster) == 10
        assert set(cluster.spec_counts()) == {s.name for s in SERVER_TYPES}

    def test_paper_small_types(self):
        cluster = Cluster.paper_small_types(6)
        assert set(cluster.spec_counts()) == \
            {s.name for s in SMALL_SERVER_TYPES}
        assert all(count == 2 for count in cluster.spec_counts().values())


class TestAccessors:
    def test_totals(self):
        cluster = Cluster.from_specs([spec(cpu=10.0), spec(cpu=20.0)])
        assert cluster.total_cpu_capacity == 30.0
        assert cluster.total_memory_capacity == 20.0

    def test_server_lookup(self):
        cluster = Cluster.homogeneous(spec(), 3)
        assert cluster.server(2).server_id == 2

    def test_server_lookup_out_of_range(self):
        cluster = Cluster.homogeneous(spec(), 3)
        with pytest.raises(ValidationError):
            cluster.server(3)

    def test_iteration_order(self):
        cluster = Cluster.homogeneous(spec(), 4)
        assert [s.server_id for s in cluster] == [0, 1, 2, 3]

    def test_repr_mentions_size(self):
        assert "n=2" in repr(Cluster.homogeneous(spec(), 2))
