"""End-to-end integration tests across the whole stack.

These check the paper's qualitative claims at reduced scale and the
cross-model consistency guarantees (ILP == analytic == DES).
"""

from __future__ import annotations

import pytest

from repro.allocators import FirstFitPowerSaving, MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import compare_averaged
from repro.ilp import solve_ilp, solve_relaxation
from repro.metrics.utilization import utilization_stats
from repro.model.catalog import SMALL_SERVER_TYPES, STANDARD_VM_TYPES
from repro.model.cluster import Cluster
from repro.simulation import SimulationEngine
from repro.workload.generator import generate_vms


class TestPaperClaims:
    """Reduced-scale versions of the headline results."""

    def test_heuristic_saves_energy_on_average(self):
        config = ScenarioConfig(n_vms=100, mean_interarrival=6.0,
                                seeds=(0, 1, 2, 3))
        result = compare_averaged(config)
        assert result.reduction.mean > 0.05

    def test_reduction_grows_with_interarrival(self):
        seeds = (0, 1, 2, 3)
        light = compare_averaged(ScenarioConfig(
            n_vms=100, mean_interarrival=8.0, seeds=seeds))
        heavy = compare_averaged(ScenarioConfig(
            n_vms=100, mean_interarrival=0.5, seeds=seeds))
        assert light.reduction.mean > heavy.reduction.mean

    def test_heuristic_improves_utilization(self):
        config = ScenarioConfig(n_vms=100, mean_interarrival=4.0,
                                seeds=(0, 1, 2))
        result = compare_averaged(config)
        assert result.algorithm_cpu_util.mean > \
            result.baseline_cpu_util.mean

    def test_heuristic_raises_both_utilizations(self):
        # Paper Fig. 3: ours improves CPU *and* memory utilisation. (The
        # paper's stronger "more even" claim does not reproduce under the
        # reconstructed catalog; see EXPERIMENTS.md, Fig. 3 deviations.)
        config = ScenarioConfig(n_vms=100, mean_interarrival=2.0,
                                seeds=(0, 1, 2))
        result = compare_averaged(config)
        assert result.algorithm_cpu_util.mean > \
            result.baseline_cpu_util.mean
        assert result.algorithm_mem_util.mean > \
            result.baseline_mem_util.mean

    def test_standard_on_small_servers_beats_ffps(self):
        config = ScenarioConfig(n_vms=100, mean_interarrival=6.0,
                                vm_types=STANDARD_VM_TYPES,
                                server_types=SMALL_SERVER_TYPES,
                                seeds=(0, 1, 2))
        result = compare_averaged(config)
        assert result.reduction.mean > 0.05

    def test_scalability_reduction_stable_in_vm_count(self):
        # Fig. 2's scalability claim: similar reduction at 60 and 180 VMs.
        seeds = (0, 1, 2)
        small = compare_averaged(ScenarioConfig(
            n_vms=60, mean_interarrival=6.0, seeds=seeds))
        large = compare_averaged(ScenarioConfig(
            n_vms=180, mean_interarrival=6.0, seeds=seeds))
        assert abs(small.reduction.mean - large.reduction.mean) < 0.15


class TestCrossModelConsistency:
    """The three evaluations of a plan's energy must agree."""

    def test_analytic_equals_des_equals_ilp(self):
        vms = generate_vms(8, mean_interarrival=2.0, seed=3)
        cluster = Cluster.paper_all_types(5)
        ilp = solve_ilp(vms, cluster)
        analytic = allocation_cost(ilp.allocation).total
        des = SimulationEngine(cluster).replay(ilp.allocation).total_energy
        assert analytic == pytest.approx(ilp.objective, rel=1e-9)
        assert des == pytest.approx(analytic, rel=1e-12)

    def test_heuristic_between_optimal_and_lp_bound(self):
        vms = generate_vms(8, mean_interarrival=2.0, seed=6)
        cluster = Cluster.paper_all_types(5)
        lp = solve_relaxation(vms, cluster).lower_bound
        opt = solve_ilp(vms, cluster).objective
        heuristic = allocation_cost(
            MinIncrementalEnergy().allocate(vms, cluster)).total
        assert lp <= opt + 1e-6
        assert opt <= heuristic + 1e-6

    def test_full_pipeline_roundtrip(self, tmp_path):
        # generate -> persist -> reload -> allocate -> account -> simulate
        from repro.workload.trace import Trace

        vms = generate_vms(40, mean_interarrival=3.0, seed=12)
        path = tmp_path / "wl.csv"
        Trace.from_vms(vms).save_csv(path)
        reloaded = list(Trace.load_csv(path))
        cluster = Cluster.paper_all_types(20)
        alloc = MinIncrementalEnergy().allocate(reloaded, cluster)
        alloc.validate(vms=reloaded)
        report_total = allocation_cost(alloc).total
        sim = SimulationEngine(cluster).replay(alloc)
        assert sim.total_energy == pytest.approx(report_total, rel=1e-12)
        stats = utilization_stats(alloc)
        assert 0 < stats.cpu <= 1

    def test_ffps_seeded_reproducibility_across_stack(self):
        vms = generate_vms(50, mean_interarrival=2.0, seed=1)
        cluster = Cluster.paper_all_types(25)
        totals = {
            allocation_cost(FirstFitPowerSaving(seed=9).allocate(
                vms, cluster)).total
            for _ in range(3)
        }
        assert len(totals) == 1
