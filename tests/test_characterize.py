"""Tests for workload characterisation and synthetic twins."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.model.catalog import STANDARD_VM_TYPES
from repro.workload.characterize import characterize, synthetic_twin
from repro.workload.generator import generate_vms
from repro.workload.patterns import HeavyTailWorkload

from conftest import make_vm


class TestCharacterize:
    def test_needs_two_vms(self):
        with pytest.raises(ValidationError):
            characterize([make_vm(0, 1, 2)])

    def test_recovers_generator_parameters(self):
        vms = generate_vms(4000, mean_interarrival=3.0, mean_duration=6.0,
                           seed=0)
        stats = characterize(vms)
        assert stats.mean_interarrival == pytest.approx(3.0, rel=0.1)
        assert stats.mean_duration == pytest.approx(6.0, rel=0.1)
        assert stats.looks_exponential
        assert stats.n_vms == 4000

    def test_type_mix_sums_to_one(self):
        vms = generate_vms(500, mean_interarrival=1.0, seed=1)
        stats = characterize(vms)
        assert sum(stats.type_mix.values()) == pytest.approx(1.0)
        assert set(stats.type_mix) == {s.name for s in stats.specs}

    def test_detects_heavy_tail(self):
        wl = HeavyTailWorkload(mean_interarrival=1.0, mean_duration=8.0,
                               shape=1.2)
        stats = characterize(wl.generate(5000, rng=2))
        assert not stats.looks_exponential
        assert stats.duration_cv > 1.6

    def test_deterministic_durations_low_cv(self):
        vms = [make_vm(i, 1 + 2 * i, 1 + 2 * i + 4) for i in range(50)]
        stats = characterize(vms)
        assert stats.duration_cv == pytest.approx(0.0)
        assert not stats.looks_exponential

    def test_format(self):
        vms = generate_vms(100, mean_interarrival=2.0, seed=3)
        out = characterize(vms).format()
        assert "mean inter-arrival" in out
        assert "%" in out


class TestSyntheticTwin:
    def test_twin_matches_statistics(self):
        original = generate_vms(3000, mean_interarrival=2.0,
                                mean_duration=5.0,
                                vm_types=STANDARD_VM_TYPES, seed=4)
        stats = characterize(original)
        twin = synthetic_twin(stats, seed=5)
        twin_stats = characterize(twin)
        assert twin_stats.mean_interarrival == pytest.approx(
            stats.mean_interarrival, rel=0.15)
        assert twin_stats.mean_duration == pytest.approx(
            stats.mean_duration, rel=0.15)

    def test_twin_respects_type_mix(self):
        # A biased trace: 90 % small, 10 % large.
        small = [make_vm(i, i + 1, i + 3, cpu=1.0, name="small")
                 for i in range(900)]
        large = [make_vm(900 + i, i + 1, i + 3, cpu=4.0, name="large")
                 for i in range(100)]
        stats = characterize(small + large)
        twin = synthetic_twin(stats, count=2000, seed=6)
        share = sum(1 for vm in twin if vm.spec.name == "small") / len(twin)
        assert share == pytest.approx(0.9, abs=0.05)

    def test_custom_count(self):
        vms = generate_vms(100, mean_interarrival=2.0, seed=7)
        twin = synthetic_twin(characterize(vms), count=250, seed=8)
        assert len(twin) == 250

    def test_rejects_negative_count(self):
        vms = generate_vms(10, mean_interarrival=2.0, seed=9)
        with pytest.raises(ValidationError):
            synthetic_twin(characterize(vms), count=-1)

    def test_reproducible(self):
        vms = generate_vms(50, mean_interarrival=2.0, seed=10)
        stats = characterize(vms)
        a = synthetic_twin(stats, seed=11)
        b = synthetic_twin(stats, seed=11)
        assert [(v.start, v.end, v.spec.name) for v in a] == \
            [(v.start, v.end, v.spec.name) for v in b]
