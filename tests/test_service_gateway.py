"""The HTTP/REST gateway: endpoint mapping, status codes, trace
propagation, overload shedding, and crash recovery mid-stream."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.model.cluster import Cluster
from repro.service import (
    AllocationDaemon,
    ClusterStateStore,
    place_request,
    start_gateway,
)
from repro.workload.generator import generate_vms


def fresh_daemon(n_servers: int = 20, **kwargs) -> AllocationDaemon:
    store = ClusterStateStore(Cluster.paper_all_types(n_servers))
    return AllocationDaemon(store, algorithm="min-energy", **kwargs)


@pytest.fixture()
def served():
    daemon = fresh_daemon()
    gateway = start_gateway(daemon)
    try:
        yield daemon, f"http://127.0.0.1:{gateway.server_address[1]}"
    finally:
        gateway.shutdown()
        gateway.server_close()


def post(base: str, path: str, body: dict | None = None,
         headers: dict | None = None):
    req = urllib.request.Request(
        base + path, data=json.dumps(body or {}).encode(),
        headers=headers or {}, method="POST")
    return urllib.request.urlopen(req, timeout=10)


def get(base: str, path: str):
    return urllib.request.urlopen(base + path, timeout=10)


class TestEndpoints:
    def test_place_and_stats(self, served):
        daemon, base = served
        vm = generate_vms(1, mean_interarrival=2.0, seed=1)[0]
        with post(base, "/v1/place",
                  {"vm": place_request(vm)["vm"]}) as resp:
            doc = json.load(resp)
            assert resp.status == 200
            assert doc["ok"] and doc["decision"] == "placed"
        with get(base, "/v1/stats") as resp:
            assert json.load(resp)["placed"] == 1

    def test_place_batch_consolidate_tick(self, served):
        daemon, base = served
        vms = generate_vms(10, mean_interarrival=1.0, seed=2)
        records = [place_request(vm)["vm"] for vm in vms]
        with post(base, "/v1/place_batch", {"vms": records}) as resp:
            doc = json.load(resp)
            assert doc["ok"] and doc["count"] == 10
        with post(base, "/v1/tick",
                  {"now": daemon.store.clock + 5}) as resp:
            assert json.load(resp)["ok"]
        with post(base, "/v1/consolidate") as resp:
            doc = json.load(resp)
            assert doc["ok"] and "moves" in doc

    def test_fail_and_recover_server(self, served):
        daemon, base = served
        with post(base, "/v1/fail_server", {"server_id": 0}) as resp:
            assert json.load(resp)["ok"]
        assert daemon.store.is_failed(0)
        with post(base, "/v1/recover_server", {"server_id": 0}) as resp:
            assert json.load(resp)["ok"]
        assert not daemon.store.is_failed(0)

    def test_telemetry_last_and_metrics_page(self, served):
        daemon, base = served
        vm = generate_vms(1, mean_interarrival=2.0, seed=3)[0]
        post(base, "/v1/place", {"vm": place_request(vm)["vm"]}).close()
        with get(base, "/v1/telemetry?last=1") as resp:
            doc = json.load(resp)
            assert doc["ok"] and "slo" in doc
        with get(base, "/v1/metrics") as resp:
            page = resp.read().decode()
            assert resp.headers["Content-Type"].startswith("text/plain")
            assert "repro_requests_total" in page
        with get(base, "/healthz") as resp:
            assert resp.read() == b"ok\n"
        with get(base, "/varz") as resp:
            assert "build" in json.load(resp)


class TestErrorMapping:
    def test_unknown_endpoint_is_404(self, served):
        daemon, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(base, "/v1/nope")
        assert excinfo.value.code == 404
        assert json.load(excinfo.value)["error"]["code"] == "not_found"

    def test_method_mismatch_is_405(self, served):
        daemon, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(base, "/v1/place")
        assert excinfo.value.code == 405
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(base, "/v1/telemetry")
        assert excinfo.value.code == 405
        assert json.load(excinfo.value)["error"]["code"] == \
            "method_not_allowed"

    def test_bad_json_body_is_400(self, served):
        daemon, base = served
        req = urllib.request.Request(base + "/v1/place", data=b"{nope",
                                     method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
        assert json.load(excinfo.value)["error"]["code"] == "bad_request"

    def test_validation_failure_is_400_envelope(self, served):
        daemon, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(base, "/v1/tick", {"now": -1})
        assert excinfo.value.code == 400
        doc = json.load(excinfo.value)
        assert doc["error"]["code"] == "bad_request"
        assert doc["error"]["retryable"] is False

    def test_overload_is_429_with_retry_after(self):
        daemon = fresh_daemon(max_inflight=1)
        gateway = start_gateway(daemon)
        base = f"http://127.0.0.1:{gateway.server_address[1]}"
        vm = generate_vms(1, mean_interarrival=2.0, seed=4)[0]
        assert daemon._ingest.acquire(blocking=False)  # fill the window
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(base, "/v1/place", {"vm": place_request(vm)["vm"]})
            assert excinfo.value.code == 429
            assert float(excinfo.value.headers["Retry-After"]) > 0
            doc = json.load(excinfo.value)
            assert doc["error"]["code"] == "overloaded"
            assert doc["error"]["retryable"] is True
            # read-only ops are never shed
            with get(base, "/v1/stats") as resp:
                assert resp.status == 200
        finally:
            daemon._ingest.release()
            gateway.shutdown()
            gateway.server_close()


class TestTracePropagation:
    def test_headers_become_trace_context(self, tmp_path):
        daemon = fresh_daemon(data_dir=tmp_path, fsync=False)
        gateway = start_gateway(daemon)
        base = f"http://127.0.0.1:{gateway.server_address[1]}"
        vm = generate_vms(1, mean_interarrival=2.0, seed=5)[0]
        try:
            with post(base, "/v1/place",
                      {"vm": place_request(vm)["vm"]},
                      {"X-Trace-Id": "ab" * 16,
                       "X-Request-Id": "cd" * 8}) as resp:
                doc = json.load(resp)
                assert resp.headers["X-Trace-Id"] == "ab" * 16
                assert resp.headers["X-Request-Id"] == "cd" * 8
                assert doc["trace_id"] == "ab" * 16
        finally:
            gateway.shutdown()
            gateway.server_close()
        # journal line 0 is the init record; the place entry follows
        entry = json.loads(
            (tmp_path / "journal.jsonl").read_text().splitlines()[1])
        assert entry["trace_id"] == "ab" * 16
        assert entry["request_id"] == "cd" * 8

    def test_read_op_echoes_supplied_trace_header(self, served):
        daemon, base = served
        req = urllib.request.Request(base + "/v1/stats",
                                     headers={"X-Trace-Id": "ef" * 16})
        with urllib.request.urlopen(req, timeout=10) as resp:
            doc = json.load(resp)
            assert resp.headers["X-Trace-Id"] == "ef" * 16
            assert doc["trace_id"] == "ef" * 16


class TestCrashRecoveryUnderGateway:
    def test_kill_and_restore_mid_stream(self, tmp_path):
        """Crash the daemon mid-stream; the restored daemon continues
        behind a new gateway and lands bit-identical to an
        uninterrupted run."""
        vms = generate_vms(30, mean_interarrival=1.5, seed=6)
        records = [place_request(vm)["vm"] for vm in vms]

        daemon = fresh_daemon(15, data_dir=tmp_path / "crashy",
                              fsync=False)
        gateway = start_gateway(daemon)
        base = f"http://127.0.0.1:{gateway.server_address[1]}"
        first = []
        try:
            for record in records[:17]:
                with post(base, "/v1/place", {"vm": record}) as resp:
                    first.append(json.load(resp))
        finally:
            # Simulated crash: no shutdown op, the gateway just dies.
            gateway.shutdown()
            gateway.server_close()

        restored = AllocationDaemon.restore(tmp_path / "crashy")
        gateway = start_gateway(restored)
        base = f"http://127.0.0.1:{gateway.server_address[1]}"
        second = []
        try:
            for record in records[17:]:
                with post(base, "/v1/place", {"vm": record}) as resp:
                    second.append(json.load(resp))
        finally:
            gateway.shutdown()
            gateway.server_close()

        straight = fresh_daemon(15)
        expected = [straight.handle(place_request(vm)) for vm in vms]
        got = [(r["vm_id"], r.get("decision"), r.get("server_id"))
               for r in first + second]
        want = [(r["vm_id"], r.get("decision"), r.get("server_id"))
                for r in expected]
        assert got == want
        assert dict(restored.store.placements) == \
            dict(straight.store.placements)
        assert restored.store.energy_accumulated == \
            straight.store.energy_accumulated
