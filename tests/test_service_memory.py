"""Long-horizon memory regression for the online service.

Before the skyline engine, every ServerState carried dense numpy arrays
covering ``[0, horizon)`` — a daemon running for a simulated month held
millions of float slots per server, and the ``vms`` lists grew without
bound. Now finished VMs are retired as their last piece ends and the
occupancy index is compacted, so planning-state memory tracks *live*
load, not elapsed time.
"""

from __future__ import annotations

import pytest

from repro.model.cluster import Cluster
from repro.model.intervals import TimeInterval
from repro.model.vm import VM, VMSpec
from repro.service.state import ClusterStateStore

SPEC = VMSpec("t", cpu=1.0, memory=1.0)


def _vm(vm_id: int, start: int, end: int) -> VM:
    return VM(vm_id=vm_id, spec=SPEC, interval=TimeInterval(start, end))


def _stream(store: ClusterStateStore, count: int, spacing: int,
            length: int = 5) -> None:
    """Commit ``count`` sequential VMs marching to a far horizon."""
    n = len(store.cluster)
    for i in range(count):
        start = 1 + i * spacing
        store.advance_to(start)
        store.commit(_vm(i, start, start + length - 1), i % n)


class TestDaemonMemory:
    def test_occupancy_does_not_grow_with_horizon(self):
        store = ClusterStateStore(Cluster.paper_all_types(4))
        _stream(store, count=400, spacing=50)  # horizon ~ 20,000 ticks
        store.run_to_completion()
        for state in store.states:
            assert state.occupancy_points() < 20
            assert len(state.vms) == 0  # everything retired

    def test_live_vms_bounded_by_concurrency_not_total(self):
        store = ClusterStateStore(Cluster.paper_all_types(4))
        peak_live = 0
        n = len(store.cluster)
        for i in range(300):
            start = 1 + i * 10
            store.advance_to(start)
            store.commit(_vm(i, start, start + 25), i % n)
            peak_live = max(peak_live,
                            sum(len(st.vms) for st in store.states))
        # ~3 VMs overlap at any instant; 300 were committed in total.
        assert peak_live < 20

    def test_retirement_does_not_change_energy_accounting(self):
        store = ClusterStateStore(Cluster.paper_all_types(4))
        _stream(store, count=60, spacing=12)
        store.run_to_completion()
        accumulated = sum(state.cost for state in store.states)
        assert accumulated == pytest.approx(store.energy_accumulated,
                                            rel=1e-12)
        # The from-scratch Eq.-17 total over all (retired) placements
        # agrees with the per-delta accumulation.
        assert abs(store.energy_total() - accumulated) \
            <= 1e-6 * max(1.0, abs(accumulated))

    def test_retirement_event_maps_are_drained(self):
        store = ClusterStateStore(Cluster.paper_all_types(2))
        _stream(store, count=50, spacing=8)
        store.run_to_completion()
        assert not store._open_pieces
        assert not store._piece_vm
        assert not store._piece_demand

    def test_future_placements_unaffected_by_compaction(self):
        compacted = ClusterStateStore(Cluster.paper_all_types(2))
        control = ClusterStateStore(Cluster.paper_all_types(2),
                                    engine="dense")
        for store in (compacted, control):
            _stream(store, 30, spacing=10)
            store.run_to_completion()
            late = _vm(1000, store.clock + 5, store.clock + 12)
            store.commit(late, 0)
        verdict_c = compacted.states[0].probe(_vm(1001, 400, 404))
        verdict_d = control.states[0].probe(_vm(1001, 400, 404))
        assert verdict_c == verdict_d

    def test_snapshot_roundtrip_after_retirement(self):
        store = ClusterStateStore(Cluster.paper_all_types(3))
        _stream(store, count=40, spacing=15)
        store.run_to_completion()
        restored = ClusterStateStore.from_snapshot(store.to_snapshot())
        assert restored.clock == store.clock
        assert restored.energy_accumulated == store.energy_accumulated
        for mine, theirs in zip(store.states, restored.states):
            assert mine.cost == theirs.cost
            assert len(mine.vms) == len(theirs.vms)
            assert mine.occupancy_points() == theirs.occupancy_points()

    def test_past_commit_is_retired_immediately(self):
        store = ClusterStateStore(Cluster.paper_all_types(2))
        store.advance_to(100)
        store.commit(_vm(0, 5, 9), 0)  # entirely in the past
        assert store.states[0].vms == []
        assert store.energy_accumulated > 0
