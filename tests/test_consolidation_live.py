"""The live consolidation subsystem: fragmentation readings, victim
ranking, the shared migration planner, journaled episodes on the store
and the daemon, trigger rules, the chaos schedule, torn-group rollback,
and the live-versus-offline equivalence with the epoch consolidator."""

from __future__ import annotations

import json

import pytest

from repro.consolidation import (
    FragmentationMonitor,
    MigrationPlanner,
    PlannedMove,
    VictimSelector,
)
from repro.allocators.state import ServerState
from repro.energy import allocation_cost
from repro.exceptions import ValidationError
from repro.extensions import EpochConsolidator
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.service import (
    AllocationDaemon,
    ClusterStateStore,
    FaultEvent,
    FaultInjector,
    consolidate_request,
    fail_server_request,
    place_request,
    read_journal,
    recover_server_request,
)
from repro.workload.generator import generate_vms

from conftest import make_vm

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)

JOURNAL = "journal.jsonl"


def online_order(vms):
    return sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))


def fragmented_store(servers=4, *, short_end=8, long_end=200):
    """One short (heavy) and one long (light) VM per server: once the
    shorts retire, every server idles under a small long-running VM —
    the canonical defragmentation opportunity."""
    store = ClusterStateStore(Cluster.homogeneous(SPEC, servers))
    vid = 0
    for sid in range(servers):
        store.commit(make_vm(vid, 1, short_end, cpu=7.0, memory=5.0), sid)
        store.commit(make_vm(vid + 1, 1, long_end, cpu=2.0, memory=4.0),
                     sid)
        vid += 2
    return store


def planner_states(servers=4, *, short_end=8, long_end=200):
    """Full-history planning books for the same fragmented fleet (the
    shape :meth:`ClusterStateStore.consolidate` feeds the planner)."""
    from repro.model.server import Server
    states, longs = [], []
    vid = 0
    for sid in range(servers):
        state = ServerState(Server(sid, SPEC))
        state.place(make_vm(vid, 1, short_end, cpu=7.0, memory=5.0))
        long_vm = make_vm(vid + 1, 1, long_end, cpu=2.0, memory=4.0)
        state.place(long_vm)
        states.append(state)
        longs.append(long_vm)
        vid += 2
    return states, longs


def fragment_daemon(daemon, servers=4, *, short_end=8, long_end=200):
    vid = 0
    for _ in range(servers):
        for cpu, mem, end in ((7.0, 5.0, short_end),
                              (2.0, 4.0, long_end)):
            response = daemon.handle(place_request(
                make_vm(vid, 1, end, cpu=cpu, memory=mem)))
            assert response["decision"] == "placed", response
            vid += 1


class TestFragmentationMonitor:
    def test_empty_fleet_reads_zero(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 3))
        reading = FragmentationMonitor().reading(store)
        assert reading.active_servers == 0
        assert reading.fragmentation == 0.0

    def test_fragmented_fleet_reading(self):
        store = fragmented_store(4)
        store.advance_to(10)  # the shorts are gone; 4 servers, load 8/16
        reading = FragmentationMonitor().reading(store)
        assert reading.active_servers == 4
        assert reading.resident_cpu == pytest.approx(8.0)
        assert reading.resident_mem == pytest.approx(16.0)
        assert reading.packed_lower_bound == 2  # ceil(16 mem / 10)
        assert reading.fragmentation == pytest.approx(0.5)

    def test_perfectly_packed_fleet_reads_zero(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        store.commit(make_vm(0, 1, 9, cpu=10.0, memory=10.0), 0)
        store.advance_to(2)
        assert FragmentationMonitor().reading(store).fragmentation == 0.0


class TestVictimSelector:
    def make_state(self, server_id=0):
        from repro.model.server import Server
        return ServerState(Server(server_id, SPEC))

    def test_no_spanning_resident_scores_none(self):
        state = self.make_state()
        state.place(make_vm(0, 1, 4))
        assert VictimSelector().score(state, 0, 10) is None  # retired
        assert VictimSelector().score(self.make_state(), 0, 5) is None

    def test_rank_prefers_fewer_residents_then_bigger_reclaim(self):
        light = self.make_state(0)
        light.place(make_vm(0, 1, 50))
        busy = self.make_state(1)
        busy.place(make_vm(1, 1, 50))
        busy.place(make_vm(2, 1, 60))
        ranked = VictimSelector().rank([light, busy], 10)
        assert [score.server_id for score in ranked] == [0, 1]
        assert ranked[0].residents == 1 and ranked[1].residents == 2

    def test_rank_skips_requested_servers(self):
        state = self.make_state(0)
        state.place(make_vm(0, 1, 50))
        assert VictimSelector().rank([state], 10,
                                     skip=frozenset({0})) == []


class TestMigrationPlanner:
    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            MigrationPlanner(-1.0)
        with pytest.raises(ValidationError):
            MigrationPlanner(1.0, k_sample=0)
        assert MigrationPlanner(0.0, k_sample=1).k_sample == 1

    def test_move_cost_is_per_gb(self):
        planner = MigrationPlanner(2.5)
        assert planner.move_cost(make_vm(0, 1, 5, memory=4.0)) == \
            pytest.approx(10.0)

    def test_best_move_leaves_states_untouched(self):
        states, longs = planner_states(2)
        before = [state.cost for state in states]
        move = MigrationPlanner(0.1).best_move(
            longs[0], 10, 0, states, 1000)
        assert move is not None and move.target_id == 1
        assert [state.cost for state in states] == before
        # planning is pure; apply() commits

    def test_prohibitive_cost_kills_every_move(self):
        states, _ = planner_states(4)
        plan = MigrationPlanner(1e9).plan_episode(states, 10, 1000)
        assert plan.moves == ()

    def test_plan_episode_drains_underpacked_servers(self):
        states, _ = planner_states(4)
        plan = MigrationPlanner(0.1).plan_episode(states, 10, 1000)
        assert len(plan.moves) == 2
        assert plan.total_saving < 0  # net: every move paid for itself
        assert plan.migration_energy == pytest.approx(
            2 * 0.1 * 4.0)  # two 4-GB remainders moved
        # Fresh head/remainder ids come from the caller's counter.
        assert sorted(piece.vm_id for move in plan.moves
                      for piece in (move.head, move.remainder)) == \
            [1000, 1001, 1002, 1003]

    def test_k_sample_bounds_the_target_scan(self):
        states, longs = planner_states(4)
        wide = MigrationPlanner(0.1).best_move(
            longs[3], 10, 3, states, 1000)
        narrow = MigrationPlanner(0.1, k_sample=1).best_move(
            longs[3], 10, 3, states, 1000)
        assert wide is not None and narrow is not None
        assert narrow.target_id == 0  # only the first feasible server bid
        assert narrow.saving >= wide.saving

    def test_planned_move_record_round_trip(self):
        states, _ = planner_states(2)
        plan = MigrationPlanner(0.1).plan_episode(states, 10, 1000)
        [move] = plan.moves
        restored = PlannedMove.from_record(
            json.loads(json.dumps(move.to_record())))
        assert restored == move
        with pytest.raises(ValidationError):
            PlannedMove.from_record({"vm": {"bad": True}})


class TestStoreConsolidate:
    def test_episode_moves_frees_and_accounts(self):
        store = fragmented_store(4)
        report = store.consolidate(10)
        assert report.time == 10 and store.clock == 10
        assert report.migrations == 2
        assert report.servers_freed == 2
        assert report.energy_saved > 0
        assert store.migration_energy == pytest.approx(
            report.migration_energy)
        # Every head stays behind; every remainder runs on its target.
        placed = {vm.vm_id: sid for vm, sid in store.placements}
        for move in report.moves:
            assert placed[move.head.vm_id] == move.source_id
            assert placed[move.remainder.vm_id] == move.target_id
            assert move.vm.vm_id not in placed
        store.run_to_completion()
        assert store.energy_accumulated == pytest.approx(
            store.energy_total(), rel=1e-12)

    def test_consolidation_actually_saves_energy(self):
        idle = fragmented_store(4)
        idle.run_to_completion()
        packed = fragmented_store(4)
        report = packed.consolidate(10)
        packed.run_to_completion()
        assert packed.energy_total() + packed.migration_energy < \
            idle.energy_total()
        assert idle.energy_total() - packed.energy_total() - \
            packed.migration_energy == pytest.approx(
                report.energy_saved, rel=1e-12)

    def test_zero_move_episode_still_advances_the_clock(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        store.commit(make_vm(0, 1, 9), 0)
        report = store.consolidate(5)
        assert report.moves == () and report.servers_freed == 0
        assert store.clock == 5
        assert store.migration_energy == 0.0

    def test_validation(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        with pytest.raises(ValidationError):
            store.consolidate(0)
        store.advance_to(6)
        with pytest.raises(ValidationError):
            store.consolidate(3)  # in the past

    def test_dead_servers_neither_drain_nor_receive(self):
        store = fragmented_store(4)
        store.fail_server(3, 9)
        report = store.consolidate(10)
        touched = {move.source_id for move in report.moves} | \
            {move.target_id for move in report.moves}
        assert 3 not in touched
        assert report.migrations >= 1

    def test_snapshot_roundtrip_with_consolidate_event(self):
        store = fragmented_store(4)
        store.consolidate(10)
        document = json.loads(json.dumps(store.to_snapshot()))
        assert document["format_version"] == 3
        restored = ClusterStateStore.from_snapshot(document)
        assert restored.to_snapshot() == store.to_snapshot()
        assert restored.migration_energy == store.migration_energy
        assert restored.energy_accumulated == store.energy_accumulated
        assert {vm.vm_id: sid for vm, sid in restored.placements} == \
            {vm.vm_id: sid for vm, sid in store.placements}
        restored.run_to_completion()
        store.run_to_completion()
        assert restored.energy_total() == store.energy_total()

    def test_zero_move_episode_keeps_the_snapshot_version(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        store.commit(make_vm(0, 1, 3), 0)
        store.consolidate(2)
        assert store.to_snapshot()["format_version"] == 1

    def test_replay_applies_recorded_moves_verbatim(self):
        live = fragmented_store(4)
        report = live.consolidate(10)
        replayed = fragmented_store(4)
        replayed.consolidate(10, moves=[
            PlannedMove.from_record(move.to_record())
            for move in report.moves])
        assert replayed.to_snapshot() == live.to_snapshot()


class TestDaemonConsolidateOp:
    def test_response_shape(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 4))
        daemon = AllocationDaemon(store, algorithm="first-fit",
                                  migration_cost_per_gb=0.1)
        fragment_daemon(daemon)
        daemon.handle({"op": "tick", "now": 10})
        response = json.loads(daemon.handle_line(
            json.dumps(consolidate_request())))
        assert response["ok"] is True and response["op"] == "consolidate"
        assert response["time"] == 10
        assert response["migrations"] == 2
        assert response["servers_freed"] == 2
        assert response["energy_saved"] > 0
        assert response["migration_energy"] == pytest.approx(0.8)
        assert response["latency_ms"] >= 0
        for item in response["moves"]:
            assert set(item) == {"vm_id", "head_id", "remainder_id",
                                 "source_id", "target_id", "saving",
                                 "cost"}

    def test_protocol_gating_and_validation(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        v1 = json.loads(daemon.handle_line('{"op": "consolidate"}'))
        assert v1["ok"] is False and "version 2" in v1["error"]
        bad = json.loads(daemon.handle_line(
            '{"op": "consolidate", "v": 2, "time": 0}'))
        assert bad["ok"] is False and "time" in bad["error"]
        bad_type = daemon.handle({"op": "consolidate", "v": 2,
                                  "time": True})
        assert bad_type["ok"] is False

    def test_default_time_is_the_clock(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 2))
        daemon = AllocationDaemon(store)
        daemon.handle(place_request(make_vm(0, 4, 8)))
        response = daemon.handle(consolidate_request())
        assert response["time"] == store.clock == 4
        # On a fresh daemon the clock rounds up to the first real tick.
        fresh = AllocationDaemon(
            ClusterStateStore(Cluster.homogeneous(SPEC, 1)))
        assert fresh.handle(consolidate_request())["time"] == 1

    def test_epoch_trigger_fires_on_tick(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 4))
        daemon = AllocationDaemon(store, algorithm="first-fit",
                                  migration_cost_per_gb=0.1,
                                  consolidate_every=10)
        fragment_daemon(daemon)
        daemon.handle({"op": "tick", "now": 9})
        assert daemon.metrics.migrations == 0  # below the boundary
        daemon.handle({"op": "tick", "now": 12})
        assert daemon.metrics.migrations == 2
        assert store.migration_energy > 0
        freed = daemon.metrics.servers_freed
        # The next boundary has nothing left to drain but still counts
        # at most one episode per tick.
        daemon.handle({"op": "tick", "now": 20})
        assert daemon.metrics.servers_freed == freed

    def test_threshold_trigger_fires_after_placement(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 4))
        daemon = AllocationDaemon(store, algorithm="first-fit",
                                  migration_cost_per_gb=0.1,
                                  frag_threshold=0.4)
        fragment_daemon(daemon)
        daemon.handle({"op": "tick", "now": 10})  # frag jumps to 0.5
        assert daemon.metrics.migrations == 2
        # Drained sources power down when the tick closes; the next
        # tick reads a defragmented fleet and stays quiet.
        daemon.handle({"op": "tick", "now": 11})
        assert FragmentationMonitor().reading(store).fragmentation == 0.0
        assert daemon.metrics.migrations == 2

    def test_trigger_config_validation(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 1))
        with pytest.raises(ValidationError):
            AllocationDaemon(store, consolidate_every=-1)
        with pytest.raises(ValidationError):
            AllocationDaemon(store, frag_threshold=0.0)
        with pytest.raises(ValidationError):
            AllocationDaemon(store, frag_threshold=1.5)

    def test_stats_and_metrics_report_consolidation(self):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 4))
        daemon = AllocationDaemon(store, algorithm="first-fit",
                                  migration_cost_per_gb=0.1)
        fragment_daemon(daemon)
        daemon.handle({"op": "tick", "now": 10})
        daemon.handle(consolidate_request())
        stats = daemon.handle({"op": "stats"})
        assert stats["migrations"] == 2
        assert stats["migration_energy"] == pytest.approx(0.8)
        text = daemon.handle({"op": "metrics"})["text"]
        assert "repro_migrations_total 2" in text
        assert "repro_servers_freed_total 2" in text
        assert "repro_consolidation_duration_seconds_count 1" in text

    def test_episode_is_one_atomic_journal_group(self, tmp_path):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 4))
        daemon = AllocationDaemon(store, algorithm="first-fit",
                                  migration_cost_per_gb=0.1,
                                  data_dir=tmp_path, fsync=False)
        fragment_daemon(daemon)
        daemon.handle({"op": "tick", "now": 10})
        response = daemon.handle(consolidate_request())
        entries = list(read_journal(tmp_path / JOURNAL))
        [group] = [e for e in entries if e["op"] == "consolidate"]
        assert group["time"] == 10
        # Every move of the episode travels inside the group — no
        # separate place entries for remainders.
        assert len(group["moves"]) == response["migrations"] == 2
        assert [e["op"] for e in entries] == \
            ["init"] + ["place"] * 8 + ["tick", "consolidate"]

    def test_kill_and_restore_reproduces_post_episode_state(
            self, tmp_path):
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 4))
        first = AllocationDaemon(store, algorithm="first-fit",
                                 migration_cost_per_gb=0.1,
                                 data_dir=tmp_path, fsync=False)
        fragment_daemon(first)
        first.handle({"op": "tick", "now": 10})
        first.handle(consolidate_request())
        expected = store.to_snapshot()
        expected_counters = (first.metrics.migrations,
                             first.metrics.servers_freed,
                             first.metrics.consolidation_energy_saved)
        del first  # hard kill: no shutdown snapshot

        second = AllocationDaemon.restore(tmp_path, fsync=False)
        assert second.store.to_snapshot() == expected
        assert second.store.migration_energy == store.migration_energy
        assert (second.metrics.migrations, second.metrics.servers_freed,
                second.metrics.consolidation_energy_saved) == \
            expected_counters
        # The watermark survives too: the next trigger check at the
        # same tick stays quiet.
        assert second._last_consolidated_tick == 10


class TestFaultInjectorConsolidate:
    class Recorder:
        def __init__(self):
            self.calls = []

        def fail_server(self, server_id, time=None):
            self.calls.append(("fail", server_id, time))
            return {"ok": True}

        def recover_server(self, server_id):
            self.calls.append(("recover", server_id))
            return {"ok": True}

        def consolidate(self, time=None):
            self.calls.append(("consolidate", time))
            return {"ok": True}

    def test_consolidate_event_needs_no_server_id(self):
        target = self.Recorder()
        injector = FaultInjector([
            FaultEvent(after=0, kind="consolidate", time=7),
            FaultEvent(after=1, kind="consolidate"),
        ], target)
        injector.drain()
        assert target.calls == [("consolidate", 7), ("consolidate", None)]
        assert len(injector.responses) == 2

    def test_chaos_schedule_with_failure_mid_consolidation(
            self, tmp_path):
        """A ``fail_server`` landing between consolidation episodes:
        both episodes fully apply, the failure re-places what it must,
        and a hard kill+restore reproduces the whole braid bit-exact."""
        store = ClusterStateStore(Cluster.homogeneous(SPEC, 6))
        daemon = AllocationDaemon(store, algorithm="first-fit",
                                  migration_cost_per_gb=0.1,
                                  data_dir=tmp_path, fsync=False)
        fragment_daemon(daemon, servers=6)
        daemon.handle({"op": "tick", "now": 10})

        class Target:
            def fail_server(self, server_id, time=None):
                return daemon.handle(
                    fail_server_request(server_id, time))

            def recover_server(self, server_id):
                return daemon.handle(recover_server_request(server_id))

            def consolidate(self, time=None):
                return daemon.handle(consolidate_request(time))

        injector = FaultInjector([
            FaultEvent(after=0, kind="consolidate", time=11),
            FaultEvent(after=1, kind="fail", server_id=0, time=12),
            FaultEvent(after=2, kind="consolidate", time=13),
        ], Target())
        fired = injector.drain()
        assert all(r["ok"] for r in fired), fired
        first, fail, second = fired
        assert first["migrations"] >= 1
        # The failure killed the consolidation target's new tenants or
        # missed them — either way each journal group stands alone.
        entries = list(read_journal(tmp_path / JOURNAL))
        kinds = [e["op"] for e in entries]
        assert kinds.count("consolidate") == 2
        assert kinds.count("fail_server") == 1
        assert kinds.index("fail_server") > kinds.index("consolidate")
        expected = store.to_snapshot()
        del daemon

        restored = AllocationDaemon.restore(tmp_path, fsync=False)
        assert restored.store.to_snapshot() == expected
        restored.store.run_to_completion()
        assert restored.store.energy_accumulated == pytest.approx(
            restored.store.energy_total(), rel=1e-12)


class TestLiveMatchesOffline:
    def test_live_episodes_equal_epoch_consolidator(self):
        """The shared-planner guarantee: the daemon's live episodes and
        the offline :class:`EpochConsolidator` post-pass pick the same
        migrations and land on the same Eq.-17 energy (rel 1e-12) for
        the same trace and epoch grid. The trace arrives entirely
        before the first boundary — the offline pass places everything
        up front, so that is the regime where the two are comparable.
        """
        epoch = 30
        cost = 2.0
        vms = [vm for vm in generate_vms(60, mean_interarrival=0.4,
                                         mean_duration=25.0, seed=21)
               if vm.start <= epoch]
        assert len(vms) >= 40
        horizon = max(vm.end for vm in vms)
        cluster_size = 40

        store = ClusterStateStore(Cluster.paper_all_types(cluster_size))
        daemon = AllocationDaemon(store, migration_cost_per_gb=cost)
        for vm in online_order(vms):
            assert daemon.handle(place_request(vm))["decision"] == \
                "placed"
        live_moves = []
        for boundary in range(epoch, horizon + 1, epoch):
            daemon.handle({"op": "tick", "now": boundary})
            response = daemon.handle(consolidate_request(boundary))
            assert response["ok"], response
            live_moves.extend(
                (boundary, item["source_id"], item["target_id"],
                 item["cost"])
                for item in response["moves"])
        store.run_to_completion()

        offline = EpochConsolidator(
            epoch_length=epoch, migration_cost_per_gb=cost,
            planner=daemon.planner).allocate(
                vms, Cluster.paper_all_types(cluster_size))
        assert live_moves == [
            (m.time, m.source, m.target, m.cost)
            for m in offline.migrations]
        assert len(live_moves) >= 1  # the trace genuinely consolidates
        assert store.energy_total() == pytest.approx(
            offline.placement_energy, rel=1e-12)
        assert store.migration_energy == pytest.approx(
            offline.migration_energy, rel=1e-12)
        live_map = {vm.vm_id: sid for vm, sid in store.allocation().items()}
        offline_map = {vm.vm_id: sid
                       for vm, sid in offline.allocation.items()}
        assert live_map == offline_map  # split piece ids included


class TestEndToEndTornEpisode:
    def test_two_kill_restores_one_mid_episode(self, tmp_path):
        """The acceptance scenario: a stream with live consolidation, a
        hard kill+restore mid-stream, then a kill *mid-episode* (the
        journal's consolidate group torn mid-write). The torn group
        must roll back whole — never a half-applied episode — and after
        re-running it the final map and Eq.-17 energy equal a reference
        daemon that never crashed (rel 1e-12)."""
        vms = generate_vms(80, mean_interarrival=1.0,
                           mean_duration=30.0, seed=13)
        ordered = online_order(vms)
        cut = len(ordered) // 2

        store = ClusterStateStore(Cluster.paper_all_types(40))
        first = AllocationDaemon(store, data_dir=tmp_path,
                                 migration_cost_per_gb=1.0,
                                 snapshot_every=0, fsync=False)
        for vm in ordered[:cut]:
            assert first.handle(place_request(vm))["decision"] == "placed"
        del first  # kill+restore #1: mid-stream

        second = AllocationDaemon.restore(tmp_path, fsync=False)
        for vm in ordered[cut:]:
            assert second.handle(
                place_request(vm))["decision"] == "placed"
        boundary = second.store.clock + 5
        second.handle({"op": "tick", "now": boundary})
        pre_episode = second.store.to_snapshot()
        response = second.handle(consolidate_request(boundary))
        assert response["migrations"] >= 1, response
        del second  # kill #2 lands mid-episode below

        # Tear the consolidate group mid-write: the journal's final
        # line is half on disk, exactly what a crash during append
        # leaves behind.
        journal = tmp_path / JOURNAL
        lines = journal.read_text(encoding="utf-8").splitlines(True)
        assert '"op": "consolidate"' in lines[-1] or \
            '"op":"consolidate"' in lines[-1]
        journal.write_text("".join(lines[:-1]) +
                           lines[-1][:len(lines[-1]) // 2],
                           encoding="utf-8")

        third = AllocationDaemon.restore(tmp_path, fsync=False)
        # The torn episode rolled back whole: bit-exact pre-episode
        # state, no half-applied moves, zero migration energy.
        assert third.store.to_snapshot() == pre_episode
        assert third.store.migration_energy == 0.0
        assert third.metrics.migrations == 0

        # Re-running the episode reconverges with a daemon that never
        # crashed: same moves, same map, same energy.
        rerun = third.handle(consolidate_request(boundary))
        assert rerun["moves"] == response["moves"]
        third.store.run_to_completion()

        reference_store = ClusterStateStore(Cluster.paper_all_types(40))
        reference = AllocationDaemon(reference_store,
                                     migration_cost_per_gb=1.0)
        for vm in ordered:
            reference.handle(place_request(vm))
        reference.handle({"op": "tick", "now": boundary})
        reference.handle(consolidate_request(boundary))
        reference_store.run_to_completion()
        assert {vm.vm_id: sid
                for vm, sid in third.store.allocation().items()} == \
            {vm.vm_id: sid
             for vm, sid in reference_store.allocation().items()}
        assert third.store.energy_total() == pytest.approx(
            reference_store.energy_total(), rel=1e-12)
        assert third.store.migration_energy == pytest.approx(
            reference_store.migration_energy, rel=1e-12)
