"""The correlated-observability layer of the allocation service: trace
propagation client → daemon → journal → log, span emission per protocol
op, the ``telemetry`` / ``dump_debug`` ops, health endpoints during
restore, the automatic flight dump, and Prometheus conformance of the
``repro_slo_*`` and build-info families."""

from __future__ import annotations

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.obs import JsonLogger, Tracer, use_logger, use_tracer
from repro.obs.tracer import SPAN
from repro.service import (
    AllocationClient,
    AllocationDaemon,
    ClusterStateStore,
    consolidate_request,
    dump_debug_request,
    fail_server_request,
    place_batch_request,
    place_request,
    read_journal,
    recover_server_request,
    serve_tcp,
    start_metrics_server,
    telemetry_request,
)
from repro.workload.generator import generate_vms

from conftest import make_vm
from test_service_metrics import conformant_families

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)

HEX_TRACE = re.compile(r"[0-9a-f]{16}")


def make_daemon(n_servers=4, **kwargs):
    store = ClusterStateStore(Cluster.homogeneous(SPEC, n_servers))
    return AllocationDaemon(store, **kwargs)


def request_spans(tracer):
    return [e for e in tracer.events
            if e.kind == SPAN and e.name == "service.request"]


class TestSpanEmission:
    """Every protocol op yields a ``service.request`` span tree carrying
    the op name and the request's trace id."""

    def handle_traced(self, daemon, request):
        request = dict(request, trace_id="feedc0de" * 2,
                       request_id="cafe0001")
        tracer = Tracer()
        with use_tracer(tracer):
            response = daemon.handle(request)
        assert response["ok"], response
        return response, tracer

    def assert_span(self, tracer, op):
        spans = request_spans(tracer)
        assert len(spans) == 1
        span = spans[0]
        assert span.args["op"] == op
        assert span.args["trace_id"] == "feedc0de" * 2
        assert span.args["request_id"] == "cafe0001"
        assert span.args["ok"] is True
        return span

    def test_place_span(self):
        daemon = make_daemon()
        _, tracer = self.handle_traced(daemon,
                                       place_request(make_vm(0, 1, 4)))
        self.assert_span(tracer, "place")
        names = {e.name for e in tracer.events}
        assert {"service.place", "service.allocate",
                "service.commit"} <= names

    def test_place_batch_span(self):
        daemon = make_daemon()
        _, tracer = self.handle_traced(
            daemon, place_batch_request([make_vm(0, 1, 4),
                                         make_vm(1, 2, 5)]))
        self.assert_span(tracer, "place_batch")

    def test_fail_server_span(self):
        daemon = make_daemon()
        daemon.handle(place_request(make_vm(0, 1, 6)))
        _, tracer = self.handle_traced(daemon, fail_server_request(0, 2))
        self.assert_span(tracer, "fail_server")

    def test_recover_server_span(self):
        daemon = make_daemon()
        daemon.handle(fail_server_request(0, 1))
        _, tracer = self.handle_traced(daemon, recover_server_request(0))
        self.assert_span(tracer, "recover_server")

    def test_consolidate_span(self):
        daemon = make_daemon()
        daemon.handle(place_request(make_vm(0, 1, 9)))
        _, tracer = self.handle_traced(daemon, consolidate_request(3))
        span = self.assert_span(tracer, "consolidate")
        assert span.args["trace_id"] == "feedc0de" * 2

    def test_failed_request_span_carries_ok_false(self):
        daemon = make_daemon(n_servers=1)
        daemon.handle(place_request(make_vm(0, 1, 5, cpu=8.0)))
        tracer = Tracer()
        with use_tracer(tracer):
            response = daemon.handle(dict(
                place_request(make_vm(0, 2, 4)),  # duplicate id
                trace_id="feedc0de" * 2))
        assert not response["ok"]
        assert request_spans(tracer)[0].args["ok"] is False


class TestTraceEnvelope:
    def test_idless_v1_response_stays_bare(self):
        """An id-less v1 client keeps byte-identical replies: the
        daemon mints ids internally but never adds fields to the
        response."""
        daemon = make_daemon()
        response = daemon.handle({"op": "ping"})
        assert "trace_id" not in response
        assert "request_id" not in response

    def test_carried_ids_are_echoed(self):
        daemon = make_daemon()
        response = daemon.handle({"op": "ping", "trace_id": "abc",
                                  "request_id": "def"})
        assert response["trace_id"] == "abc"
        assert response["request_id"] == "def"

    def test_malformed_id_is_an_error_response(self):
        daemon = make_daemon()
        response = daemon.handle({"op": "ping", "trace_id": ""})
        assert response["ok"] is False
        assert "trace_id" in response["error"]

    def test_daemon_side_minting_reaches_journal(self, tmp_path):
        daemon = make_daemon(data_dir=tmp_path, fsync=False)
        assert daemon.handle(place_request(make_vm(0, 1, 4)))["ok"]
        entries = [e for e in read_journal(tmp_path / "journal.jsonl")
                   if e.get("op") == "place"]
        assert HEX_TRACE.fullmatch(entries[0]["trace_id"])

    def test_client_stamps_ids_before_sending(self):
        sent = []

        class _Conn:
            def makefile(self, mode, encoding=None):
                if "w" in mode:
                    class _W:
                        def write(self, data):
                            sent.append(data)

                        def flush(self):
                            pass

                        def close(self):
                            pass
                    return _W()

                class _R:
                    def readline(self):
                        return json.dumps({"ok": True}) + "\n"

                    def close(self):
                        pass
                return _R()

            def close(self):
                pass

        client = AllocationClient(connect=lambda: _Conn())
        client.ping()
        message = json.loads(sent[0])
        assert HEX_TRACE.fullmatch(message["trace_id"])
        assert re.fullmatch(r"[0-9a-f]{8}", message["request_id"])

    def test_explicit_trace_id_rides_place_and_batch(self):
        daemon = make_daemon()
        with AllocationClientOverDaemon(daemon) as client:
            response = client.place(make_vm(0, 1, 4), trace_id="t-123")
            assert response["trace_id"] == "t-123"
            response = client.place_batch([make_vm(1, 2, 5)],
                                          trace_id="t-456")
            assert response["trace_id"] == "t-456"


class AllocationClientOverDaemon:
    """An AllocationClient talking to an in-process daemon through an
    injected loopback connection (no sockets)."""

    def __init__(self, daemon):
        self._daemon = daemon

    def __enter__(self):
        daemon = self._daemon
        responses = []

        class _Conn:
            def makefile(self, mode, encoding=None):
                if "w" in mode:
                    class _W:
                        def write(self, data):
                            responses.append(
                                daemon.handle_line(data.rstrip("\n")))

                        def flush(self):
                            pass

                        def close(self):
                            pass
                    return _W()

                class _R:
                    def readline(self):
                        return responses.pop(0) + "\n"

                    def close(self):
                        pass
                return _R()

            def close(self):
                pass

        self._client = AllocationClient(connect=lambda: _Conn())
        return self._client

    def __exit__(self, *exc):
        self._client.close()
        return False


class TestTelemetryOp:
    def test_telemetry_reports_samples_and_slo(self):
        daemon = make_daemon()
        for i in range(3):
            daemon.handle(place_request(make_vm(i, i + 1, i + 5)))
        response = daemon.handle(telemetry_request())
        assert response["ok"] and response["op"] == "telemetry"
        assert response["enabled"] is True
        assert response["capacity"] == 1024
        ticks = [s["tick"] for s in response["samples"]]
        assert ticks == sorted(ticks)
        assert ticks[-1] == daemon.store.clock
        latest = response["samples"][-1]
        assert latest["running_vms"] == len(daemon.store.placements)
        assert latest["placed"] == 3
        assert response["slo"]["totals"]["requests"] == 3
        assert response["slo"]["healthy"] is True

    def test_telemetry_last_limits_samples(self):
        daemon = make_daemon()
        for i in range(5):
            daemon.handle(place_request(make_vm(i, i + 1, i + 6)))
        response = daemon.handle(telemetry_request(last=2))
        assert len(response["samples"]) == 2

    def test_telemetry_requires_v2_on_the_wire(self):
        daemon = make_daemon()
        response = json.loads(
            daemon.handle_line(json.dumps({"op": "telemetry"})))
        assert response["ok"] is False
        assert '"v": 2' in response["error"]

    def test_bad_last_is_rejected(self):
        daemon = make_daemon()
        for bad in (0, -1, "five"):
            response = daemon.handle({"op": "telemetry", "v": 2,
                                      "last": bad})
            assert response["ok"] is False, bad
            assert "last" in response["error"]

    def test_capacity_zero_daemon_reports_disabled(self):
        daemon = make_daemon(telemetry_capacity=0)
        daemon.handle(place_request(make_vm(0, 1, 4)))
        response = daemon.handle(telemetry_request())
        assert response["ok"]
        assert response["enabled"] is False
        assert response["samples"] == []

    def test_sampling_is_once_per_tick(self):
        daemon = make_daemon()
        # Three placements landing on the same arrival tick must not
        # produce three samples for that tick.
        for i in range(3):
            daemon.handle(place_request(make_vm(i, 5, 9)))
        samples = daemon.telemetry.last()
        assert len([s for s in samples if s.tick == 5]) <= 1


class TestDumpDebugOp:
    def test_dump_returns_recent_requests(self):
        daemon = make_daemon()
        daemon.handle(place_request(make_vm(0, 1, 4)))
        daemon.handle({"op": "ping", "trace_id": "known-trace",
                       "request_id": "known-req"})
        response = daemon.handle(dump_debug_request())
        assert response["ok"] and response["op"] == "dump_debug"
        assert response["count"] == len(response["records"])
        ops = [r["op"] for r in response["records"]]
        assert "place" in ops and "ping" in ops
        ping = next(r for r in response["records"] if r["op"] == "ping")
        assert ping["trace_id"] == "known-trace"

    def test_dump_requires_v2_on_the_wire(self):
        daemon = make_daemon()
        response = json.loads(
            daemon.handle_line(json.dumps({"op": "dump_debug"})))
        assert response["ok"] is False
        assert '"v": 2' in response["error"]

    def test_dump_records_errors_with_payloads(self):
        daemon = make_daemon(n_servers=1)
        daemon.handle(place_request(make_vm(0, 1, 5, cpu=8.0)))
        daemon.handle(place_request(make_vm(1, 2, 4, cpu=8.0)))  # reject
        daemon.handle(dict(place_request(make_vm(0, 3, 6))))  # dup error
        records = daemon.handle(dump_debug_request())["records"]
        failed = [r for r in records if not r["ok"]]
        assert failed and "error" in failed[0]
        # Parsed VM objects never leak into the recorded payloads.
        place = next(r for r in records if r["op"] == "place")
        assert "_vm" not in place["request"]


class TestAutoFlightDump:
    def test_unhandled_error_dumps_black_box(self, tmp_path, monkeypatch):
        daemon = make_daemon(data_dir=tmp_path, fsync=False)
        daemon.handle(place_request(make_vm(0, 1, 4)))

        def boom():
            raise RuntimeError("wedged")

        monkeypatch.setattr(daemon, "_handle_stats", boom)
        records = []
        with use_logger(JsonLogger(sink=records.append)):
            with pytest.raises(RuntimeError):
                daemon.handle({"op": "stats", "trace_id": "deadbeef"})
        dumps = list(tmp_path.glob("flight-dump-*.json"))
        assert dumps == [tmp_path / "flight-dump-deadbeef.json"]
        document = json.loads(dumps[0].read_text())
        assert "RuntimeError" in document["reason"]
        assert any(r["op"] == "place" for r in document["records"])
        errors = [r for r in records
                  if r["event"] == "service.unhandled_error"]
        assert errors and errors[0]["trace_id"] == "deadbeef"
        assert "RuntimeError: wedged" in errors[0]["exception"]

    def test_no_dump_without_data_dir(self, monkeypatch):
        daemon = make_daemon()

        def boom():
            raise RuntimeError("wedged")

        monkeypatch.setattr(daemon, "_handle_stats", boom)
        with pytest.raises(RuntimeError):
            daemon.handle({"op": "stats"})  # must not crash dumping


class TestStructuredLogging:
    def test_request_log_line_is_correlated(self):
        records = []
        daemon = make_daemon()
        with use_logger(JsonLogger(sink=records.append)):
            daemon.handle(dict(place_request(make_vm(0, 1, 4)),
                               trace_id="abc", request_id="def"))
        lines = [r for r in records if r["event"] == "service.request"]
        assert len(lines) == 1
        line = lines[0]
        assert line["level"] == "info"
        assert line["op"] == "place"
        assert line["trace_id"] == "abc"
        assert line["request_id"] == "def"
        assert line["decision"] == "placed"
        assert line["latency_ms"] >= 0

    def test_error_outcome_logs_at_error_level(self):
        records = []
        daemon = make_daemon()
        with use_logger(JsonLogger(sink=records.append)):
            response = daemon.handle({"op": "telemetry", "v": 2,
                                      "last": 0})
        assert response["ok"] is False
        line = next(r for r in records
                    if r["event"] == "service.request")
        assert line["level"] == "error"
        assert "error" in line


class TestSLOExposition:
    def test_slo_families_are_conformant(self):
        daemon = make_daemon()
        daemon.handle(place_request(make_vm(0, 1, 4)))
        daemon.handle({"op": "telemetry", "v": 2, "last": 0})  # error
        families = conformant_families(daemon.render_metrics())
        assert families["repro_slo_latency_objective_seconds"]["type"] \
            == "gauge"
        assert families["repro_slo_requests_total"]["type"] == "counter"

        def value_of(name):
            return families[name]["samples"][0][2]

        assert value_of("repro_slo_requests_total") == 2.0
        assert value_of("repro_slo_errors_total") == 1.0
        assert value_of("repro_slo_slow_requests_total") == 0.0
        burns = families["repro_slo_latency_burn_rate"]["samples"]
        windows = sorted(float(labels["window"])
                         for _, labels, _ in burns)
        assert windows == [60.0, 300.0, 3600.0]
        assert families["repro_slo_availability_burn_rate"]["type"] == \
            "gauge"

    def test_custom_slo_config_round_trips_restore(self, tmp_path):
        from repro.obs import SLOConfig

        config = SLOConfig(latency_objective=0.05, latency_target=0.95,
                           availability_target=0.99,
                           windows=(30.0, 90.0))
        daemon = make_daemon(data_dir=tmp_path, fsync=False, slo=config)
        daemon.handle(place_request(make_vm(0, 1, 4)))
        del daemon
        restored = AllocationDaemon.restore(tmp_path, fsync=False)
        assert restored.slo.config == config
        assert restored.config["slo"] == config.to_record()


class TestEndToEndTrace:
    def test_one_trace_id_across_response_span_journal_log(self,
                                                           tmp_path):
        """The acceptance scenario: a batch placed through the real
        client shows one trace id in the response, the daemon's span
        tree, the journal group header and the JSON log line — and a
        kill+restore replays the recorded ids bit-exactly."""
        store = ClusterStateStore(Cluster.paper_all_types(20))
        daemon = AllocationDaemon(store, data_dir=tmp_path, fsync=False)
        server = serve_tcp(daemon, port=0)
        host, port = server.server_address
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        vms = generate_vms(8, mean_interarrival=2.0, seed=1)
        tracer = Tracer()
        records = []
        try:
            with use_tracer(tracer), \
                    use_logger(JsonLogger(sink=records.append)), \
                    AllocationClient(host, port) as client:
                response = client.place_batch(vms)
        finally:
            server.shutdown()
            server.server_close()
        assert response["ok"], response
        trace_id = response["trace_id"]
        assert HEX_TRACE.fullmatch(trace_id)

        # ... in the daemon's span tree,
        spans = [e for e in request_spans(tracer)
                 if e.args.get("trace_id") == trace_id]
        assert spans and spans[0].args["op"] == "place_batch"

        # ... on the journal group header (and only there: the group's
        # member decisions belong to the same episode),
        groups = [e for e in read_journal(tmp_path / "journal.jsonl")
                  if e.get("op") == "place_batch"]
        assert [g["trace_id"] for g in groups] == [trace_id]
        assert len(groups[0]["decisions"]) == len(vms)

        # ... and on the structured log line.
        logged = [r for r in records if r["event"] == "service.request"
                  and r.get("op") == "place_batch"]
        assert [r["trace_id"] for r in logged] == [trace_id]

        # Kill hard and restore: the replay reuses the recorded ids
        # verbatim — the replay log tells the original run's story.
        del daemon
        replay_records = []
        with use_logger(JsonLogger(sink=replay_records.append)):
            restored = AllocationDaemon.restore(tmp_path, fsync=False)
        assert len(restored.store.placements) == len(vms)
        replayed = [r for r in replay_records
                    if r["event"] == "service.replay"
                    and r.get("op") == "place_batch"]
        assert [r["trace_id"] for r in replayed] == [trace_id]
        # The journal itself is untouched by the restore.
        after = [e for e in read_journal(tmp_path / "journal.jsonl")
                 if e.get("op") == "place_batch"]
        assert after == groups


class TestHealthEndpoints:
    def fetch(self, port, path):
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=10) as fh:
                return fh.status, fh.read().decode()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode()

    def test_ready_daemon_serves_health_and_varz(self):
        daemon = make_daemon()
        daemon.handle(place_request(make_vm(0, 1, 4)))
        server = start_metrics_server(daemon, port=0)
        port = server.server_address[1]
        try:
            assert self.fetch(port, "/healthz") == (200, "ok\n")
            assert self.fetch(port, "/readyz") == (200, "ok\n")
            status, body = self.fetch(port, "/varz")
            assert status == 200
            varz = json.loads(body)
            assert varz["ready"] is True
            assert varz["build"]["version"]
            assert varz["uptime_seconds"] >= 0
            assert varz["stats"]["placed"] == 1
            assert varz["slo"]["healthy"] is True
            assert varz["telemetry"]["running_vms"] == 1
            assert self.fetch(port, "/nope")[0] == 404
        finally:
            server.shutdown()
            server.server_close()

    def test_not_ready_during_restore_ready_after(self, tmp_path):
        daemon = make_daemon(data_dir=tmp_path, fsync=False)
        for i in range(4):
            daemon.handle(place_request(make_vm(i, i + 1, i + 5)))
        del daemon  # hard kill

        seen = {}
        servers = []

        def on_built(building):
            server = start_metrics_server(building, port=0)
            servers.append(server)
            port = server.server_address[1]
            seen["during"] = self.fetch(port, "/healthz")
            seen["varz_during"] = json.loads(
                self.fetch(port, "/varz")[1])

        restored = AllocationDaemon.restore(tmp_path, fsync=False,
                                            on_built=on_built)
        server = servers[0]
        try:
            assert seen["during"] == (503, "restoring\n")
            assert seen["varz_during"]["ready"] is False
            port = server.server_address[1]
            assert self.fetch(port, "/healthz") == (200, "ok\n")
            assert restored.ready is True
        finally:
            server.shutdown()
            server.server_close()

    def test_shut_down_daemon_reports_unhealthy(self):
        # A real shutdown op also stops the metrics server (via the
        # shutdown hook), so probe the handler's closed branch directly.
        daemon = make_daemon()
        server = start_metrics_server(daemon, port=0)
        port = server.server_address[1]
        try:
            daemon.closed = True
            status, body = self.fetch(port, "/healthz")
            assert status == 503
            assert "shutting down" in body
        finally:
            server.shutdown()
            server.server_close()


class TestClientTelemetryMethods:
    def test_client_telemetry_and_dump_debug(self):
        daemon = make_daemon()
        daemon.handle(place_request(make_vm(0, 1, 4)))
        with AllocationClientOverDaemon(daemon) as client:
            response = client.telemetry(last=1)
            assert response["ok"]
            assert len(response["samples"]) == 1
            dump = client.dump_debug()
            assert dump["ok"]
            assert dump["count"] >= 1
