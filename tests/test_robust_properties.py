"""Property tests: the Γ-robust engine relates to the nominal one lawfully.

Three laws, over random uncertain workloads:

* **Γ=0 is the nominal engine** — for every registered allocator, kernel
  on or off, plain or sharded, a ``gamma=0`` config yields bit-identical
  placements and Eq.-17 energy (``==`` on floats) to no config at all;
* **robust feasibility is monotone** — growing the Γ budget can only
  turn a feasible probe infeasible, never the reverse (and box mode is
  at least as strict as any finite Γ);
* **a saturated budget is box mode** — once Γ covers every resident,
  the gamma-mode probe equals the full worst-case probe exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.allocators import allocator_names, make_allocator
from repro.allocators.state import ServerState
from repro.model.cluster import Cluster
from repro.model.intervals import TimeInterval
from repro.model.server import Server, ServerSpec
from repro.model.vm import VM, VMSpec
from repro.placement import EngineConfig
from repro.robust import RobustnessConfig

SPEC = ServerSpec("prop", cpu_capacity=8.0, memory_capacity=10.0,
                  p_idle=90.0, p_peak=180.0, transition_time=2.0)

#: (start, length, cpu, memory, cpu_radius_frac, mem_radius_frac)
vm_entry = st.tuples(st.integers(0, 12), st.integers(1, 6),
                     st.floats(0.25, 4.0), st.floats(0.25, 5.0),
                     st.sampled_from([0.0, 0.25, 0.5, 1.0]),
                     st.sampled_from([0.0, 0.5]))
workload = st.lists(vm_entry, min_size=1, max_size=10)


def materialize(entries, base_id=0):
    vms = []
    for i, (start, length, cpu, memory, cfrac, mfrac) in enumerate(entries):
        spec = VMSpec("u", cpu=cpu, memory=memory,
                      cpu_radius=cfrac * cpu, mem_radius=mfrac * memory)
        vms.append(VM(vm_id=base_id + i, spec=spec,
                      interval=TimeInterval(start, start + length)))
    return vms


def run_batch(vms, engine, shards=None):
    cluster = Cluster.homogeneous(SPEC, 4)
    allocator = make_allocator("first-fit", seed=0, engine=engine)
    return allocator.allocate_batch(vms, cluster, shards=shards)


class TestGammaZeroIsNominal:
    @pytest.mark.parametrize("algo", allocator_names())
    @pytest.mark.parametrize("kernel", [True, False])
    @settings(max_examples=8, deadline=None)
    @given(entries=workload)
    def test_placements_and_energy_identical(self, algo, kernel, entries):
        vms = materialize(entries)
        cluster = Cluster.homogeneous(SPEC, 4)
        nominal_engine = EngineConfig(kernel=kernel)
        zero_engine = EngineConfig(kernel=kernel,
                                   robustness=RobustnessConfig(gamma=0))
        if algo == "gamma-ff":
            # gamma-ff injects a default Γ=1 when the engine carries no
            # config; its Γ=0 law is equality with plain first-fit.
            nominal = make_allocator("first-fit", seed=3,
                                     engine=nominal_engine) \
                .allocate_batch(vms, cluster)
            zero = make_allocator(algo, seed=3, gamma=0,
                                  engine=nominal_engine) \
                .allocate_batch(vms, cluster)
        else:
            nominal = make_allocator(algo, seed=3,
                                     engine=nominal_engine) \
                .allocate_batch(vms, cluster)
            zero = make_allocator(algo, seed=3, engine=zero_engine) \
                .allocate_batch(vms, cluster)
        assert [d.server_id for d in nominal] == \
            [d.server_id for d in zero]
        assert [d.energy_delta for d in nominal] == \
            [d.energy_delta for d in zero]

    @settings(max_examples=10, deadline=None)
    @given(entries=workload)
    def test_sharded_kernel_scan_identical(self, entries):
        vms = materialize(entries)
        nominal = run_batch(vms, EngineConfig(), shards=2)
        zero = run_batch(
            vms, EngineConfig(robustness=RobustnessConfig(gamma=0)),
            shards=2)
        assert [(d.server_id, d.energy_delta) for d in nominal] == \
            [(d.server_id, d.energy_delta) for d in zero]


def probe_under(residents, probe, robustness):
    engine = EngineConfig(robustness=robustness) if robustness else \
        EngineConfig()
    state = ServerState(Server(0, SPEC), engine=engine)
    for vm in residents:
        state.place_trusted(vm)
    return state.probe(probe)


class TestMonotoneInGamma:
    @settings(max_examples=30, deadline=None)
    @given(entries=workload, probe_entry=vm_entry)
    def test_feasibility_non_increasing(self, entries, probe_entry):
        residents = materialize(entries)
        (probe,) = materialize([probe_entry], base_id=999)
        feasible = [
            probe_under(residents, probe,
                        RobustnessConfig(gamma=g) if g else None).feasible
            for g in range(0, 5)]
        feasible.append(probe_under(
            residents, probe, RobustnessConfig(mode="box")).feasible)
        # Once a budget rules the probe out, every larger budget (and
        # the box worst case, strictest of all) must rule it out too.
        for looser, stricter in zip(feasible, feasible[1:]):
            assert looser or not stricter


class TestSaturatedBudgetIsBox:
    @settings(max_examples=30, deadline=None)
    @given(entries=workload, probe_entry=vm_entry)
    def test_gamma_covering_all_residents_equals_box(self, entries,
                                                     probe_entry):
        residents = materialize(entries)
        (probe,) = materialize([probe_entry], base_id=999)
        saturated = probe_under(
            residents, probe,
            RobustnessConfig(gamma=len(residents) + 1))
        box = probe_under(residents, probe, RobustnessConfig(mode="box"))
        assert saturated.feasible == box.feasible
        assert saturated.reason == box.reason
        assert saturated.peak_cpu == box.peak_cpu
        assert saturated.peak_mem == box.peak_mem
        assert saturated.headroom_cpu == box.headroom_cpu
        assert saturated.headroom_mem == box.headroom_mem
