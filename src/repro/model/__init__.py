"""Domain model: time intervals, VMs, servers, catalogs, clusters,
allocations."""

from repro.model.allocation import Allocation
from repro.model.catalog import (
    ALL_SERVER_TYPES,
    ALL_VM_TYPES,
    CPU_INTENSIVE_VM_TYPES,
    MEMORY_INTENSIVE_VM_TYPES,
    SERVER_TYPES,
    SMALL_SERVER_TYPES,
    STANDARD_VM_TYPES,
    VM_TYPES,
    server_type,
    vm_type,
)
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.model.intervals import (
    TimeInterval,
    gaps_between,
    intervals_overlap,
    merge_intervals,
    total_length,
)
from repro.model.phases import (
    DemandPhase,
    PhasedVM,
    demand_at,
    demand_profile,
    split_vm,
)
from repro.model.server import Server, ServerSpec
from repro.model.vm import VM, VMSpec

__all__ = [
    "Allocation",
    "ALL_SERVER_TYPES",
    "ALL_VM_TYPES",
    "CPU_INTENSIVE_VM_TYPES",
    "MEMORY_INTENSIVE_VM_TYPES",
    "SERVER_TYPES",
    "SMALL_SERVER_TYPES",
    "STANDARD_VM_TYPES",
    "VM_TYPES",
    "server_type",
    "vm_type",
    "Cluster",
    "PlacementConstraints",
    "TimeInterval",
    "gaps_between",
    "intervals_overlap",
    "merge_intervals",
    "total_length",
    "DemandPhase",
    "PhasedVM",
    "demand_at",
    "demand_profile",
    "split_vm",
    "Server",
    "ServerSpec",
    "VM",
    "VMSpec",
]
