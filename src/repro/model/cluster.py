"""Clusters: the fleet of servers an allocator places VMs onto.

A :class:`Cluster` is an ordered, immutable collection of
:class:`~repro.model.server.Server` instances with convenience constructors
for the fleet mixes used in the paper's evaluation (all five Table II types,
or only types 1-3) and for homogeneous fleets used in tests and ablations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import ValidationError
from repro.model.catalog import SERVER_TYPES, SMALL_SERVER_TYPES
from repro.model.server import Server, ServerSpec

__all__ = ["Cluster"]


class Cluster:
    """An immutable fleet of servers with stable ids ``0..n-1``."""

    def __init__(self, servers: Iterable[Server]) -> None:
        self._servers: tuple[Server, ...] = tuple(servers)
        if not self._servers:
            raise ValidationError("a cluster needs at least one server")
        ids = [s.server_id for s in self._servers]
        if ids != list(range(len(ids))):
            raise ValidationError(
                "server ids must be consecutive integers starting at 0; "
                f"got {ids[:10]}{'...' if len(ids) > 10 else ''}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_specs(cls, specs: Sequence[ServerSpec]) -> "Cluster":
        """Build a cluster with one server per spec, ids in order."""
        return cls(Server(i, spec) for i, spec in enumerate(specs))

    @classmethod
    def homogeneous(cls, spec: ServerSpec, count: int) -> "Cluster":
        """``count`` identical servers of the given spec."""
        if count <= 0:
            raise ValidationError(f"count must be positive, got {count}")
        return cls(Server(i, spec) for i in range(count))

    @classmethod
    def mixed(cls, specs: Sequence[ServerSpec], count: int,
              transition_time: float | None = None) -> "Cluster":
        """``count`` servers cycling round-robin through ``specs``.

        This reproduces the paper's fleets: every server type is equally
        represented. ``transition_time`` (time units), when given, overrides
        the specs' default — the knob swept in the paper's Sec. IV-D.
        """
        if count <= 0:
            raise ValidationError(f"count must be positive, got {count}")
        if not specs:
            raise ValidationError("specs must be non-empty")
        if transition_time is not None:
            specs = [s.with_transition_time(transition_time) for s in specs]
        return cls(Server(i, specs[i % len(specs)]) for i in range(count))

    @classmethod
    def paper_all_types(cls, count: int,
                        transition_time: float | None = None) -> "Cluster":
        """A fleet cycling through all five Table II server types."""
        return cls.mixed(SERVER_TYPES, count, transition_time)

    @classmethod
    def paper_small_types(cls, count: int,
                          transition_time: float | None = None) -> "Cluster":
        """A fleet cycling through Table II types 1-3 only (Sec. IV-F)."""
        return cls.mixed(SMALL_SERVER_TYPES, count, transition_time)

    # -- accessors ---------------------------------------------------------

    @property
    def servers(self) -> tuple[Server, ...]:
        return self._servers

    @property
    def total_cpu_capacity(self) -> float:
        """Sum of CPU capacity over the fleet."""
        return sum(s.cpu_capacity for s in self._servers)

    @property
    def total_memory_capacity(self) -> float:
        """Sum of memory capacity over the fleet."""
        return sum(s.memory_capacity for s in self._servers)

    def server(self, server_id: int) -> Server:
        """The server with the given id."""
        try:
            return self._servers[server_id]
        except IndexError:
            raise ValidationError(
                f"no server with id {server_id} in a cluster of "
                f"{len(self._servers)}") from None

    def spec_counts(self) -> dict[str, int]:
        """How many servers of each type name the fleet contains."""
        counts: dict[str, int] = {}
        for server in self._servers:
            counts[server.spec.name] = counts.get(server.spec.name, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self._servers)

    def __getitem__(self, server_id: int) -> Server:
        return self._servers[server_id]

    def __repr__(self) -> str:
        return f"Cluster(n={len(self)}, types={self.spec_counts()})"
