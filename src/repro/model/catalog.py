"""The paper's Table I (VM types) and Table II (server types).

The OCR of the paper lost most digits in both tables, so the values here are
reconstructions documented in DESIGN.md:

* **Table I** states the parameters "refer to Amazon Elastic Compute Cloud";
  the two surviving fragments — a standard type with memory ``15`` and a
  CPU-intensive type reading ``2 .. 7`` — match the 2013-era EC2 catalog
  exactly (m1.xlarge: 8 ECU / 15 GB; c1.xlarge: 20 ECU / 7 GB). We use the
  nine 2013 EC2 instance types in the three families the paper names:
  four standard (m1.*), three memory-intensive (m2.*), two CPU-intensive
  (c1.*).

* **Table II** gives three construction rules: (1) the server with 60
  compute units and 64 GB is roughly an HP ProLiant BL660c-class blade;
  (2) idle power is 40-50 % of peak, typical for data-center servers
  (Barroso & Hölzle); (3) power grows with resource capacity. The five
  hypothetical types below follow all three rules.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.model.server import ServerSpec
from repro.model.vm import VMSpec

__all__ = [
    "VM_TYPES",
    "STANDARD_VM_TYPES",
    "MEMORY_INTENSIVE_VM_TYPES",
    "CPU_INTENSIVE_VM_TYPES",
    "ALL_VM_TYPES",
    "SERVER_TYPES",
    "SMALL_SERVER_TYPES",
    "ALL_SERVER_TYPES",
    "vm_type",
    "server_type",
]

# --------------------------------------------------------------------------
# Table I — VM types (CPU in EC2 compute units, memory in GBytes).
# --------------------------------------------------------------------------

STANDARD_VM_TYPES: tuple[VMSpec, ...] = (
    VMSpec("standard-1", cpu=1.0, memory=1.7),     # m1.small
    VMSpec("standard-2", cpu=2.0, memory=3.75),    # m1.medium
    VMSpec("standard-3", cpu=4.0, memory=7.5),     # m1.large
    VMSpec("standard-4", cpu=8.0, memory=15.0),    # m1.xlarge
)

MEMORY_INTENSIVE_VM_TYPES: tuple[VMSpec, ...] = (
    VMSpec("memory-1", cpu=6.5, memory=17.1),      # m2.xlarge
    VMSpec("memory-2", cpu=13.0, memory=34.2),     # m2.2xlarge
    VMSpec("memory-3", cpu=26.0, memory=68.4),     # m2.4xlarge
)

CPU_INTENSIVE_VM_TYPES: tuple[VMSpec, ...] = (
    VMSpec("cpu-1", cpu=5.0, memory=1.7),          # c1.medium
    VMSpec("cpu-2", cpu=20.0, memory=7.0),         # c1.xlarge
)

ALL_VM_TYPES: tuple[VMSpec, ...] = (
    STANDARD_VM_TYPES + MEMORY_INTENSIVE_VM_TYPES + CPU_INTENSIVE_VM_TYPES
)

#: Name -> spec index over every VM type.
VM_TYPES: dict[str, VMSpec] = {spec.name: spec for spec in ALL_VM_TYPES}

# --------------------------------------------------------------------------
# Table II — server types. The reconstruction follows the paper's three
# stated rules plus a calibration pass documented in EXPERIMENTS.md:
#
#   1. the mid-size type 3 (24 cu / 48 GB, 160-356 W) is blade-class power,
#      the paper's HP ProLiant anchor;
#   2. idle power spans the 40-50 % of peak band (type 1: 50 %, ...,
#      type 5: 40 %);
#   3. power grows monotonically with capacity — peak ~ 20 + 14 * CU, a
#      small platform intercept plus a per-compute-unit slope. Calibration
#      showed the published behaviour (greedy beats FFPS, more at light
#      load) requires per-capacity power to be roughly flat: with strong
#      economies of scale for big servers the comparison inverts, because
#      the paper's own argument relies on small servers not being at an
#      efficiency disadvantage (Sec. III reason 2).
#
# Capacities are sized so a server hosts roughly 1-6 VMs (the largest VM,
# m2.4xlarge at 26 cu / 68.4 GB, fits only types 4-5; the largest standard
# VM fits type 1 exactly), matching the utilisation levels of the paper's
# Figs. 3 and 8. The default transition time is 1 minute, the paper's
# Sec. IV-C setting; experiments override it through
# ``ServerSpec.with_transition_time``.
# --------------------------------------------------------------------------

SERVER_TYPES: tuple[ServerSpec, ...] = (
    ServerSpec("type1", cpu_capacity=8.0, memory_capacity=16.0,
               p_idle=66.0, p_peak=132.0, transition_time=1.0),    # 50 %
    ServerSpec("type2", cpu_capacity=16.0, memory_capacity=32.0,
               p_idle=115.0, p_peak=244.0, transition_time=1.0),   # 47 %
    ServerSpec("type3", cpu_capacity=24.0, memory_capacity=48.0,
               p_idle=160.0, p_peak=356.0, transition_time=1.0),   # 45 %
    ServerSpec("type4", cpu_capacity=32.0, memory_capacity=72.0,
               p_idle=201.0, p_peak=468.0, transition_time=1.0),   # 43 %
    ServerSpec("type5", cpu_capacity=48.0, memory_capacity=96.0,
               p_idle=277.0, p_peak=692.0, transition_time=1.0),   # 40 %
)

#: Server types 1-3, the restricted mix used in the paper's Sec. IV-F.
SMALL_SERVER_TYPES: tuple[ServerSpec, ...] = SERVER_TYPES[:3]

ALL_SERVER_TYPES: tuple[ServerSpec, ...] = SERVER_TYPES

_SERVER_TYPES_BY_NAME: dict[str, ServerSpec] = {
    spec.name: spec for spec in SERVER_TYPES
}


def vm_type(name: str) -> VMSpec:
    """Look up a Table I VM type by name.

    Raises :class:`ValidationError` (with the available names) when the
    type does not exist.
    """
    try:
        return VM_TYPES[name]
    except KeyError:
        raise ValidationError(
            f"unknown VM type {name!r}; available: {sorted(VM_TYPES)}"
        ) from None


def server_type(name: str) -> ServerSpec:
    """Look up a Table II server type by name."""
    try:
        return _SERVER_TYPES_BY_NAME[name]
    except KeyError:
        raise ValidationError(
            f"unknown server type {name!r}; available: "
            f"{sorted(_SERVER_TYPES_BY_NAME)}"
        ) from None
