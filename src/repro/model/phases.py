"""Time-varying VM demand (the paper's general ``R_jt`` formulation).

The paper's model lets a VM's CPU and memory demand differ per time unit
(``R^CPU_jt``, ``R^MEM_jt``); its *simulations* then fix demand per VM
("the resource demands of each VM are stable", Sec. IV-B1), which is what
the plain :class:`~repro.model.vm.VM` captures. :class:`PhasedVM`
implements the general case as a sequence of *phases* — consecutive
sub-intervals with constant demand — which is both how real recorders
emit usage (piecewise-constant samples) and exactly expressive enough for
the integer-time model.

:func:`demand_profile` is the uniform accessor the rest of the library
uses: it yields ``(interval, cpu, memory)`` pieces for plain and phased
VMs alike, so capacity tracking, validation, the ILP and the simulator
handle both transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.exceptions import ValidationError
from repro.model.intervals import TimeInterval
from repro.model.vm import VM, VMSpec

__all__ = ["DemandPhase", "PhasedVM", "demand_profile", "demand_at"]


@dataclass(frozen=True)
class DemandPhase:
    """A constant-demand stretch of a VM's lifetime."""

    duration: int
    cpu: float
    memory: float

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValidationError(
                f"phase duration must be >= 1, got {self.duration}")
        if self.cpu < 0 or self.memory < 0:
            raise ValidationError("phase demands must be non-negative")
        if self.cpu == 0 and self.memory == 0:
            raise ValidationError(
                "a phase must demand some resource (drop the phase "
                "instead of zeroing it)")


@dataclass(frozen=True)
class PhasedVM(VM):
    """A VM whose demand varies over its lifetime in phases.

    The inherited ``spec`` carries the *peak* demand over all phases, so
    every consumer that treats the VM conservatively (``vm.cpu``,
    ``vm.memory``) remains sound; phase-aware consumers go through
    :func:`demand_profile`. Phases must tile the interval exactly.
    """

    phases: tuple[DemandPhase, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.phases:
            raise ValidationError("a PhasedVM needs at least one phase")
        total = sum(phase.duration for phase in self.phases)
        if total != self.duration:
            raise ValidationError(
                f"phases cover {total} time units but the interval "
                f"spans {self.duration}")
        peak_cpu = max(phase.cpu for phase in self.phases)
        peak_mem = max(phase.memory for phase in self.phases)
        if abs(peak_cpu - self.spec.cpu) > 1e-9 or \
                abs(peak_mem - self.spec.memory) > 1e-9:
            raise ValidationError(
                f"spec must carry the peak demand ({peak_cpu}cu/"
                f"{peak_mem}GB), got {self.spec.cpu}cu/"
                f"{self.spec.memory}GB")

    @classmethod
    def from_phases(cls, vm_id: int, start: int,
                    phases: Sequence[DemandPhase],
                    name: str = "phased") -> "PhasedVM":
        """Build a phased VM starting at ``start``; the spec is derived."""
        phases = tuple(phases)
        if not phases:
            raise ValidationError("phases must be non-empty")
        total = sum(phase.duration for phase in phases)
        spec = VMSpec(name,
                      cpu=max(p.cpu for p in phases),
                      memory=max(p.memory for p in phases))
        return cls(vm_id=vm_id, spec=spec,
                   interval=TimeInterval(start, start + total - 1),
                   phases=phases)

    @property
    def cpu_time(self) -> float:
        """``sum_t R^CPU_jt`` — the exact Eq.-3 integral over phases."""
        return sum(phase.cpu * phase.duration for phase in self.phases)

    def demand_at(self, t: int) -> tuple[float, float]:
        """The (cpu, memory) demand during time unit ``t`` (0 outside)."""
        if not self.active_at(t):
            return 0.0, 0.0
        offset = t - self.start
        for phase in self.phases:
            if offset < phase.duration:
                return phase.cpu, phase.memory
            offset -= phase.duration
        raise AssertionError("phases tile the interval")  # pragma: no cover


def demand_profile(vm: VM) -> Iterator[tuple[TimeInterval, float, float]]:
    """Yield ``(interval, cpu, memory)`` pieces of a VM's demand.

    A plain VM yields one piece covering its whole interval; a
    :class:`PhasedVM` yields one piece per phase.
    """
    if isinstance(vm, PhasedVM):
        t = vm.start
        for phase in vm.phases:
            yield (TimeInterval(t, t + phase.duration - 1),
                   phase.cpu, phase.memory)
            t += phase.duration
    else:
        yield vm.interval, vm.cpu, vm.memory


def demand_at(vm: VM, t: int) -> tuple[float, float]:
    """The (cpu, memory) demand of any VM at time ``t`` (0 outside)."""
    if isinstance(vm, PhasedVM):
        return vm.demand_at(t)
    if vm.active_at(t):
        return vm.cpu, vm.memory
    return 0.0, 0.0


def split_vm(vm: VM, t: int, head_id: int, tail_id: int
             ) -> tuple[VM, VM]:
    """Split ``vm`` at ``t`` into a head ``[start, t-1]`` and a tail
    ``[t, end]``, preserving phase structure for :class:`PhasedVM`.

    Used by migration (the tail moves servers) and failure recovery (the
    tail restarts elsewhere). ``t`` must lie strictly inside the
    interval so both pieces are non-empty.
    """
    if not vm.start < t <= vm.end:
        raise ValidationError(
            f"split point {t} not strictly inside {vm.interval}")
    head_iv = TimeInterval(vm.start, t - 1)
    tail_iv = TimeInterval(t, vm.end)
    if not isinstance(vm, PhasedVM):
        return (VM(vm_id=head_id, spec=vm.spec, interval=head_iv),
                VM(vm_id=tail_id, spec=vm.spec, interval=tail_iv))
    head_phases: list[DemandPhase] = []
    tail_phases: list[DemandPhase] = []
    cursor = vm.start
    for phase in vm.phases:
        phase_start = cursor
        phase_end = cursor + phase.duration - 1
        cursor = phase_end + 1
        if phase_end < t:
            head_phases.append(phase)
        elif phase_start >= t:
            tail_phases.append(phase)
        else:  # the phase straddles the split point
            head_phases.append(DemandPhase(
                duration=t - phase_start, cpu=phase.cpu,
                memory=phase.memory))
            tail_phases.append(DemandPhase(
                duration=phase_end - t + 1, cpu=phase.cpu,
                memory=phase.memory))
    return (PhasedVM.from_phases(head_id, head_iv.start, head_phases,
                                 name=vm.spec.name),
            PhasedVM.from_phases(tail_id, tail_iv.start, tail_phases,
                                 name=vm.spec.name))
