"""Closed integer time intervals and interval algebra.

The paper models time in discrete units (minutes). A VM occupies its server
for the closed interval ``[t_s, t_e]`` — both endpoints inclusive — so an
interval's *length* is ``end - start + 1`` time units. Everything downstream
(busy/idle segments, the ILP time dimension, the discrete-event clock) builds
on the :class:`TimeInterval` type and the merge/gap helpers here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import ValidationError

__all__ = [
    "TimeInterval",
    "merge_intervals",
    "gaps_between",
    "total_length",
    "intervals_overlap",
]


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A closed interval ``[start, end]`` of integer time units.

    Instances are immutable, hashable and ordered lexicographically by
    ``(start, end)``, which makes them directly sortable and usable as
    dictionary keys.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or not isinstance(self.end, int):
            raise ValidationError(
                f"interval endpoints must be integers, got "
                f"({self.start!r}, {self.end!r})"
            )
        if self.end < self.start:
            raise ValidationError(
                f"interval end {self.end} precedes start {self.start}"
            )

    @property
    def length(self) -> int:
        """Number of time units covered (closed interval: ``end-start+1``)."""
        return self.end - self.start + 1

    def contains(self, t: int) -> bool:
        """Whether time unit ``t`` lies inside this interval."""
        return self.start <= t <= self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """Whether the two closed intervals share at least one time unit."""
        return self.start <= other.end and other.start <= self.end

    def adjacent(self, other: "TimeInterval") -> bool:
        """Whether the intervals touch without overlapping (no gap between)."""
        return self.end + 1 == other.start or other.end + 1 == self.start

    def intersection(self, other: "TimeInterval") -> "TimeInterval | None":
        """The overlapping sub-interval, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return TimeInterval(lo, hi)

    def union(self, other: "TimeInterval") -> "TimeInterval":
        """Smallest interval covering both; they must overlap or touch."""
        if not (self.overlaps(other) or self.adjacent(other)):
            raise ValidationError(
                f"cannot union disjoint intervals {self} and {other}"
            )
        return TimeInterval(min(self.start, other.start),
                            max(self.end, other.end))

    def shift(self, delta: int) -> "TimeInterval":
        """A copy translated by ``delta`` time units."""
        return TimeInterval(self.start + delta, self.end + delta)

    def times(self) -> Iterator[int]:
        """Iterate the individual time units covered."""
        return iter(range(self.start, self.end + 1))

    def __str__(self) -> str:
        return f"[{self.start}, {self.end}]"


def merge_intervals(intervals: Iterable[TimeInterval]) -> list[TimeInterval]:
    """Merge intervals into maximal disjoint, sorted intervals.

    Overlapping *and adjacent* intervals coalesce: ``[1,3]`` and ``[4,6]``
    merge to ``[1,6]`` because no idle time unit separates them. This is
    exactly the busy-segment semantics of the paper's Fig. 1.
    """
    ordered = sorted(intervals)
    if not ordered:
        return []
    merged = [ordered[0]]
    for iv in ordered[1:]:
        last = merged[-1]
        if iv.start <= last.end + 1:
            merged[-1] = TimeInterval(last.start, max(last.end, iv.end))
        else:
            merged.append(iv)
    return merged


def gaps_between(intervals: Sequence[TimeInterval]) -> list[TimeInterval]:
    """Idle gaps strictly between the merged spans of ``intervals``.

    The result excludes any time before the first or after the last busy
    segment (the paper assumes servers sleep outside ``[first, last]``).
    """
    merged = merge_intervals(intervals)
    gaps: list[TimeInterval] = []
    for prev, nxt in zip(merged, merged[1:]):
        gaps.append(TimeInterval(prev.end + 1, nxt.start - 1))
    return gaps


def total_length(intervals: Iterable[TimeInterval]) -> int:
    """Total number of distinct time units covered by ``intervals``."""
    return sum(iv.length for iv in merge_intervals(intervals))


def intervals_overlap(intervals: Sequence[TimeInterval]) -> bool:
    """Whether any two intervals in the sequence share a time unit."""
    ordered = sorted(intervals)
    return any(a.end >= b.start for a, b in zip(ordered, ordered[1:]))
