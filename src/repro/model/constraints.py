"""Placement constraints: affinity and anti-affinity groups.

Cloud schedulers honour placement rules beyond capacity: replicas of a
service must land on *different* servers (anti-affinity, for fault
isolation), while chatty tiers may need to share one (affinity, for
locality). This module adds both as a first-class
:class:`PlacementConstraints` object that the allocator framework and the
exact ILP both enforce, so the energy *price* of isolation becomes
measurable (see ``benchmarks/test_constraints_price.py``).

Semantics
---------
* an **affinity group** is a set of VM ids that must all be placed on
  the same server;
* an **anti-affinity group** is a set of VM ids of which no two may
  share a server;
* groups may overlap arbitrarily, but a pair of VMs cannot be forced
  both together and apart — that contradiction is rejected eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Iterable, Mapping

from repro.exceptions import ValidationError
from repro.model.allocation import Allocation

__all__ = ["PlacementConstraints"]


def _freeze(groups: Iterable[AbstractSet[int] | Iterable[int]]
            ) -> tuple[frozenset[int], ...]:
    frozen = []
    for group in groups:
        members = frozenset(int(v) for v in group)
        if len(members) < 2:
            raise ValidationError(
                f"constraint groups need at least two VMs, got {members}")
        frozen.append(members)
    return tuple(frozen)


@dataclass(frozen=True)
class PlacementConstraints:
    """Immutable affinity / anti-affinity rules over VM ids."""

    colocate: tuple[frozenset[int], ...] = field(default=())
    separate: tuple[frozenset[int], ...] = field(default=())

    @classmethod
    def build(cls, *, colocate: Iterable[Iterable[int]] = (),
              separate: Iterable[Iterable[int]] = ()
              ) -> "PlacementConstraints":
        """Validate and freeze group definitions.

        Raises :class:`ValidationError` on degenerate groups or on a pair
        of VMs constrained both together and apart (directly, or through
        the transitive closure of affinity groups).
        """
        constraints = cls(colocate=_freeze(colocate),
                          separate=_freeze(separate))
        constraints._check_consistency()
        return constraints

    @property
    def is_trivial(self) -> bool:
        return not self.colocate and not self.separate

    # -- derived structure ---------------------------------------------------

    def affinity_classes(self) -> list[frozenset[int]]:
        """Transitive closure of the colocate groups (disjoint classes)."""
        parent: dict[int, int] = {}

        def find(v: int) -> int:
            parent.setdefault(v, v)
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        for group in self.colocate:
            members = sorted(group)
            root = find(members[0])
            for other in members[1:]:
                parent[find(other)] = root
        classes: dict[int, set[int]] = {}
        for v in parent:
            classes.setdefault(find(v), set()).add(v)
        return [frozenset(c) for c in classes.values()]

    def _check_consistency(self) -> None:
        class_of: dict[int, frozenset[int]] = {}
        for cls_ in self.affinity_classes():
            for v in cls_:
                class_of[v] = cls_
        for group in self.separate:
            members = sorted(group)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    if a in class_of and class_of[a] == class_of.get(b):
                        raise ValidationError(
                            f"VMs {a} and {b} are constrained both to "
                            f"colocate and to separate")

    # -- checking placements ---------------------------------------------------

    def allows(self, vm_id: int, server_id: int,
               placed: Mapping[int, int]) -> bool:
        """Whether placing ``vm_id`` on ``server_id`` respects the rules,
        given the servers of already-placed VMs (``vm id -> server id``).

        Unplaced group members impose nothing yet — the allocator places
        VMs one at a time and earlier decisions bind later ones.
        """
        for group in self.colocate:
            if vm_id in group:
                for other in group:
                    other_server = placed.get(other)
                    if other_server is not None and \
                            other_server != server_id:
                        return False
        for group in self.separate:
            if vm_id in group:
                for other in group:
                    if other != vm_id and placed.get(other) == server_id:
                        return False
        return True

    def validate_allocation(self, allocation: Allocation) -> None:
        """Check a finished allocation; raises on any violated group."""
        server_of = {vm.vm_id: sid for vm, sid in allocation.items()}
        for group in self.colocate:
            servers = {server_of[v] for v in group if v in server_of}
            if len(servers) > 1:
                raise ValidationError(
                    f"affinity group {sorted(group)} spans servers "
                    f"{sorted(servers)}")
        for group in self.separate:
            seen: dict[int, int] = {}
            for v in sorted(group):
                if v not in server_of:
                    continue
                sid = server_of[v]
                if sid in seen:
                    raise ValidationError(
                        f"anti-affinity group {sorted(group)}: VMs "
                        f"{seen[sid]} and {v} share server {sid}")
                seen[sid] = v

    def is_satisfied_by(self, allocation: Allocation) -> bool:
        """Boolean form of :meth:`validate_allocation`."""
        try:
            self.validate_allocation(allocation)
        except ValidationError:
            return False
        return True
