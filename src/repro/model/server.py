"""Server specifications and instances.

A :class:`ServerSpec` corresponds to a row of the paper's Table II: resource
capacities plus the affine power-model parameters and the state-transition
time. Servers are *non-homogeneous* — every spec carries its own power curve
and transition cost, which is the central modelling difference from prior
work the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = ["ServerSpec", "Server"]


@dataclass(frozen=True)
class ServerSpec:
    """An immutable server type.

    Parameters
    ----------
    name:
        Human-readable type name (e.g. ``"type1"``).
    cpu_capacity:
        CPU capacity ``C^CPU_i`` in compute units.
    memory_capacity:
        Memory capacity ``C^MEM_i`` in GBytes.
    p_idle:
        Power draw (watts) when active but running no load.
    p_peak:
        Power draw (watts) at 100 % CPU load.
    transition_time:
        Time units needed to switch from power-saving to active state.
        During the whole switch the server draws peak power (Gandhi et al.,
        IGCC'12), so the transition energy is ``alpha = p_peak *
        transition_time``.
    """

    name: str
    cpu_capacity: float
    memory_capacity: float
    p_idle: float
    p_peak: float
    transition_time: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_capacity <= 0:
            raise ValidationError(f"server type {self.name!r}: cpu_capacity "
                                  f"must be positive, got {self.cpu_capacity}")
        if self.memory_capacity <= 0:
            raise ValidationError(
                f"server type {self.name!r}: memory_capacity must be "
                f"positive, got {self.memory_capacity}")
        if self.p_idle < 0:
            raise ValidationError(f"server type {self.name!r}: p_idle must "
                                  f"be non-negative, got {self.p_idle}")
        if self.p_peak < self.p_idle:
            raise ValidationError(
                f"server type {self.name!r}: p_peak ({self.p_peak}) must be "
                f">= p_idle ({self.p_idle})")
        if self.transition_time < 0:
            raise ValidationError(
                f"server type {self.name!r}: transition_time must be "
                f"non-negative, got {self.transition_time}")

    @property
    def transition_cost(self) -> float:
        """Energy ``alpha_i`` of one power-saving -> active switch.

        The server draws peak power for the whole transition
        (Sec. IV-B3), so ``alpha_i = P_peak,i * transition_time_i``.
        """
        return self.p_peak * self.transition_time

    @property
    def power_per_cpu_unit(self) -> float:
        """Marginal power ``P^1_i`` of one compute unit of load (Eq. 2)."""
        return (self.p_peak - self.p_idle) / self.cpu_capacity

    @property
    def idle_peak_ratio(self) -> float:
        """``P_idle / P_peak`` — the paper keeps this in the 40-50 % band."""
        return self.p_idle / self.p_peak

    def power_at_load(self, cpu_used: float) -> float:
        """Active power at ``cpu_used`` compute units of load (Eq. 1).

        ``P(u) = P_idle + (P_peak - P_idle) * u`` with
        ``u = cpu_used / cpu_capacity``.
        """
        if cpu_used < 0:
            raise ValidationError(f"cpu_used must be non-negative, got "
                                  f"{cpu_used}")
        utilization = cpu_used / self.cpu_capacity
        if utilization > 1 + 1e-9:
            raise ValidationError(
                f"cpu_used {cpu_used} exceeds capacity {self.cpu_capacity} "
                f"of server type {self.name!r}")
        return self.p_idle + (self.p_peak - self.p_idle) * min(utilization, 1.0)

    def with_transition_time(self, transition_time: float) -> "ServerSpec":
        """A copy of this spec with a different transition time."""
        return ServerSpec(
            name=self.name,
            cpu_capacity=self.cpu_capacity,
            memory_capacity=self.memory_capacity,
            p_idle=self.p_idle,
            p_peak=self.p_peak,
            transition_time=transition_time,
        )

    def __str__(self) -> str:
        return (f"{self.name}({self.cpu_capacity}cu/"
                f"{self.memory_capacity}GB, {self.p_idle}-{self.p_peak}W)")


@dataclass(frozen=True)
class Server:
    """A physical server: a spec bound to a fleet-unique id."""

    server_id: int
    spec: ServerSpec

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ValidationError(f"server_id must be non-negative, got "
                                  f"{self.server_id}")

    @property
    def cpu_capacity(self) -> float:
        return self.spec.cpu_capacity

    @property
    def memory_capacity(self) -> float:
        return self.spec.memory_capacity

    @property
    def p_idle(self) -> float:
        return self.spec.p_idle

    @property
    def p_peak(self) -> float:
        return self.spec.p_peak

    @property
    def transition_cost(self) -> float:
        return self.spec.transition_cost

    @property
    def power_per_cpu_unit(self) -> float:
        return self.spec.power_per_cpu_unit

    def fits(self, cpu: float, memory: float) -> bool:
        """Whether a demand could ever fit on an empty instance of this
        server (a necessary feasibility condition for any placement)."""
        return cpu <= self.cpu_capacity and memory <= self.memory_capacity

    def __str__(self) -> str:
        return f"srv{self.server_id}:{self.spec.name}"
