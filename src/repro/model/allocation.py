"""Allocation results: the VM -> server mapping an allocator produces.

An :class:`Allocation` is the common currency between the allocators, the
ILP solver, the energy accounting and the metrics: an immutable mapping from
VM to server id, together with validation of the paper's constraints
(Eqs. 9-12) — every VM placed on exactly one server, and per-time-unit CPU
and memory capacity respected on every server.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.exceptions import CapacityError, ValidationError
from repro.model.cluster import Cluster
from repro.model.vm import VM

__all__ = ["Allocation"]


class Allocation:
    """An immutable assignment of VMs to servers.

    Parameters
    ----------
    cluster:
        The fleet the VMs were placed onto.
    placements:
        Mapping from :class:`~repro.model.vm.VM` to server id.
    """

    def __init__(self, cluster: Cluster,
                 placements: Mapping[VM, int]) -> None:
        self._cluster = cluster
        self._placements: dict[VM, int] = dict(placements)
        for vm, server_id in self._placements.items():
            if not 0 <= server_id < len(cluster):
                raise ValidationError(
                    f"{vm} placed on unknown server id {server_id}")
        by_server: dict[int, list[VM]] = {}
        for vm, server_id in self._placements.items():
            by_server.setdefault(server_id, []).append(vm)
        for vms in by_server.values():
            vms.sort(key=lambda v: (v.start, v.end, v.vm_id))
        self._by_server = by_server

    # -- accessors ---------------------------------------------------------

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def vms(self) -> tuple[VM, ...]:
        """All placed VMs, ordered by (start, end, id)."""
        return tuple(sorted(self._placements,
                            key=lambda v: (v.start, v.end, v.vm_id)))

    def server_of(self, vm: VM) -> int:
        """The server id the VM was placed on."""
        try:
            return self._placements[vm]
        except KeyError:
            raise ValidationError(f"{vm} is not part of this allocation") \
                from None

    def vms_on(self, server_id: int) -> tuple[VM, ...]:
        """The VMs placed on a server, ordered by start time."""
        return tuple(self._by_server.get(server_id, ()))

    def used_servers(self) -> tuple[int, ...]:
        """Ids of servers that host at least one VM, ascending."""
        return tuple(sorted(self._by_server))

    def horizon(self) -> int:
        """``T``: the last time unit any VM is active (0 when empty)."""
        if not self._placements:
            return 0
        return max(vm.end for vm in self._placements)

    def __len__(self) -> int:
        return len(self._placements)

    def __iter__(self) -> Iterator[VM]:
        return iter(self._placements)

    def __contains__(self, vm: VM) -> bool:
        return vm in self._placements

    def items(self) -> Iterable[tuple[VM, int]]:
        return self._placements.items()

    # -- validation --------------------------------------------------------

    def validate(self, *, vms: Iterable[VM] | None = None) -> None:
        """Check the paper's feasibility constraints; raise on violation.

        * every VM of ``vms`` (when given) is placed exactly once
          (constraint 11),
        * at every time unit, CPU and memory usage on each server stay
          within capacity (constraints 9-10).

        Raises
        ------
        ValidationError
            When a VM from ``vms`` is missing from the allocation.
        CapacityError
            When a server is overloaded at some time unit; the error
            carries ``server_id`` and ``time``.
        """
        if vms is not None:
            missing = [vm for vm in vms if vm not in self._placements]
            if missing:
                raise ValidationError(
                    f"{len(missing)} VM(s) not placed, e.g. {missing[0]}")
        from repro.model.phases import demand_profile

        for server_id, placed in self._by_server.items():
            server = self._cluster.server(server_id)
            start = min(vm.start for vm in placed)
            end = max(vm.end for vm in placed)
            span = end - start + 2  # +1 closed interval, +1 diff slack
            cpu = np.zeros(span)
            mem = np.zeros(span)
            for vm in placed:
                for piece, piece_cpu, piece_mem in demand_profile(vm):
                    cpu[piece.start - start] += piece_cpu
                    cpu[piece.end - start + 1] -= piece_cpu
                    mem[piece.start - start] += piece_mem
                    mem[piece.end - start + 1] -= piece_mem
            cpu_profile = np.cumsum(cpu)
            mem_profile = np.cumsum(mem)
            tol = 1e-9
            over_cpu = np.nonzero(
                cpu_profile > server.cpu_capacity + tol)[0]
            if over_cpu.size:
                t = int(over_cpu[0]) + start
                raise CapacityError(
                    f"server {server_id} CPU overloaded at t={t}: "
                    f"{cpu_profile[over_cpu[0]]:.3f} > "
                    f"{server.cpu_capacity}",
                    server_id=server_id, time=t)
            over_mem = np.nonzero(
                mem_profile > server.memory_capacity + tol)[0]
            if over_mem.size:
                t = int(over_mem[0]) + start
                raise CapacityError(
                    f"server {server_id} memory overloaded at t={t}: "
                    f"{mem_profile[over_mem[0]]:.3f} > "
                    f"{server.memory_capacity}",
                    server_id=server_id, time=t)

    def is_valid(self, *, vms: Iterable[VM] | None = None) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(vms=vms)
        except (ValidationError, CapacityError):
            return False
        return True

    def __repr__(self) -> str:
        return (f"Allocation(vms={len(self)}, "
                f"servers_used={len(self._by_server)}/"
                f"{len(self._cluster)})")
