"""Virtual machine specifications and request instances.

A :class:`VMSpec` describes a *type* of VM (the rows of the paper's Table I:
a name plus stable CPU and memory demand), while a :class:`VM` is a concrete
user request — a spec bound to an id and a time interval. The paper assumes
each VM's resource demand is stable over its lifetime (Sec. IV-B1), so the
demand lives on the spec rather than varying per time unit.

Demand may additionally be declared *uncertain*: the optional
``cpu_radius`` / ``mem_radius`` fields turn the scalar demand into the
interval ``[nominal - radius, nominal + radius]``. Radii default to 0
(today's exact behaviour, bit for bit) and only matter when an active
:class:`~repro.robust.config.RobustnessConfig` rides in the engine
config — see :mod:`repro.robust`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.model.intervals import TimeInterval

__all__ = ["VMSpec", "VM"]


@dataclass(frozen=True)
class VMSpec:
    """An immutable VM type: resource demand in compute units and GBytes."""

    name: str
    cpu: float
    memory: float
    #: demand uncertainty radii: the true demand may land anywhere in
    #: ``[nominal - radius, nominal + radius]``; 0 means exact demand.
    cpu_radius: float = 0.0
    mem_radius: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu <= 0:
            raise ValidationError(f"VM type {self.name!r}: cpu must be "
                                  f"positive, got {self.cpu}")
        if self.memory <= 0:
            raise ValidationError(f"VM type {self.name!r}: memory must be "
                                  f"positive, got {self.memory}")
        if not 0 <= self.cpu_radius <= self.cpu:
            raise ValidationError(
                f"VM type {self.name!r}: cpu_radius must lie in "
                f"[0, cpu], got {self.cpu_radius}")
        if not 0 <= self.mem_radius <= self.memory:
            raise ValidationError(
                f"VM type {self.name!r}: mem_radius must lie in "
                f"[0, memory], got {self.mem_radius}")

    def __str__(self) -> str:
        return f"{self.name}({self.cpu}cu/{self.memory}GB)"


@dataclass(frozen=True)
class VM:
    """A VM request: a spec active over the closed interval ``[start, end]``.

    ``start`` and ``end`` are integer time units (minutes in the paper's
    setting); the VM occupies its server for every unit of the interval.
    """

    vm_id: int
    spec: VMSpec
    interval: TimeInterval = field(compare=False)

    def __post_init__(self) -> None:
        if self.vm_id < 0:
            raise ValidationError(f"vm_id must be non-negative, got "
                                  f"{self.vm_id}")

    @property
    def start(self) -> int:
        """Starting time unit ``t_s`` (inclusive)."""
        return self.interval.start

    @property
    def end(self) -> int:
        """Finishing time unit ``t_e`` (inclusive)."""
        return self.interval.end

    @property
    def duration(self) -> int:
        """Lifetime in time units."""
        return self.interval.length

    @property
    def cpu(self) -> float:
        """CPU demand ``R^CPU_j`` in compute units (constant over life)."""
        return self.spec.cpu

    @property
    def memory(self) -> float:
        """Memory demand ``R^MEM_j`` in GBytes (constant over life)."""
        return self.spec.memory

    @property
    def cpu_radius(self) -> float:
        """CPU demand uncertainty radius (0 for exact demand)."""
        return self.spec.cpu_radius

    @property
    def mem_radius(self) -> float:
        """Memory demand uncertainty radius (0 for exact demand)."""
        return self.spec.mem_radius

    @property
    def cpu_time(self) -> float:
        """Total CPU demand integrated over the lifetime.

        This is ``sum_t R^CPU_jt`` from Eq. (3); with stable demand it is
        simply ``cpu * duration``.
        """
        return self.cpu * self.duration

    def active_at(self, t: int) -> bool:
        """Whether the VM runs during time unit ``t``."""
        return self.interval.contains(t)

    def __str__(self) -> str:
        return f"vm{self.vm_id}:{self.spec.name}@{self.interval}"
