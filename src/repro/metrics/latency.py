"""Placement latency: the wait a VM suffers when its server must boot.

The paper's model charges the *energy* of waking a server but not the
*time*: a VM placed on a sleeping server actually waits out the
transition before it can run. This module quantifies that hidden latency
for a finished plan: a VM whose start coincides with the start of one of
its server's active intervals triggered (or joined) a wake-up and waits
``transition_time``; every other VM lands on an already-active server and
starts immediately.

Together with :mod:`repro.extensions.warmpool` this exposes the
energy/latency frontier that aggressive consolidation implicitly trades
along.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.accounting import energy_report
from repro.energy.cost import SleepPolicy
from repro.model.allocation import Allocation

__all__ = ["LatencyStats", "wakeup_latencies", "latency_stats"]


@dataclass(frozen=True)
class LatencyStats:
    """Distribution of per-VM wake-up waits."""

    mean: float
    p95: float
    max: float
    affected: int
    total: int

    @property
    def affected_fraction(self) -> float:
        return self.affected / self.total if self.total else 0.0


def wakeup_latencies(allocation: Allocation, *,
                     policy: SleepPolicy = SleepPolicy.OPTIMAL
                     ) -> dict[int, float]:
    """Per-VM wake-up wait, in time units (0 = started immediately).

    Derived from the plan's active-interval schedule: every active
    interval starts with a power-saving -> active transition, so the VMs
    that start exactly at an interval's start waited for it.
    """
    report = energy_report(allocation, policy=policy)
    wake_starts: dict[int, set[int]] = {
        r.server_id: {interval.start for interval in r.active}
        for r in report.servers
    }
    latencies: dict[int, float] = {}
    for vm, server_id in allocation.items():
        spec = allocation.cluster.server(server_id).spec
        if vm.start in wake_starts.get(server_id, ()):
            latencies[vm.vm_id] = spec.transition_time
        else:
            latencies[vm.vm_id] = 0.0
    return latencies


def latency_stats(allocation: Allocation, *,
                  policy: SleepPolicy = SleepPolicy.OPTIMAL
                  ) -> LatencyStats:
    """Summary statistics of :func:`wakeup_latencies`."""
    latencies = wakeup_latencies(allocation, policy=policy)
    if not latencies:
        return LatencyStats(mean=0.0, p95=0.0, max=0.0, affected=0,
                            total=0)
    values = np.array(list(latencies.values()))
    return LatencyStats(
        mean=float(values.mean()),
        p95=float(np.percentile(values, 95)),
        max=float(values.max()),
        affected=int((values > 0).sum()),
        total=int(values.size),
    )
