"""Metrics: energy reduction ratio, utilisation, curve fits, aggregation."""

from repro.metrics.fitting import (
    FitResult,
    adjusted_r_squared,
    exponential_fit,
    linear_fit,
    logarithmic_fit,
)
from repro.metrics.latency import (
    LatencyStats,
    latency_stats,
    wakeup_latencies,
)
from repro.metrics.reduction import energy_reduction_ratio
from repro.metrics.significance import (
    PairedComparison,
    bootstrap_mean_diff,
    paired_t_test,
)
from repro.metrics.summary import Aggregate, aggregate
from repro.metrics.utilization import (
    UtilizationStats,
    server_profiles,
    utilization_stats,
)

__all__ = [
    "FitResult",
    "adjusted_r_squared",
    "exponential_fit",
    "linear_fit",
    "logarithmic_fit",
    "LatencyStats",
    "latency_stats",
    "wakeup_latencies",
    "energy_reduction_ratio",
    "PairedComparison",
    "bootstrap_mean_diff",
    "paired_t_test",
    "Aggregate",
    "aggregate",
    "UtilizationStats",
    "server_profiles",
    "utilization_stats",
]
