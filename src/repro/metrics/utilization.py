"""Resource utilisation metrics (paper Sec. IV-C definition).

"The CPU utilization of a server at time t is the percentage of CPU
capacity used by the VMs running at that time. The average CPU utilization
is calculated by averaging **nonzero** utilization values, measuring the
CPU usage when the server is active." Memory is treated the same way.

Averaging only nonzero samples means the metric reflects how well *active*
servers are packed, independent of how many servers sleep — exactly the
quantity the paper plots in Figs. 3 and 8 and uses as the system-load axis
of Figs. 4 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.allocation import Allocation

__all__ = ["UtilizationStats", "utilization_stats", "server_profiles"]


@dataclass(frozen=True)
class UtilizationStats:
    """Average nonzero CPU and memory utilisation over a fleet."""

    cpu: float
    memory: float
    cpu_samples: int
    memory_samples: int

    @property
    def imbalance(self) -> float:
        """Absolute gap between the two utilisations (paper: "unevenness")."""
        return abs(self.cpu - self.memory)


def server_profiles(allocation: Allocation,
                    server_id: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-time-unit (cpu, memory) usage of one server over its span.

    The arrays cover ``[first_start, last_end]`` of the VMs placed on the
    server; both are empty when the server hosts nothing.
    """
    from repro.model.phases import demand_profile

    vms = allocation.vms_on(server_id)
    if not vms:
        return np.zeros(0), np.zeros(0)
    start = min(vm.start for vm in vms)
    end = max(vm.end for vm in vms)
    span = end - start + 2
    cpu = np.zeros(span)
    mem = np.zeros(span)
    for vm in vms:
        for piece, piece_cpu, piece_mem in demand_profile(vm):
            cpu[piece.start - start] += piece_cpu
            cpu[piece.end - start + 1] -= piece_cpu
            mem[piece.start - start] += piece_mem
            mem[piece.end - start + 1] -= piece_mem
    return np.cumsum(cpu)[:-1], np.cumsum(mem)[:-1]


def utilization_stats(allocation: Allocation) -> UtilizationStats:
    """Fleet-wide average nonzero CPU and memory utilisation.

    Every (server, time-unit) pair with nonzero usage contributes one
    sample ``used / capacity``; the result averages the samples across the
    whole fleet, matching the paper's definition.
    """
    cpu_samples: list[np.ndarray] = []
    mem_samples: list[np.ndarray] = []
    for server_id in allocation.used_servers():
        server = allocation.cluster.server(server_id)
        cpu, mem = server_profiles(allocation, server_id)
        cpu_nonzero = cpu[cpu > 0] / server.cpu_capacity
        mem_nonzero = mem[mem > 0] / server.memory_capacity
        if cpu_nonzero.size:
            cpu_samples.append(cpu_nonzero)
        if mem_nonzero.size:
            mem_samples.append(mem_nonzero)
    cpu_all = np.concatenate(cpu_samples) if cpu_samples else np.zeros(0)
    mem_all = np.concatenate(mem_samples) if mem_samples else np.zeros(0)
    return UtilizationStats(
        cpu=float(cpu_all.mean()) if cpu_all.size else 0.0,
        memory=float(mem_all.mean()) if mem_all.size else 0.0,
        cpu_samples=int(cpu_all.size),
        memory_samples=int(mem_all.size),
    )
