"""Multi-seed aggregation: means, spreads and confidence intervals.

Every point in the paper's figures is "averaged over 5 random runs"; the
experiment harness aggregates per-seed measurements through
:func:`aggregate`, which also carries a Student-t confidence interval so
EXPERIMENTS.md can report uncertainty the paper omitted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError

__all__ = ["Aggregate", "aggregate"]


@dataclass(frozen=True)
class Aggregate:
    """Summary statistics of repeated measurements of one quantity."""

    mean: float
    std: float
    sem: float
    ci_low: float
    ci_high: float
    n: int

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci_halfwidth:.2g} (n={self.n})"


def aggregate(values: Sequence[float], confidence: float = 0.95) -> Aggregate:
    """Mean, sample std, SEM and a Student-t confidence interval.

    A single observation yields a degenerate interval at the point itself.
    """
    if not 0 < confidence < 1:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValidationError("cannot aggregate an empty sequence")
    mean = float(data.mean())
    if data.size == 1:
        return Aggregate(mean=mean, std=0.0, sem=0.0, ci_low=mean,
                         ci_high=mean, n=1)
    std = float(data.std(ddof=1))
    sem = std / math.sqrt(data.size)
    t_crit = float(stats.t.ppf((1 + confidence) / 2, df=data.size - 1))
    half = t_crit * sem
    return Aggregate(mean=mean, std=std, sem=sem, ci_low=mean - half,
                     ci_high=mean + half, n=int(data.size))
