"""Statistical significance of algorithm comparisons.

Figures that average a handful of seeds can mislead; these helpers put a
p-value behind "X beats Y". Comparisons are *paired* — both algorithms
run on identical workloads per seed — so the paired t-test and the
paired bootstrap are the right tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError

__all__ = ["PairedComparison", "paired_t_test", "bootstrap_mean_diff"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired significance test on per-seed costs."""

    mean_diff: float
    statistic: float
    p_value: float
    n: int

    @property
    def significant(self) -> bool:
        """Two-sided significance at the conventional 5 % level."""
        return self.p_value < 0.05


def _validate_pairs(a: Sequence[float],
                    b: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(list(a), dtype=float)
    b = np.asarray(list(b), dtype=float)
    if a.size != b.size:
        raise ValidationError(
            f"paired samples differ in length: {a.size} vs {b.size}")
    if a.size < 2:
        raise ValidationError("need at least two pairs")
    return a, b


def paired_t_test(a: Sequence[float],
                  b: Sequence[float]) -> PairedComparison:
    """Two-sided paired t-test on per-seed measurements.

    ``mean_diff`` is ``mean(a - b)``: negative means ``a`` is cheaper.
    Identical samples yield ``p = 1`` (no evidence of a difference).
    """
    a, b = _validate_pairs(a, b)
    diffs = a - b
    if np.ptp(diffs) < 1e-12 * max(1.0, float(np.abs(diffs).max())):
        # Constant difference: zero means no evidence; any nonzero
        # constant is a perfectly consistent difference (p -> 0).
        if abs(diffs[0]) < 1e-15:
            return PairedComparison(mean_diff=0.0, statistic=0.0,
                                    p_value=1.0, n=int(a.size))
        return PairedComparison(mean_diff=float(diffs.mean()),
                                statistic=float("inf"), p_value=0.0,
                                n=int(a.size))
    result = stats.ttest_rel(a, b)
    return PairedComparison(
        mean_diff=float(diffs.mean()),
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        n=int(a.size),
    )


def bootstrap_mean_diff(a: Sequence[float], b: Sequence[float], *,
                        resamples: int = 10_000,
                        confidence: float = 0.95,
                        seed: int | None = None
                        ) -> tuple[float, float, float]:
    """Bootstrap CI for the paired mean difference ``mean(a - b)``.

    Returns ``(mean_diff, ci_low, ci_high)``. Distribution-free, so it
    complements the t-test when seeds are few and skewed.
    """
    if not 0 < confidence < 1:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence}")
    if resamples < 100:
        raise ValidationError(
            f"resamples must be >= 100, got {resamples}")
    a, b = _validate_pairs(a, b)
    diffs = a - b
    rng = np.random.default_rng(seed)
    indices = rng.integers(diffs.size, size=(resamples, diffs.size))
    means = diffs[indices].mean(axis=1)
    alpha = (1 - confidence) / 2
    return (float(diffs.mean()),
            float(np.quantile(means, alpha)),
            float(np.quantile(means, 1 - alpha)))
