"""Least-squares curve fits with adjusted R² (as the paper's figures report).

Every figure in the paper overlays a fitted curve and quotes its adjusted
r-square: linear fits (Figs. 2, 5, 9), logarithmic fits (Figs. 4, 7) and an
exponential fit (Fig. 5, 3-minute transition). These helpers reproduce the
same three families so EXPERIMENTS.md can report fit quality alongside the
raw series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import optimize

from repro.exceptions import ValidationError

__all__ = ["FitResult", "linear_fit", "logarithmic_fit", "exponential_fit",
           "adjusted_r_squared"]


@dataclass(frozen=True)
class FitResult:
    """A fitted curve with its goodness of fit."""

    kind: str
    params: tuple[float, ...]
    r_squared: float
    adj_r_squared: float
    predict: Callable[[float], float]

    def __str__(self) -> str:
        coeffs = ", ".join(f"{p:.4g}" for p in self.params)
        return (f"{self.kind}({coeffs}) adjR2={self.adj_r_squared:.3f}")


def adjusted_r_squared(y: Sequence[float], predicted: Sequence[float],
                       n_params: int) -> tuple[float, float]:
    """Return ``(r_squared, adjusted_r_squared)`` of a fit.

    Adjusted R² penalises parameter count:
    ``1 - (1 - R²)(n - 1) / (n - p - 1)``. When the denominator degenerates
    (tiny samples) the plain R² is returned for both.
    """
    y = np.asarray(y, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if y.size != predicted.size:
        raise ValidationError(
            f"y and predictions differ in length: {y.size} vs "
            f"{predicted.size}")
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    n = y.size
    if n - n_params - 1 <= 0:
        return r2, r2
    adj = 1.0 - (1.0 - r2) * (n - 1) / (n - n_params - 1)
    return r2, adj


def _validate_xy(x: Sequence[float], y: Sequence[float],
                 minimum: int) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size:
        raise ValidationError(
            f"x and y differ in length: {x.size} vs {y.size}")
    if x.size < minimum:
        raise ValidationError(
            f"need at least {minimum} points, got {x.size}")
    return x, y


def linear_fit(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = a + b*x`` by ordinary least squares."""
    x, y = _validate_xy(x, y, 2)
    b, a = np.polyfit(x, y, 1)
    predicted = a + b * x
    r2, adj = adjusted_r_squared(y, predicted, 1)
    return FitResult(kind="linear", params=(float(a), float(b)),
                     r_squared=r2, adj_r_squared=adj,
                     predict=lambda t, a=a, b=b: float(a + b * t))


def logarithmic_fit(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = a + b*ln(x)``; requires strictly positive ``x``."""
    x, y = _validate_xy(x, y, 2)
    if np.any(x <= 0):
        raise ValidationError("logarithmic fit requires positive x values")
    lx = np.log(x)
    b, a = np.polyfit(lx, y, 1)
    predicted = a + b * lx
    r2, adj = adjusted_r_squared(y, predicted, 1)
    return FitResult(kind="logarithmic", params=(float(a), float(b)),
                     r_squared=r2, adj_r_squared=adj,
                     predict=lambda t, a=a, b=b: float(a + b * math.log(t)))


def exponential_fit(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = a * exp(b*x) + c`` by nonlinear least squares.

    The three-parameter saturating exponential matches the paper's Fig. 5
    (3-minute transition curve). Falls back on sensible initial guesses
    derived from the data; raises :class:`ValidationError` when the
    optimiser cannot converge.
    """
    x, y = _validate_xy(x, y, 4)

    def model(t, a, b, c):
        return a * np.exp(b * t) + c

    spread = float(y.max() - y.min()) or 1.0
    x_span = float(x.max() - x.min()) or 1.0
    rates = (0.1, -0.1, 1.0 / x_span, -1.0 / x_span, 3.0 / x_span,
             -3.0 / x_span)
    guesses = [(sign * spread, rate, anchor)
               for rate in rates
               for sign in (1.0, -1.0)
               for anchor in (float(y.min()), float(y.max()),
                              float(y.mean()))]
    best: tuple[float, float, tuple[float, float, float]] | None = None
    last_error: Exception | None = None
    for guess in guesses:
        try:
            params, _ = optimize.curve_fit(model, x, y, p0=guess,
                                           maxfev=20000)
        except (RuntimeError, optimize.OptimizeWarning) as exc:
            last_error = exc
            continue
        predicted = model(x, *params)
        if not np.all(np.isfinite(predicted)):
            continue
        r2, adj = adjusted_r_squared(y, predicted, 3)
        if best is None or r2 > best[0]:
            best = (r2, adj, tuple(float(p) for p in params))
        if r2 > 0.999999:
            break
    if best is None:
        raise ValidationError(
            f"exponential fit failed to converge: {last_error}")
    r2, adj, (a, b, c) = best
    return FitResult(
        kind="exponential", params=(a, b, c),
        r_squared=r2, adj_r_squared=adj,
        predict=lambda t, a=a, b=b, c=c: float(a * math.exp(b * t) + c))
