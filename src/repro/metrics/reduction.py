"""Energy reduction ratio — the paper's headline metric (Sec. IV-A).

    reduction = (cost_baseline - cost_algorithm) / cost_baseline

where the baseline is FFPS. Positive values mean the algorithm saves energy
relative to the baseline; the paper reports this as a percentage.
"""

from __future__ import annotations

from repro.exceptions import ValidationError

__all__ = ["energy_reduction_ratio"]


def energy_reduction_ratio(baseline_cost: float,
                           algorithm_cost: float) -> float:
    """Fraction of the baseline's energy saved by the algorithm.

    Raises :class:`ValidationError` for a non-positive baseline — a ratio
    against zero or negative energy is meaningless.
    """
    if baseline_cost <= 0:
        raise ValidationError(
            f"baseline cost must be positive, got {baseline_cost}")
    return (baseline_cost - algorithm_cost) / baseline_cost
