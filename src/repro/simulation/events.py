"""Event types and the event queue driving the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)``: priority encodes the
within-time-unit ordering the energy model requires — a server must finish
waking before a VM can start on it, and VM departures at the end of a time
unit precede a sleep decision taking effect in the next one. The sequence
number makes ordering stable and deterministic for simultaneous events.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import SimulationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """What happens at an event; the int value is the in-tick priority."""

    SERVER_WAKE = 0     # server becomes active at the start of the tick
    VM_START = 1        # VM begins occupying its server this tick
    VM_END = 2          # VM frees its server at the end of the tick
    SERVER_SLEEP = 3    # server powers down after this tick


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence in the simulation."""

    time: int
    kind: EventKind
    sequence: int = field(compare=True)
    server_id: int = field(compare=False, default=-1)
    vm_id: int = field(compare=False, default=-1)

    def __str__(self) -> str:
        subject = (f"vm{self.vm_id}" if self.vm_id >= 0
                   else f"srv{self.server_id}")
        return f"t={self.time} {self.kind.name} {subject}"


class EventQueue:
    """A deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._closed = False

    def push(self, time: int, kind: EventKind, *, server_id: int = -1,
             vm_id: int = -1) -> Event:
        """Schedule an event; returns the stored record."""
        if self._closed:
            raise SimulationError("cannot schedule on a drained queue")
        if time < 0:
            raise SimulationError(f"event time must be >= 0, got {time}")
        event = Event(time=time, kind=kind, sequence=next(self._counter),
                      server_id=server_id, vm_id=vm_id)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event | None:
        """The earliest event without removing it, or ``None``."""
        return self._heap[0] if self._heap else None

    def drain(self) -> Iterator[Event]:
        """Consume every event in order; the queue then refuses pushes."""
        while self._heap:
            yield heapq.heappop(self._heap)
        self._closed = True

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
