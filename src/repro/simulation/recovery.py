"""Shared crash-recovery mechanics: remainder splitting and target choice.

Both failure paths — the offline replay of
:func:`repro.simulation.failures.inject_failures` and the live
``fail_server`` operation of the allocation daemon
(:mod:`repro.service.daemon`) — recover a crashed server's VMs the same
way: each affected VM is cut at the failure tick, the interrupted head
stays on the victim's books as wasted (but already spent) energy, and
the remainder is offered to a recovery allocator over the surviving
fleet. This module holds that mechanics once, so the online service and
the offline simulator provably agree: the end-to-end test streams a
workload at a daemon, injects failures live, and asserts the final
fleet energy equals an offline ``inject_failures`` replay of the same
schedule to 1e-12 relative. The consolidation planner
(:mod:`repro.consolidation.planner`) is the third consumer: a live
migration is the same cut — :func:`split_remainder` at the episode tick
— with the remainder moved for profit instead of necessity.

The two primitives:

* :func:`split_remainder` — the cut rule. A VM that had not started yet
  moves whole (same id, no waste); a running VM is split by
  :func:`~repro.model.phases.split_vm` into a head ``[start, t-1]``
  (new id, stays behind) and a remainder ``[t, end]`` (new id,
  re-placed), consuming exactly two ids from the caller's counter.
* :func:`recover_target` — the re-placement rule. Survivors are scanned
  in server-id order, filtered by :meth:`ServerState.probe`, and the
  recovery allocator's ``choose`` picks among the feasible ones —
  ``None`` when the remainder fits nowhere (a lost VM).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.phases import split_vm
from repro.model.vm import VM

__all__ = ["split_remainder", "recover_target"]


def split_remainder(vm: VM, time: int, next_id: int
                    ) -> tuple[VM | None, VM, int]:
    """Cut ``vm`` at failure tick ``time``.

    Returns ``(head, remainder, next_id)``:

    * ``head`` is the interrupted prefix ``[start, time - 1]`` that ran
      on the dead server — ``None`` when the VM had not started yet (it
      moves whole, keeping its id);
    * ``remainder`` is the part still to run, ``[time, end]`` for a
      split or the original VM for a whole move;
    * ``next_id`` is the caller's id counter after the cut (advanced by
      two for a split — head and remainder each get a fresh id — and
      untouched for a whole move).

    Phase-preserving: a :class:`~repro.model.phases.PhasedVM` keeps its
    demand profile on both sides of the cut.
    """
    if vm.start >= time:
        return None, vm, next_id  # had not started: move it whole
    head, remainder = split_vm(vm, time, next_id, next_id + 1)
    return head, remainder, next_id + 2


def recover_target(remainder: VM,
                   states: Mapping[int, ServerState] | Sequence[ServerState],
                   dead: Mapping[int, int],
                   recovery: Allocator) -> ServerState | None:
    """Pick a surviving server for ``remainder`` via the recovery policy.

    ``states`` maps server id to state (or is a list indexed by server
    id); ``dead`` holds the crashed server ids. Survivors are considered
    in ascending server-id order, the probe-feasible ones go to
    ``recovery.choose``, and ``None`` means the remainder is lost.
    """
    if isinstance(states, Mapping):
        items = sorted(states.items())
    else:
        items = list(enumerate(states))
    survivors = [state for sid, state in items if sid not in dead]
    feasible = [state for state in survivors if state.probe(remainder)]
    if not feasible:
        return None
    return recovery.choose(remainder, feasible)
