"""Admission control: what happens when the fleet is actually full.

The paper assumes every VM fits somewhere (its fleets are sized at half
the VM count). A production data center hits capacity, and the controller
must then *reject* the request or *defer* it. This module runs the online
arrival process with exactly that policy envelope:

* each VM is offered to the allocator on arrival;
* if nothing admissible exists, the request may be delayed (its whole
  interval shifted later) by up to ``max_delay`` time units, taking the
  first delay that fits;
* otherwise it is rejected.

The outcome reports acceptance/rejection counts, total queueing delay,
and the accepted plan's energy — the inputs to a capacity-vs-SLA study
(see ``examples/what_if_planning.py`` for the sizing side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.allocators.base import Allocator
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.phases import PhasedVM
from repro.model.vm import VM

__all__ = ["AdmissionOutcome", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionOutcome:
    """Result of running the arrival process with admission control."""

    allocation: Allocation
    accepted: int
    rejected: tuple[VM, ...]
    delayed: int
    total_delay: int
    total_energy: float

    @property
    def rejection_rate(self) -> float:
        offered = self.accepted + len(self.rejected)
        return len(self.rejected) / offered if offered else 0.0

    @property
    def mean_delay(self) -> float:
        return self.total_delay / self.accepted if self.accepted else 0.0


def _shifted(vm: VM, delay: int) -> VM:
    """The same request starting ``delay`` units later.

    Phased VMs keep their phase structure — phases are relative to the
    start, so shifting the interval moves them all.
    """
    if isinstance(vm, PhasedVM):
        return PhasedVM(vm_id=vm.vm_id, spec=vm.spec,
                        interval=vm.interval.shift(delay),
                        phases=vm.phases)
    return VM(vm_id=vm.vm_id, spec=vm.spec,
              interval=vm.interval.shift(delay))


class AdmissionController:
    """Online arrival processing with reject-or-defer semantics."""

    def __init__(self, allocator: Allocator | None = None,
                 max_delay: int = 0,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL) -> None:
        if max_delay < 0:
            raise ValidationError(
                f"max_delay must be >= 0, got {max_delay}")
        self._allocator = allocator if allocator is not None \
            else MinIncrementalEnergy()
        self._max_delay = max_delay
        self._policy = policy

    def run(self, vms: Iterable[VM], cluster: Cluster) -> AdmissionOutcome:
        """Process ``vms`` in arrival order against ``cluster``."""
        ordered = sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))
        states = [ServerState(server, policy=self._policy)
                  for server in cluster]
        self._allocator.prepare(states)
        placements: dict[VM, int] = {}
        rejected: list[VM] = []
        delayed = 0
        total_delay = 0
        total_energy = 0.0
        for vm in ordered:
            placed = False
            for delay in range(self._max_delay + 1):
                candidate = vm if delay == 0 else _shifted(vm, delay)
                chosen = self._allocator.select(candidate, states)
                if chosen is None:
                    continue
                total_energy += chosen.place(candidate)
                placements[candidate] = chosen.server.server_id
                if delay:
                    delayed += 1
                    total_delay += delay
                placed = True
                break
            if not placed:
                rejected.append(vm)
        allocation = Allocation(cluster, placements)
        return AdmissionOutcome(
            allocation=allocation,
            accepted=len(placements),
            rejected=tuple(rejected),
            delayed=delayed,
            total_delay=total_delay,
            total_energy=total_energy,
        )
