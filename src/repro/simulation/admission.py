"""Admission control: what happens when the fleet is actually full.

The paper assumes every VM fits somewhere (its fleets are sized at half
the VM count). A production data center hits capacity, and the controller
must then *reject* the request or *defer* it. This module runs the online
arrival process with exactly that policy envelope:

* each VM is offered to the allocator on arrival;
* if nothing admissible exists, the request may be delayed (its whole
  interval shifted later) by up to ``max_delay`` time units, taking the
  first delay that fits;
* otherwise it is rejected.

The outcome reports acceptance/rejection counts, total queueing delay,
and the accepted plan's energy — the inputs to a capacity-vs-SLA study
(see ``examples/what_if_planning.py`` for the sizing side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.allocators.base import Allocator
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.phases import PhasedVM
from repro.model.vm import VM
from repro.obs.explain import ExplainRecorder
from repro.placement.sharding import ShardedFleet

__all__ = ["AdmissionDecision", "AdmissionOutcome", "AdmissionController",
           "offer", "shift_request"]


@dataclass(frozen=True)
class AdmissionOutcome:
    """Result of running the arrival process with admission control."""

    allocation: Allocation
    accepted: int
    rejected: tuple[VM, ...]
    delayed: int
    total_delay: int
    total_energy: float

    @property
    def rejection_rate(self) -> float:
        offered = self.accepted + len(self.rejected)
        return len(self.rejected) / offered if offered else 0.0

    @property
    def mean_delay(self) -> float:
        return self.total_delay / self.accepted if self.accepted else 0.0


def shift_request(vm: VM, delay: int) -> VM:
    """The same request starting ``delay`` units later.

    Phased VMs keep their phase structure — phases are relative to the
    start, so shifting the interval moves them all.
    """
    if delay == 0:
        return vm
    if isinstance(vm, PhasedVM):
        return PhasedVM(vm_id=vm.vm_id, spec=vm.spec,
                        interval=vm.interval.shift(delay),
                        phases=vm.phases)
    return VM(vm_id=vm.vm_id, spec=vm.spec,
              interval=vm.interval.shift(delay))


@dataclass(frozen=True)
class AdmissionDecision:
    """A successful admission: where (and with what delay) a VM lands.

    ``vm`` is the request as admitted — identical to the offered one when
    ``delay == 0``, otherwise shifted ``delay`` units later. The decision
    is advisory: nothing has been placed yet; callers commit it with
    ``state.place(decision.vm)``.
    """

    vm: VM
    state: ServerState
    delay: int


def offer(vm: VM, states: Sequence[ServerState], allocator: Allocator,
          max_delay: int = 0,
          recorder: ExplainRecorder | None = None
          ) -> AdmissionDecision | None:
    """Offer one request to the fleet under reject-or-defer semantics.

    The request is tried as-is, then shifted later one unit at a time up
    to ``max_delay``; the first fit wins. Returns ``None`` when nothing
    admits it — the caller's reject path. ``allocator.prepare`` must have
    been called on ``states`` beforehand (once per arrival process).

    With a ``recorder``, exactly one
    :class:`~repro.obs.explain.PlacementExplanation` is recorded per
    offer: the admitted attempt (carrying its admission ``delay``), or —
    when every shift fails — the undelayed attempt, whose per-candidate
    verdicts show what blocked the request on arrival.

    This is the single-request core shared by the batch
    :class:`AdmissionController` and the online allocation service
    (:mod:`repro.service`).
    """
    if max_delay < 0:
        raise ValidationError(f"max_delay must be >= 0, got {max_delay}")
    undelayed = None
    for delay in range(max_delay + 1):
        candidate = shift_request(vm, delay)
        if recorder is None:
            # A sharded fleet view fans the scan out; the deterministic
            # reduction makes the choice identical to the plain scan.
            if isinstance(states, ShardedFleet):
                chosen = allocator.select_sharded(candidate, states)
            else:
                chosen = allocator.select(candidate, states)
        else:
            chosen, explanation = allocator.explain_select(candidate,
                                                           states)
            explanation = explanation.with_delay(delay)
            if delay == 0:
                undelayed = explanation
            if chosen is not None:
                recorder.record(explanation)
        if chosen is not None:
            return AdmissionDecision(vm=candidate, state=chosen, delay=delay)
    if recorder is not None and undelayed is not None:
        recorder.record(undelayed)
    return None


class AdmissionController:
    """Online arrival processing with reject-or-defer semantics."""

    def __init__(self, allocator: Allocator | None = None,
                 max_delay: int = 0,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL) -> None:
        if max_delay < 0:
            raise ValidationError(
                f"max_delay must be >= 0, got {max_delay}")
        self._allocator = allocator if allocator is not None \
            else MinIncrementalEnergy()
        self._max_delay = max_delay
        self._policy = policy

    def run(self, vms: Iterable[VM], cluster: Cluster) -> AdmissionOutcome:
        """Process ``vms`` in arrival order against ``cluster``."""
        ordered = sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))
        states = [ServerState(server, policy=self._policy)
                  for server in cluster]
        self._allocator.prepare(states)
        placements: dict[VM, int] = {}
        rejected: list[VM] = []
        delayed = 0
        total_delay = 0
        total_energy = 0.0
        for vm in ordered:
            decision = offer(vm, states, self._allocator,
                             max_delay=self._max_delay)
            if decision is None:
                rejected.append(vm)
                continue
            total_energy += decision.state.place(decision.vm)
            placements[decision.vm] = decision.state.server.server_id
            if decision.delay:
                delayed += 1
                total_delay += decision.delay
        allocation = Allocation(cluster, placements)
        return AdmissionOutcome(
            allocation=allocation,
            accepted=len(placements),
            rejected=tuple(rejected),
            delayed=delayed,
            total_delay=total_delay,
            total_energy=total_energy,
        )
