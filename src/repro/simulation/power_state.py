"""The per-server power-state machine.

A server is in exactly one of three states:

* ``POWER_SAVING`` — drawing (approximately) zero power;
* ``TRANSITIONING`` — switching on, drawing peak power for the whole
  transition (Gandhi et al., IGCC'12 — the paper's Sec. IV-B3 rule);
* ``ACTIVE`` — drawing ``P_idle + P^1 * cpu_in_use``;
* ``FAILED`` — crashed: drawing nothing, hosting nothing, refusing
  every operation until :meth:`ServerMachine.recover` brings it back
  to ``POWER_SAVING`` (a recovered server must wake — and pay the
  transition energy ``alpha`` — before hosting again).

The machine enforces legality: VMs may start only on an ACTIVE server,
sleep is only reachable from ACTIVE with no VMs resident, and each
power-saving -> active passage accounts one transition energy ``alpha``.
A crash (:meth:`ServerMachine.fail`) is legal from any live state and
evicts all residents at once — the service layer decides what happens
to them (see :mod:`repro.simulation.recovery`).
"""

from __future__ import annotations

import enum

from repro.exceptions import SimulationError
from repro.model.server import Server

__all__ = ["FleetAggregates", "PowerState", "ServerMachine"]


class PowerState(enum.Enum):
    POWER_SAVING = "power-saving"
    TRANSITIONING = "transitioning"
    ACTIVE = "active"
    FAILED = "failed"


class FleetAggregates:
    """Incrementally-maintained fleet-wide totals.

    A machine with a ``watcher`` brackets every mutation with
    :meth:`remove`/:meth:`add` of its own contribution, so reading any
    fleet total — active/asleep counts, resident VMs and demand,
    instantaneous power — is O(1) instead of a fleet scan. The per-tick
    telemetry sampler depends on this: sampling must not cost a scan of
    a thousand machines on every clock move.

    ``power`` accumulates float add/subtract pairs, so it can drift from
    a fresh scan by rounding noise; use a scan where exact equality
    matters.
    """

    __slots__ = ("active", "asleep", "transitioning", "failed",
                 "running_vms", "resident_cpu", "resident_mem", "power")

    def __init__(self) -> None:
        self.active = 0
        self.asleep = 0
        self.transitioning = 0
        self.failed = 0
        self.running_vms = 0
        self.resident_cpu = 0.0
        self.resident_mem = 0.0
        self.power = 0.0

    def _field(self, state: "PowerState") -> str:
        if state is PowerState.ACTIVE:
            return "active"
        if state is PowerState.POWER_SAVING:
            return "asleep"
        if state is PowerState.TRANSITIONING:
            return "transitioning"
        return "failed"

    def add(self, machine: "ServerMachine") -> None:
        """Count ``machine``'s current contribution into the totals."""
        field = self._field(machine.state)
        setattr(self, field, getattr(self, field) + 1)
        self.running_vms += len(machine.resident_vms)
        self.resident_cpu += machine.resident_cpu
        self.resident_mem += machine.resident_mem
        self.power += machine.power_draw()

    def remove(self, machine: "ServerMachine") -> None:
        """Back ``machine``'s current contribution out of the totals."""
        field = self._field(machine.state)
        setattr(self, field, getattr(self, field) - 1)
        self.running_vms -= len(machine.resident_vms)
        self.resident_cpu -= machine.resident_cpu
        self.resident_mem -= machine.resident_mem
        self.power -= machine.power_draw()


class ServerMachine:
    """Power state, resident VMs and accumulated energy of one server."""

    def __init__(self, server: Server) -> None:
        self.server = server
        self.state = PowerState.POWER_SAVING
        self.resident_cpu = 0.0
        self.resident_mem = 0.0
        self.resident_vms: set[int] = set()
        self.transitions = 0
        #: accumulated transition energy (charged at wake)
        self.transition_energy = 0.0
        #: optional :class:`FleetAggregates` kept in sync across
        #: mutations; all validation happens before the bracket, so a
        #: refused operation leaves the totals untouched
        self.watcher: FleetAggregates | None = None

    # -- state changes -----------------------------------------------------

    def wake(self) -> None:
        """Begin/complete a power-saving -> active transition.

        The simulator charges the full transition energy as the lump
        ``alpha`` the analytic model uses, then the server is ACTIVE from
        the next tick it is needed.
        """
        if self.state is not PowerState.POWER_SAVING:
            raise SimulationError(
                f"{self.server}: wake from {self.state.name}, expected "
                f"POWER_SAVING")
        if self.watcher is not None:
            self.watcher.remove(self)
        self.state = PowerState.ACTIVE
        self.transitions += 1
        self.transition_energy += self.server.transition_cost
        if self.watcher is not None:
            self.watcher.add(self)

    def sleep(self) -> None:
        """Power down; only legal when active and hosting nothing."""
        if self.state is not PowerState.ACTIVE:
            raise SimulationError(
                f"{self.server}: sleep from {self.state.name}, expected "
                f"ACTIVE")
        if self.resident_vms:
            raise SimulationError(
                f"{self.server}: sleep with {len(self.resident_vms)} VMs "
                f"resident")
        if self.watcher is not None:
            self.watcher.remove(self)
        self.state = PowerState.POWER_SAVING
        if self.watcher is not None:
            self.watcher.add(self)

    def fail(self) -> None:
        """Crash: evict every resident VM and stop drawing power.

        Legal from any live state — a sleeping, transitioning or active
        server can die. What happens to the evicted VMs is the caller's
        problem (the service re-places their remainders elsewhere); the
        machine only records that this server hosts nothing and refuses
        all operations until :meth:`recover`.
        """
        if self.state is PowerState.FAILED:
            raise SimulationError(f"{self.server}: fail while already FAILED")
        if self.watcher is not None:
            self.watcher.remove(self)
        self.state = PowerState.FAILED
        self.resident_vms.clear()
        self.resident_cpu = 0.0
        self.resident_mem = 0.0
        if self.watcher is not None:
            self.watcher.add(self)

    def recover(self) -> None:
        """Return from FAILED to POWER_SAVING.

        Recovery itself is free; the first :meth:`wake` after it charges
        the usual transition energy ``alpha`` — which is exactly why a
        recovery that immediately hosts a VM is an energy event.
        """
        if self.state is not PowerState.FAILED:
            raise SimulationError(
                f"{self.server}: recover from {self.state.name}, expected "
                f"FAILED")
        if self.watcher is not None:
            self.watcher.remove(self)
        self.state = PowerState.POWER_SAVING
        if self.watcher is not None:
            self.watcher.add(self)

    def start_vm(self, vm_id: int, cpu: float, memory: float) -> None:
        """Admit a VM; the server must be active with room for it."""
        if self.state is not PowerState.ACTIVE:
            raise SimulationError(
                f"{self.server}: vm{vm_id} starting while {self.state.name}")
        if vm_id in self.resident_vms:
            raise SimulationError(
                f"{self.server}: vm{vm_id} started twice")
        tol = 1e-9
        if self.resident_cpu + cpu > self.server.cpu_capacity + tol:
            raise SimulationError(
                f"{self.server}: CPU overcommit admitting vm{vm_id}")
        if self.resident_mem + memory > self.server.memory_capacity + tol:
            raise SimulationError(
                f"{self.server}: memory overcommit admitting vm{vm_id}")
        if self.watcher is not None:
            self.watcher.remove(self)
        self.resident_vms.add(vm_id)
        self.resident_cpu += cpu
        self.resident_mem += memory
        if self.watcher is not None:
            self.watcher.add(self)

    def end_vm(self, vm_id: int, cpu: float, memory: float) -> None:
        """Release a VM."""
        if vm_id not in self.resident_vms:
            raise SimulationError(
                f"{self.server}: vm{vm_id} ended but was not resident")
        if self.watcher is not None:
            self.watcher.remove(self)
        self.resident_vms.remove(vm_id)
        self.resident_cpu = max(0.0, self.resident_cpu - cpu)
        self.resident_mem = max(0.0, self.resident_mem - memory)
        if self.watcher is not None:
            self.watcher.add(self)

    # -- power -------------------------------------------------------------

    def power_draw(self) -> float:
        """Instantaneous power in the current state (watts)."""
        if self.state in (PowerState.POWER_SAVING, PowerState.FAILED):
            return 0.0
        if self.state is PowerState.TRANSITIONING:
            return self.server.p_peak
        return self.server.spec.power_at_load(self.resident_cpu)
