"""The discrete-event simulation engine.

The engine replays a completed :class:`~repro.model.allocation.Allocation`
tick by tick: servers wake, VMs start and end, servers sleep through gaps
where the Eq.-16 rule says sleeping is cheaper, and the fleet's power draw
is integrated over time. Because every step passes through the
:class:`~repro.simulation.power_state.ServerMachine` state machine, the
replay independently *verifies* the allocation's schedule (no VM ever runs
on a sleeping or overloaded server) and its energy — the integrated total
must equal the analytic Eq.-17 accounting exactly, which the test suite
asserts.

:func:`simulate_online` composes allocation and replay: the paper's
algorithms are online in arrival order, so running an allocator and
replaying its plan is exactly the trajectory an online controller would
have produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.energy.accounting import EnergyReport, energy_report
from repro.energy.cost import SleepPolicy
from repro.exceptions import SimulationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.phases import demand_profile
from repro.obs.explain import ExplainRecorder, PlacementExplanation
from repro.obs.tracer import get_tracer
from repro.simulation.events import EventKind, EventQueue
from repro.simulation.power_state import PowerState, ServerMachine
from repro.simulation.telemetry import Telemetry, TelemetryCollector

__all__ = ["SimulationResult", "SimulationEngine", "simulate_online"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a replay: integrated energy plus telemetry.

    ``explanations`` is populated only by explain-enabled runs
    (``simulate_online(..., explain=True)``): one
    :class:`~repro.obs.explain.PlacementExplanation` per allocated VM in
    processing order.
    """

    total_energy: float
    busy_energy: float
    transition_energy: float
    telemetry: Telemetry
    events_processed: int
    report: EnergyReport
    explanations: tuple[PlacementExplanation, ...] = field(default=())

    @property
    def horizon(self) -> int:
        return self.telemetry.horizon


class SimulationEngine:
    """Replays allocations through per-server power-state machines."""

    def __init__(self, cluster: Cluster, *,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL) -> None:
        self._cluster = cluster
        self._policy = policy

    def replay(self, allocation: Allocation) -> SimulationResult:
        """Replay ``allocation`` and integrate the fleet's power draw.

        Raises :class:`SimulationError` when the implied schedule is
        inconsistent (a VM starting on a sleeping server, an overcommit,
        a sleep with VMs resident, ...).
        """
        if allocation.cluster is not self._cluster:
            raise SimulationError(
                "allocation was built for a different cluster object")
        tracer = get_tracer()
        with tracer.span("engine.replay",
                         servers=len(self._cluster)) as span:
            result = self._replay(allocation)
            span.set(events=result.events_processed,
                     horizon=result.horizon)
        if tracer.enabled:
            result.telemetry.emit_counters(tracer)
        return result

    def _replay(self, allocation: Allocation) -> SimulationResult:
        report = energy_report(allocation, policy=self._policy)
        horizon = allocation.horizon()
        queue = EventQueue()
        machines = {s.server_id: ServerMachine(s) for s in self._cluster}
        # Each VM becomes one resident piece per constant-demand phase
        # (plain VMs have exactly one), keyed by a synthetic piece id.
        piece_demand: dict[int, tuple[float, float]] = {}
        next_piece = 0
        for vm, server_id in allocation.items():
            for piece, cpu, memory in demand_profile(vm):
                piece_demand[next_piece] = (cpu, memory)
                queue.push(piece.start, EventKind.VM_START,
                           vm_id=next_piece, server_id=server_id)
                queue.push(piece.end, EventKind.VM_END,
                           vm_id=next_piece, server_id=server_id)
                next_piece += 1
        # Wake/sleep schedule from the accounting's active intervals: the
        # server wakes at each active interval's start and sleeps after its
        # end.
        for server_report in report.servers:
            for interval in server_report.active:
                queue.push(interval.start, EventKind.SERVER_WAKE,
                           server_id=server_report.server_id)
                queue.push(interval.end, EventKind.SERVER_SLEEP,
                           server_id=server_report.server_id)

        collector = TelemetryCollector(horizon)
        busy_energy = 0.0
        events_processed = 0
        now = 1
        pending = queue.drain()
        event = next(pending, None)
        while now <= horizon:
            # start-of-tick events: wakes, then VM starts
            while event is not None and event.time == now and \
                    event.kind in (EventKind.SERVER_WAKE,
                                   EventKind.VM_START):
                self._apply(event, machines, piece_demand)
                events_processed += 1
                event = next(pending, None)
            if event is not None and event.time < now:
                raise SimulationError(
                    f"event {event} is in the past (now={now})")
            # integrate power for this tick
            power = 0.0
            active = 0
            running = 0
            for machine in machines.values():
                draw = machine.power_draw()
                power += draw
                if machine.state is PowerState.ACTIVE:
                    active += 1
                running += len(machine.resident_vms)
            busy_energy += power
            collector.record(now, power, active, running)
            # end-of-tick events: VM ends, then sleeps
            while event is not None and event.time == now:
                self._apply(event, machines, piece_demand)
                events_processed += 1
                event = next(pending, None)
            now += 1
        if event is not None:
            raise SimulationError(
                f"event {event} scheduled beyond the horizon {horizon}")
        transition_energy = sum(
            m.transition_energy for m in machines.values())
        return SimulationResult(
            total_energy=busy_energy + transition_energy,
            busy_energy=busy_energy,
            transition_energy=transition_energy,
            telemetry=collector.freeze(),
            events_processed=events_processed,
            report=report,
        )

    @staticmethod
    def _apply(event, machines: dict[int, ServerMachine],
               piece_demand: dict[int, tuple[float, float]]) -> None:
        machine = machines[event.server_id]
        if event.kind is EventKind.SERVER_WAKE:
            machine.wake()
        elif event.kind is EventKind.SERVER_SLEEP:
            machine.sleep()
        elif event.kind is EventKind.VM_START:
            cpu, memory = piece_demand[event.vm_id]
            machine.start_vm(event.vm_id, cpu, memory)
        elif event.kind is EventKind.VM_END:
            cpu, memory = piece_demand[event.vm_id]
            machine.end_vm(event.vm_id, cpu, memory)
        else:  # pragma: no cover - the enum is exhaustive
            raise SimulationError(f"unknown event kind {event.kind!r}")


def simulate_online(vms, cluster: Cluster, allocator, *,
                    policy: SleepPolicy = SleepPolicy.OPTIMAL,
                    explain: bool = False
                    ) -> tuple[Allocation, SimulationResult]:
    """Allocate ``vms`` with ``allocator`` and replay the resulting plan.

    The paper's algorithms process VMs in arrival (start-time) order, so
    the offline plan replayed here is the same trajectory an online
    controller would produce tick by tick.

    With ``explain=True`` the run additionally records one explain-trace
    per placement decision (the candidate servers evaluated, their
    feasibility verdicts and cost terms) on
    ``SimulationResult.explanations``; the allocator must support the
    base :class:`~repro.allocators.base.Allocator` explain interface.
    """
    tracer = get_tracer()
    with tracer.span("simulate_online", algorithm=getattr(
            allocator, "name", type(allocator).__name__)):
        if explain:
            recorder = ExplainRecorder()
            allocation = allocator.allocate(vms, cluster,
                                            recorder=recorder)
        else:
            recorder = None
            allocation = allocator.allocate(vms, cluster)
        engine = SimulationEngine(cluster, policy=policy)
        result = engine.replay(allocation)
    if recorder is not None:
        result = replace(result, explanations=tuple(recorder))
    return allocation, result
