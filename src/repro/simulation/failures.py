"""Failure injection: server crashes and VM recovery.

A production allocator must survive servers dying underneath it. This
module replays a plan while injecting crashes: at each failure time the
victim server drops out of the eligible fleet, its still-running VMs are
killed, and their *remainders* (from the next time unit to their original
finish) are re-placed by a recovery allocator onto the surviving fleet —
the standard restart-elsewhere recovery of stateless cloud workloads.

The outcome quantifies both the energy of the repaired plan (including
any double-paid work: the interrupted head of a VM still consumed energy)
and the disruption (VMs killed, re-placements, unrecoverable VMs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.allocators.base import Allocator
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.vm import VM
from repro.simulation.recovery import recover_target, split_remainder

__all__ = ["ServerFailure", "FailureOutcome", "inject_failures",
           "random_failures"]


@dataclass(frozen=True)
class ServerFailure:
    """A server crashes at ``time`` and never returns."""

    server_id: int
    time: int

    def __post_init__(self) -> None:
        if self.time < 1:
            raise ValidationError(
                f"failure time must be >= 1, got {self.time}")


@dataclass(frozen=True)
class FailureOutcome:
    """Result of replaying a plan under injected crashes."""

    allocation: Allocation
    killed: int
    recovered: int
    lost: tuple[VM, ...]
    wasted_energy: float
    total_energy: float

    @property
    def recovery_rate(self) -> float:
        """Fraction of killed VMs whose remainder found a new home."""
        if self.killed == 0:
            return 1.0
        return self.recovered / self.killed


def random_failures(cluster: Cluster, count: int, horizon: int,
                    seed: int | None = None) -> list[ServerFailure]:
    """``count`` distinct servers crashing at uniform random times."""
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    if count > len(cluster):
        raise ValidationError(
            f"cannot fail {count} of {len(cluster)} servers")
    if horizon < 1:
        raise ValidationError(f"horizon must be >= 1, got {horizon}")
    rng = np.random.default_rng(seed)
    victims = rng.choice(len(cluster), size=count, replace=False)
    times = rng.integers(1, horizon + 1, size=count)
    return [ServerFailure(server_id=int(s), time=int(t))
            for s, t in zip(victims, times)]


def inject_failures(allocation: Allocation,
                    failures: Iterable[ServerFailure], *,
                    recovery: Allocator | None = None,
                    policy: SleepPolicy = SleepPolicy.OPTIMAL
                    ) -> FailureOutcome:
    """Replay ``allocation`` under crashes; returns the repaired plan.

    For each failure (processed in time order): VMs running on the victim
    at the failure time are killed; the energy of their interrupted heads
    is *wasted* (already spent, no useful completion); their remainders —
    ``[failure_time + 1, end]`` — are offered to the recovery allocator
    over the surviving servers. Remainders that fit nowhere are reported
    in ``lost``. VMs whose whole interval lies after the failure are
    simply re-placed without waste.
    """
    cluster = allocation.cluster
    recovery = recovery if recovery is not None else MinIncrementalEnergy()
    ordered_failures = sorted(failures, key=lambda f: (f.time, f.server_id))
    seen = set()
    for failure in ordered_failures:
        if not 0 <= failure.server_id < len(cluster):
            raise ValidationError(
                f"failure names unknown server {failure.server_id}")
        if failure.server_id in seen:
            raise ValidationError(
                f"server {failure.server_id} fails twice")
        seen.add(failure.server_id)

    dead: dict[int, int] = {}  # server id -> death time
    states = {server.server_id: ServerState(server, policy=policy)
              for server in cluster}
    placements: dict[VM, int] = {}
    next_id = max((vm.vm_id for vm in allocation), default=-1) + 1
    for vm in allocation.vms:
        states[allocation.server_of(vm)].place(vm)
        placements[vm] = allocation.server_of(vm)

    killed = 0
    recovered = 0
    lost: list[VM] = []
    wasted = 0.0
    recovery.prepare(list(states.values()))
    for failure in ordered_failures:
        dead[failure.server_id] = failure.time
        victim_state = states[failure.server_id]
        affected = [vm for vm in list(victim_state.vms)
                    if vm.end >= failure.time]
        for vm in sorted(affected, key=lambda v: (v.start, v.vm_id)):
            victim_state.remove(vm)
            del placements[vm]
            head, remainder, next_id = split_remainder(vm, failure.time,
                                                       next_id)
            if head is not None:
                killed += 1
                # The head ran and its energy is spent but useless; it
                # stays on the dead server's books as waste.
                wasted += victim_state.place(head)
                placements[head] = failure.server_id
            target = recover_target(remainder, states, dead, recovery)
            if target is None:
                lost.append(vm)
                continue
            target.place(remainder)
            placements[remainder] = target.server.server_id
            if remainder is not vm:
                recovered += 1

    repaired = Allocation(cluster, placements)
    total = sum(state.cost for state in states.values())
    return FailureOutcome(
        allocation=repaired,
        killed=killed,
        recovered=recovered,
        lost=tuple(lost),
        wasted_energy=wasted,
        total_energy=total,
    )


# Backwards-compatible name: the remainder/target mechanics now live in
# :mod:`repro.simulation.recovery`, shared with the live service.
_recover = recover_target
