"""Discrete-event simulator: event queue, power-state machines, replay
engine, telemetry."""

from repro.simulation.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionOutcome,
    offer,
    shift_request,
)
from repro.simulation.engine import (
    SimulationEngine,
    SimulationResult,
    simulate_online,
)
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.failures import (
    FailureOutcome,
    ServerFailure,
    inject_failures,
    random_failures,
)
from repro.simulation.power_state import PowerState, ServerMachine
from repro.simulation.telemetry import Telemetry, TelemetryCollector

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionOutcome",
    "offer",
    "shift_request",
    "SimulationEngine",
    "SimulationResult",
    "simulate_online",
    "Event",
    "EventKind",
    "EventQueue",
    "FailureOutcome",
    "ServerFailure",
    "inject_failures",
    "random_failures",
    "PowerState",
    "ServerMachine",
    "Telemetry",
    "TelemetryCollector",
]
