"""Telemetry collected while the simulator runs.

The collector records, per time unit, the fleet's total power draw, the
number of active servers and the number of running VMs — the raw series
behind energy integration, utilisation plots and capacity-planning
examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.obs.tracer import Tracer

__all__ = ["Telemetry", "TelemetryCollector"]


@dataclass(frozen=True)
class Telemetry:
    """Immutable per-time-unit series over ``[1, horizon]``.

    Index 0 of every array corresponds to time unit 1.
    """

    power: np.ndarray
    active_servers: np.ndarray
    running_vms: np.ndarray

    @property
    def horizon(self) -> int:
        return int(self.power.size)

    @property
    def total_energy(self) -> float:
        """Integrated busy-state energy (watt × time unit)."""
        return float(self.power.sum())

    @property
    def peak_power(self) -> float:
        return float(self.power.max()) if self.power.size else 0.0

    @property
    def mean_active_servers(self) -> float:
        return float(self.active_servers.mean()) if \
            self.active_servers.size else 0.0

    def window(self, start: int, end: int) -> "Telemetry":
        """The sub-series covering closed time window ``[start, end]``."""
        if not 1 <= start <= end <= self.horizon:
            raise ValidationError(
                f"window [{start}, {end}] outside horizon "
                f"[1, {self.horizon}]")
        sl = slice(start - 1, end)
        return Telemetry(power=self.power[sl],
                         active_servers=self.active_servers[sl],
                         running_vms=self.running_vms[sl])

    def emit_counters(self, tracer: Tracer, name: str = "fleet") -> int:
        """Replay the series as counter events on ``tracer``.

        Samples land on the simulated-time clock (one tick per
        microsecond in trace viewers), so a Chrome-trace export shows
        fleet power, active servers and running VMs as counter tracks
        alongside the wall-clock spans. Returns the samples emitted.
        """
        if not tracer.enabled:
            return 0
        for i in range(self.horizon):
            tracer.counter(name, ts_ns=(i + 1) * 1000, clock="sim",
                           power=float(self.power[i]),
                           active_servers=int(self.active_servers[i]),
                           running_vms=int(self.running_vms[i]))
        return self.horizon


class TelemetryCollector:
    """Accumulates per-tick samples and freezes them into Telemetry."""

    def __init__(self, horizon: int) -> None:
        if horizon < 0:
            raise ValidationError(f"horizon must be >= 0, got {horizon}")
        self._power = np.zeros(horizon)
        self._active = np.zeros(horizon, dtype=int)
        self._vms = np.zeros(horizon, dtype=int)

    def record(self, t: int, power: float, active_servers: int,
               running_vms: int) -> None:
        """Record the fleet sample for time unit ``t`` (1-based)."""
        self._power[t - 1] = power
        self._active[t - 1] = active_servers
        self._vms[t - 1] = running_vms

    def freeze(self) -> Telemetry:
        return Telemetry(power=self._power.copy(),
                         active_servers=self._active.copy(),
                         running_vms=self._vms.copy())
