"""Realized-demand replay: what does a Γ budget actually buy?

A robust placement is only worth its energy premium if it prevents
overloads that would really happen. This harness closes that loop: it
commits a plan with :meth:`~repro.allocators.base.Allocator.
allocate_batch`, then *realizes* demand by drawing each VM's deviation
uniformly from its declared interval (``d ~ U(-radius, +radius)``, one
draw per VM per world — the radius is spec-level, so the deviation is
constant over the VM's lifetime) and counts the server-time-units where
the realized load exceeds capacity. :func:`sweep_gamma` repeats this
over a grid of Γ budgets, producing the energy-vs-overload frontier:
Γ=0 is the nominal planner (cheapest, most overloads), growing Γ trades
committed Eq.-17 energy — and possibly rejections — for a lower
overload rate, and box mode is the full worst-case anchor.

Deviations are drawn per *offered* VM in request order, whether or not
that VM was placed, so every point of a sweep is judged against the
same realized worlds; differences between points come only from the
plans, never from the dice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.allocators.batch import Decision
from repro.allocators.registry import make_allocator
from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.phases import demand_profile
from repro.model.vm import VM
from repro.placement.config import EngineConfig
from repro.robust.config import RobustnessConfig

__all__ = ["FrontierPoint", "GammaSweep", "overload_rate",
           "realized_overload", "sweep_gamma"]

#: Capacity slack mirroring the probe tolerance, so a realized load
#: exactly at capacity is not a float-rounding overload.
_TOL = 1e-9


def realized_overload(decisions: Sequence[Decision], cluster: Cluster,
                      rng: np.random.Generator) -> tuple[int, int]:
    """One realized world: ``(overloaded, busy)`` server-time-units.

    Draws one (cpu, memory) deviation per decision from the VM's demand
    intervals (rejected VMs consume their draws too, to keep worlds
    comparable across plans), adds it to the VM's nominal demand on
    every active time unit (clamped at zero), and counts the
    server-time-units where a server hosts at least one VM (*busy*) and
    where its realized CPU or memory load exceeds capacity
    (*overloaded*).
    """
    placed: list[tuple[Decision, float, float]] = []
    for decision in decisions:
        vm = decision.vm
        dc = float(rng.uniform(-vm.cpu_radius, vm.cpu_radius)) \
            if vm.cpu_radius > 0 else 0.0
        dm = float(rng.uniform(-vm.mem_radius, vm.mem_radius)) \
            if vm.mem_radius > 0 else 0.0
        if decision.placed:
            placed.append((decision, dc, dm))
    if not placed:
        return 0, 0
    horizon = max(d.vm.end for d, _, _ in placed) + 1
    loads: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for decision, dc, dm in placed:
        sid = decision.server_id
        assert sid is not None
        if sid not in loads:
            loads[sid] = (np.zeros(horizon), np.zeros(horizon))
        cpu_row, mem_row = loads[sid]
        for interval, cpu, memory in demand_profile(decision.vm):
            cpu_row[interval.start:interval.end + 1] += max(0.0, cpu + dc)
            mem_row[interval.start:interval.end + 1] += max(0.0, memory + dm)
    overloaded = busy = 0
    for sid, (cpu_row, mem_row) in loads.items():
        server = cluster.servers[sid]
        active = (cpu_row > 0) | (mem_row > 0)
        busy += int(active.sum())
        over = (cpu_row > server.cpu_capacity + _TOL) | \
               (mem_row > server.memory_capacity + _TOL)
        overloaded += int(over.sum())
    return overloaded, busy


def overload_rate(decisions: Sequence[Decision], cluster: Cluster, *,
                  draws: int = 20, seed: int = 0) -> float:
    """Average overload fraction over ``draws`` realized worlds.

    The rate is total overloaded server-time-units divided by total
    busy server-time-units across all draws (``0.0`` for an empty
    plan). Worlds are drawn from ``default_rng(seed)``, so two plans
    evaluated with the same ``draws``/``seed`` face identical demand.
    """
    if draws < 1:
        raise ValidationError(f"draws must be >= 1, got {draws}")
    rng = np.random.default_rng(seed)
    overloaded = busy = 0
    for _ in range(draws):
        over, active = realized_overload(decisions, cluster, rng)
        overloaded += over
        busy += active
    return overloaded / busy if busy else 0.0


@dataclass(frozen=True)
class FrontierPoint:
    """One point of the energy-vs-overload frontier."""

    gamma: int
    mode: str
    energy: float
    placed: int
    rejected: int
    overload_rate: float

    @property
    def label(self) -> str:
        """Human-readable budget label (``"Γ=2"``, ``"box"``)."""
        return "box" if self.mode == "box" else f"Γ={self.gamma}"


@dataclass(frozen=True)
class GammaSweep:
    """The Γ sweep of one workload: nominal → robust → worst case."""

    algo: str
    draws: int
    points: tuple[FrontierPoint, ...]

    def format(self) -> str:
        """Aligned text table of the frontier."""
        rows = [("budget", "energy", "placed", "rejected",
                 "overload %")]
        for p in self.points:
            rows.append((p.label, f"{p.energy:.1f}", str(p.placed),
                         str(p.rejected), f"{100 * p.overload_rate:.2f}"))
        widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
        return "\n".join(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
            for row in rows)


def sweep_gamma(vms: Sequence[VM], cluster: Cluster, *,
                gammas: Sequence[int] = (0, 1, 2, 3),
                include_box: bool = False,
                algo: str = "first-fit",
                engine: EngineConfig | str | None = None,
                draws: int = 20, seed: int = 0) -> GammaSweep:
    """Replay one workload under a grid of Γ budgets.

    For each budget the allocator is rebuilt with the corresponding
    :class:`RobustnessConfig` (Γ=0 runs the plain nominal engine), the
    whole batch is committed, and the plan is scored on committed
    Eq.-17 energy plus the realized :func:`overload_rate` — every
    budget against the same ``draws`` worlds. ``include_box=True``
    appends the full worst-case (Soyster) anchor point.
    """
    if not gammas and not include_box:
        raise ValidationError("sweep_gamma needs at least one budget")
    base = EngineConfig.coerce(engine, warn=False)
    budgets: list[RobustnessConfig] = [
        RobustnessConfig(gamma=int(g)) for g in gammas]
    if include_box:
        budgets.append(RobustnessConfig(mode="box"))
    points = []
    for robustness in budgets:
        config = replace(base,
                         robustness=robustness if robustness.active
                         else None)
        allocator = make_allocator(algo, seed=seed, engine=config)
        decisions = allocator.allocate_batch(vms, cluster)
        placed = sum(1 for d in decisions if d.placed)
        points.append(FrontierPoint(
            gamma=robustness.gamma, mode=robustness.mode,
            energy=sum(d.energy_delta for d in decisions),
            placed=placed, rejected=len(decisions) - placed,
            overload_rate=overload_rate(decisions, cluster, draws=draws,
                                        seed=seed)))
    return GammaSweep(algo=algo, draws=draws, points=tuple(points))
