"""The frozen Γ-robustness configuration.

A :class:`RobustnessConfig` says how pessimistic capacity probes are
about demand radii:

* ``mode="gamma"`` (Bertsimas–Sim): at every time segment, the nominal
  committed demand plus the ``gamma`` largest radii among the VMs
  overlapping that segment (the probed VM included) must fit under
  capacity. ``gamma=0`` deactivates robustness entirely — probes are
  bit-identical to the nominal engine.
* ``mode="box"`` (Soyster): every radius counts — the full worst case.
  ``gamma`` is ignored in box mode; a box config is always active.

The config rides inside :class:`~repro.placement.config.EngineConfig`
(``"indexed:kernel=on,gamma=2"`` spec strings) so every allocator,
the service store and the CLI pick it up through the one construction
surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = ["RobustnessConfig", "MODES"]

#: Valid robustness modes.
MODES = ("gamma", "box")


@dataclass(frozen=True)
class RobustnessConfig:
    """Uncertainty budget for robust capacity probes.

    Parameters
    ----------
    gamma:
        How many overlapping radii may take their worst case at once
        (per server, per time segment, per resource). ``0`` means
        nominal probing — robustness off.
    mode:
        ``"gamma"`` for the budgeted Bertsimas–Sim constraint,
        ``"box"`` for the full worst case (all radii count).
    """

    gamma: int = 0
    mode: str = "gamma"

    def __post_init__(self) -> None:
        if isinstance(self.gamma, bool) or not isinstance(self.gamma, int):
            raise ValidationError(
                f"gamma must be an integer, got {self.gamma!r}")
        if self.gamma < 0:
            raise ValidationError(
                f"gamma must be >= 0, got {self.gamma}")
        if self.mode not in MODES:
            raise ValidationError(
                f"unknown robustness mode {self.mode!r}; valid modes: "
                f"{MODES}")

    @property
    def active(self) -> bool:
        """Whether probes apply any robustness at all.

        ``gamma=0`` in gamma mode is the nominal engine (exactly, bit
        for bit — the robust machinery is bypassed, not evaluated with
        a zero budget); box mode is always active.
        """
        return self.mode == "box" or self.gamma > 0

    def accumulate(self, radii: tuple[float, ...]) -> tuple[float, float]:
        """The cached ``(drop, threshold)`` pair for one segment.

        ``radii`` is one segment's resident radii sorted descending.
        Both probe paths evaluate the robust excess of a candidate
        radius ``r`` as ``drop + max(r, threshold)``:

        * gamma mode: ``drop`` is the sum of the ``gamma - 1`` largest
          resident radii and ``threshold`` the ``gamma``-th largest
          (0.0 when fewer residents). If ``r`` beats the threshold it
          joins the worst-case set and displaces nothing that was
          counted; otherwise the resident set alone is the worst case.
        * box mode: ``drop`` is the sum of *all* radii and
          ``threshold`` 0.0 — the same formula then adds ``r``
          unconditionally.
        """
        if self.mode == "box":
            drop = 0.0
            for r in radii:
                drop += r
            return drop, 0.0
        g = self.gamma
        drop = 0.0
        for r in radii[: g - 1]:
            drop += r
        threshold = radii[g - 1] if len(radii) >= g else 0.0
        return drop, threshold

    @property
    def spec_options(self) -> list[str]:
        """The ``key=value`` items this config adds to an engine spec."""
        options = [f"gamma={self.gamma}"]
        if self.mode != "gamma":
            options.append(f"mode={self.mode}")
        return options
