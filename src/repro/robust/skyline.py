"""The robust skyline: committed demand plus per-segment radius multisets.

:class:`RobustSkyline` extends
:class:`~repro.placement.occupancy.SkylineOccupancy` so every change-point
segment carries, next to the nominal committed ``(cpu, mem)``, the demand
*radii* of the VMs overlapping it — sorted descending, one multiset per
resource. From those multisets it caches, per segment, exactly the two
numbers the Γ-robust probe formula needs (see
:meth:`repro.robust.config.RobustnessConfig.accumulate`):

* ``drop`` — the worst-case excess already charged regardless of the
  probed VM (the Γ−1 largest resident radii in gamma mode; every radius
  in box mode);
* ``threshold`` — the radius the probed VM must beat to join the
  worst-case set (the Γ-th largest resident radius; 0.0 in box mode or
  when fewer than Γ residents overlap).

Both probe paths — the scalar :meth:`probe_piece_robust` and the
vectorized kernel mirror fed by :meth:`export_robust_rows` — evaluate
the identical IEEE-754 expression ``value = nominal + (drop +
max(r, threshold))`` and compare ``value + piece_demand > capacity +
tol``, so kernel-driven and scalar robust scans choose the same server
bit for bit, exactly like the nominal engine.

The nominal arithmetic is untouched: radius bookkeeping only *adds*
breakpoints (cutting a segment copies its value bits) and the coalesce
rule is tightened to require equal radius multisets, neither of which
changes any nominal sum or peak.
"""

from __future__ import annotations

import bisect

from repro.placement.occupancy import SkylineOccupancy
from repro.robust.config import RobustnessConfig

__all__ = ["RobustSkyline"]


class RobustSkyline(SkylineOccupancy):
    """Skyline occupancy with per-segment resident radius multisets."""

    __slots__ = ("robustness", "_rc", "_rm", "_dc", "_tc", "_dm", "_tm")

    def __init__(self, robustness: RobustnessConfig) -> None:
        super().__init__()
        self.robustness = robustness
        #: per-segment radii, sorted descending (zero radii not stored)
        self._rc: list[tuple[float, ...]] = []
        self._rm: list[tuple[float, ...]] = []
        #: cached (drop, threshold) accumulators per segment
        self._dc: list[float] = []
        self._tc: list[float] = []
        self._dm: list[float] = []
        self._tm: list[float] = []

    # -- structure maintenance ---------------------------------------------

    def _cut(self, t: int) -> int:
        """Split a segment at ``t``, duplicating its radii and caches."""
        xs = self._xs
        i = bisect.bisect_right(xs, t) - 1
        if i >= 0 and xs[i] == t:
            return i
        xs.insert(i + 1, t)
        self._cpu.insert(i + 1, self._cpu[i] if i >= 0 else 0.0)
        self._mem.insert(i + 1, self._mem[i] if i >= 0 else 0.0)
        self._rc.insert(i + 1, self._rc[i] if i >= 0 else ())
        self._rm.insert(i + 1, self._rm[i] if i >= 0 else ())
        self._dc.insert(i + 1, self._dc[i] if i >= 0 else 0.0)
        self._tc.insert(i + 1, self._tc[i] if i >= 0 else 0.0)
        self._dm.insert(i + 1, self._dm[i] if i >= 0 else 0.0)
        self._tm.insert(i + 1, self._tm[i] if i >= 0 else 0.0)
        return i + 1

    def _coalesce(self, lo: int, hi: int) -> None:
        """Merge neighbours equal in value *and* radii; drop leading
        all-zero segments (same rule as the nominal skyline, extended
        so segments differing only in radii stay distinct)."""
        xs, cpu, mem = self._xs, self._cpu, self._mem
        rc, rm = self._rc, self._rm
        k = min(hi + 1, len(xs) - 1)
        floor = max(lo, 1)
        while k >= floor:
            if cpu[k] == cpu[k - 1] and mem[k] == mem[k - 1] \
                    and rc[k] == rc[k - 1] and rm[k] == rm[k - 1]:
                self._delete(k)
            k -= 1
        while xs and cpu[0] == 0.0 and mem[0] == 0.0 \
                and not rc[0] and not rm[0]:
            self._delete(0)

    def _delete(self, k: int) -> None:
        del self._xs[k], self._cpu[k], self._mem[k]
        del self._rc[k], self._rm[k]
        del self._dc[k], self._tc[k], self._dm[k], self._tm[k]

    def compact(self, before: int) -> None:
        i = bisect.bisect_right(self._xs, before) - 1
        if i > 0:
            del self._xs[:i], self._cpu[:i], self._mem[:i]
            del self._rc[:i], self._rm[:i]
            del self._dc[:i], self._tc[:i], self._dm[:i], self._tm[:i]
        while self._xs and self._cpu[0] == 0.0 and self._mem[0] == 0.0 \
                and not self._rc[0] and not self._rm[0]:
            self._delete(0)

    # -- radius bookkeeping -------------------------------------------------

    def add_radius(self, start: int, end: int,
                   cpu_radius: float, mem_radius: float) -> None:
        """Register a resident's radii over the closed ``[start, end]``.

        Called once per placed VM (radii are spec-level, constant over
        the whole interval even for phased demand). Zero radii are not
        stored — they can never enter a worst-case set.
        """
        if cpu_radius == 0.0 and mem_radius == 0.0:
            return
        lo = self._cut(start)
        hi = self._cut(end + 1)
        for k in range(lo, hi):
            if cpu_radius != 0.0:
                self._rc[k] = _insert(self._rc[k], cpu_radius)
            if mem_radius != 0.0:
                self._rm[k] = _insert(self._rm[k], mem_radius)
            self._refresh(k)
        self._coalesce(lo, hi)

    def subtract_radius(self, start: int, end: int,
                        cpu_radius: float, mem_radius: float) -> None:
        """Withdraw a resident's radii (migration / removal)."""
        if cpu_radius == 0.0 and mem_radius == 0.0:
            return
        lo = self._cut(start)
        hi = self._cut(end + 1)
        for k in range(lo, hi):
            if cpu_radius != 0.0:
                self._rc[k] = _discard(self._rc[k], cpu_radius)
            if mem_radius != 0.0:
                self._rm[k] = _discard(self._rm[k], mem_radius)
            self._refresh(k)
        self._coalesce(lo, hi)

    def _refresh(self, k: int) -> None:
        """Recompute segment ``k``'s cached (drop, threshold) pairs."""
        self._dc[k], self._tc[k] = self.robustness.accumulate(self._rc[k])
        self._dm[k], self._tm[k] = self.robustness.accumulate(self._rm[k])

    # -- robust probing ------------------------------------------------------

    def probe_piece_robust(self, start: int, end: int, cpu: float,
                           mem: float, cpu_radius: float, mem_radius: float,
                           cpu_cap: float, mem_cap: float, tol: float
                           ) -> tuple[str | None, float, float]:
        """Γ-robust feasibility of one demand piece.

        Same contract as the nominal
        :meth:`~repro.placement.occupancy.SkylineOccupancy.probe_piece`,
        but every segment is charged its robust excess: the committed
        value plus ``drop + max(radius, threshold)`` must leave room
        for the piece. Reported peaks are the *robust* committed usage
        (nominal plus ``drop + threshold`` — the excess without the
        probed VM), so headroom-driven scores see the reserved margin.
        """
        xs = self._xs
        peak_cpu = peak_mem = 0.0
        t_cpu: int | None = None
        t_mem: int | None = None
        i = bisect.bisect_right(xs, start) - 1
        if i < 0:
            i = 0
        for k in range(i, len(xs)):
            x = xs[k]
            if x > end:
                break
            # The kernel path evaluates these exact expressions on the
            # mirrored drop/threshold arrays — one shared op order.
            base_c = self._dc[k] + self._tc[k]
            p_c = self._cpu[k] + base_c
            exc_c = self._dc[k] + (cpu_radius if cpu_radius > self._tc[k]
                                   else self._tc[k])
            v_c = self._cpu[k] + exc_c
            base_m = self._dm[k] + self._tm[k]
            p_m = self._mem[k] + base_m
            exc_m = self._dm[k] + (mem_radius if mem_radius > self._tm[k]
                                   else self._tm[k])
            v_m = self._mem[k] + exc_m
            if p_c > peak_cpu:
                peak_cpu = p_c
            if p_m > peak_mem:
                peak_mem = p_m
            if t_cpu is None and v_c + cpu > cpu_cap + tol:
                t_cpu = x if x > start else start
            if t_mem is None and v_m + mem > mem_cap + tol:
                t_mem = x if x > start else start
        if t_cpu is not None:
            return f"cpu:overlap@{t_cpu}", peak_cpu, peak_mem
        if t_mem is not None:
            return f"mem:overlap@{t_mem}", peak_cpu, peak_mem
        return None, peak_cpu, peak_mem

    def export_robust_rows(self) -> tuple[
            list[int], list[float], list[float], list[float], list[float],
            list[float], list[float]]:
        """``(xs, cpu, mem, drop_c, thr_c, drop_m, thr_m)`` by reference.

        The fleet kernel mirrors all seven rows; callers must treat
        them as read-only (same contract as ``export_rows``).
        """
        return (self._xs, self._cpu, self._mem,
                self._dc, self._tc, self._dm, self._tm)


def _insert(radii: tuple[float, ...], r: float) -> tuple[float, ...]:
    """``radii`` with ``r`` inserted, keeping descending order."""
    for i, existing in enumerate(radii):
        if r > existing:
            return radii[:i] + (r,) + radii[i:]
    return radii + (r,)


def _discard(radii: tuple[float, ...], r: float) -> tuple[float, ...]:
    """``radii`` with one occurrence of ``r`` removed."""
    for i, existing in enumerate(radii):
        if existing == r:
            return radii[:i] + radii[i + 1:]
    raise ValueError(f"radius {r!r} not present in segment multiset")
