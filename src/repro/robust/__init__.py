"""Γ-robust placement under uncertain demand.

The paper's Sec. IV-B1 assumes every VM's demand is an exact scalar.
This package relaxes that: a VM may declare a demand *interval*
``[nominal - radius, nominal + radius]`` (the ``cpu_radius`` /
``mem_radius`` fields of :class:`~repro.model.vm.VMSpec`), and a
:class:`RobustnessConfig` riding in the
:class:`~repro.placement.config.EngineConfig` makes every probe enforce
the Bertsimas–Sim Γ-robust capacity constraint: nominal occupancy plus
the Γ largest radii among the VMs overlapping each time segment (the
probed VM included) must fit under capacity.

* :mod:`repro.robust.config` — the frozen :class:`RobustnessConfig`
  (``gamma`` budget, ``"gamma"`` / ``"box"`` mode).
* :mod:`repro.robust.skyline` — :class:`RobustSkyline`, the skyline
  occupancy index extended with per-segment radius multisets and the
  cached top-Γ accumulators both probe paths read.
* :mod:`repro.robust.evaluate` — the realized-demand replay harness:
  draw demand from the intervals, replay a committed plan, measure the
  overload rate, and sweep Γ into an energy-vs-overload frontier.
"""

from repro.robust.config import RobustnessConfig
from repro.robust.skyline import RobustSkyline

__all__ = ["RobustnessConfig", "RobustSkyline", "FrontierPoint",
           "GammaSweep", "overload_rate", "realized_overload",
           "sweep_gamma"]

#: Harness symbols resolved lazily: the evaluate module imports the
#: allocator stack, which imports ``repro.placement.config``, which
#: imports this package — an eager import here would be circular.
_EVALUATE = ("FrontierPoint", "GammaSweep", "overload_rate",
             "realized_overload", "sweep_gamma")


def __getattr__(name: str):
    if name in _EVALUATE:
        from repro.robust import evaluate
        return getattr(evaluate, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
