"""Extensions beyond the paper: migration-based consolidation, offline
(clairvoyant) orderings, and robustness to non-affine power curves."""

from repro.extensions.consolidation import (
    ConsolidationResult,
    EpochConsolidator,
    Migration,
)
from repro.extensions.cost_terms import CostWeights, WeightedMinEnergy
from repro.extensions.offline import LongestFirstMinEnergy, OfflineMinEnergy
from repro.extensions.robustness import (
    SuperlinearPowerModel,
    evaluate_under_model,
)
from repro.extensions.warmpool import (
    WarmPoolPoint,
    evaluate_warm_pool,
    warm_pool_frontier,
)
from repro.allocators.registry import ALLOCATORS as _ALLOCATORS

# The offline variants join the registry so the CLI and the ablation
# benches can address them by name like any other algorithm.
_ALLOCATORS.setdefault(OfflineMinEnergy.name, OfflineMinEnergy)
_ALLOCATORS.setdefault(LongestFirstMinEnergy.name, LongestFirstMinEnergy)

__all__ = [
    "ConsolidationResult",
    "EpochConsolidator",
    "Migration",
    "CostWeights",
    "WeightedMinEnergy",
    "LongestFirstMinEnergy",
    "OfflineMinEnergy",
    "SuperlinearPowerModel",
    "evaluate_under_model",
    "WarmPoolPoint",
    "evaluate_warm_pool",
    "warm_pool_frontier",
]
