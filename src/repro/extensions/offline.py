"""Offline (clairvoyant) variants of the paper's heuristic.

The paper's setting is online in arrival order: VMs are placed in
increasing start time because that is the order requests reach the data
center. An *offline* planner that knows the whole workload in advance can
process VMs in any order — and bin-packing folklore says placing the
biggest items first helps. These variants quantify the value of that
clairvoyance: they use exactly the paper's minimum-incremental-energy
selection rule, changing only the processing order.

``OfflineMinEnergy`` orders by decreasing ``cpu * duration`` (the VM's run
energy footprint, up to the per-server constant); ``LongestFirstMinEnergy``
orders by decreasing duration. Both fall back to start-time order to break
ties, keeping them deterministic.
"""

from __future__ import annotations

from repro.allocators.min_energy import MinIncrementalEnergy
from repro.model.vm import VM

__all__ = ["OfflineMinEnergy", "LongestFirstMinEnergy"]


class OfflineMinEnergy(MinIncrementalEnergy):
    """Min incremental energy, biggest CPU-time footprint first."""

    name = "min-energy-offline"

    def order_vms(self, vms: list[VM]) -> list[VM]:
        return sorted(vms, key=lambda v: (-v.cpu_time, v.start, v.vm_id))


class LongestFirstMinEnergy(MinIncrementalEnergy):
    """Min incremental energy, longest duration first."""

    name = "min-energy-longest"

    def order_vms(self, vms: list[VM]) -> list[VM]:
        return sorted(vms, key=lambda v: (-v.duration, v.start, v.vm_id))
