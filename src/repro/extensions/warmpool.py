"""Warm pools: trading idle energy for placement latency.

Aggressive sleeping minimises energy but makes arriving VMs wait for
server boots (:mod:`repro.metrics.latency`). The standard mitigation is a
*warm pool*: keep the busiest servers active for the whole planning
period so requests landing there start instantly. This module evaluates
that policy on a finished plan:

* the ``k`` servers hosting the most VMs are kept active over the plan's
  entire span (they pay idle power through every gap and never re-wake);
* the rest follow the paper's Eq.-16 rule;
* energy is re-accounted and wake-up latency recomputed (VMs on warm
  servers wait only for the pool's single initial boot — or not at all
  for later arrivals).

:func:`warm_pool_frontier` sweeps ``k`` and returns the energy/latency
frontier an operator picks an SLA point from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.energy.accounting import energy_report
from repro.energy.cost import SleepPolicy, server_cost
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation

__all__ = ["WarmPoolPoint", "evaluate_warm_pool", "warm_pool_frontier"]


@dataclass(frozen=True)
class WarmPoolPoint:
    """One warm-pool size with its energy and latency outcome."""

    pool_size: int
    warm_servers: tuple[int, ...]
    energy: float
    mean_latency: float
    affected_fraction: float


def _pick_pool(allocation: Allocation, k: int) -> tuple[int, ...]:
    """The ``k`` used servers hosting the most VMs (ties by id)."""
    loads = sorted(
        ((len(allocation.vms_on(sid)), -sid) for sid in
         allocation.used_servers()),
        reverse=True)
    return tuple(-negative_id for _, negative_id in loads[:k])


def evaluate_warm_pool(allocation: Allocation, k: int) -> WarmPoolPoint:
    """Re-account ``allocation`` with the top-``k`` servers kept warm."""
    if k < 0:
        raise ValidationError(f"pool size must be >= 0, got {k}")
    warm = frozenset(_pick_pool(allocation, k))
    report = energy_report(allocation)
    energy = 0.0
    latencies: list[float] = []
    for server_report in report.servers:
        server = allocation.cluster.server(server_report.server_id)
        vms = allocation.vms_on(server_report.server_id)
        if server_report.server_id in warm:
            # Active through the whole span: idle power bridges every
            # gap; one initial wake only.
            cost = server_cost(server.spec, vms,
                               policy=SleepPolicy.NEVER_SLEEP)
            energy += cost.total
            span_start = server_report.timeline.busy[0].start
            for vm in vms:
                # Only the arrivals that triggered the pool's single
                # boot wait; everyone later finds the server hot.
                latencies.append(server.spec.transition_time
                                 if vm.start == span_start else 0.0)
        else:
            energy += server_report.cost.total
            wake_starts = {iv.start for iv in server_report.active}
            for vm in vms:
                latencies.append(server.spec.transition_time
                                 if vm.start in wake_starts else 0.0)
    values = np.array(latencies) if latencies else np.zeros(0)
    return WarmPoolPoint(
        pool_size=k,
        warm_servers=tuple(sorted(warm)),
        energy=energy,
        mean_latency=float(values.mean()) if values.size else 0.0,
        affected_fraction=(float((values > 0).mean())
                           if values.size else 0.0),
    )


def warm_pool_frontier(allocation: Allocation,
                       sizes: Sequence[int] | None = None
                       ) -> list[WarmPoolPoint]:
    """The energy/latency frontier over warm-pool sizes.

    ``sizes`` defaults to ``0 .. servers_used`` (the whole curve).
    """
    used = len(allocation.used_servers())
    if sizes is None:
        sizes = range(used + 1)
    points = []
    for k in sizes:
        if k > used:
            raise ValidationError(
                f"pool size {k} exceeds the {used} used servers")
        points.append(evaluate_warm_pool(allocation, k))
    return points
