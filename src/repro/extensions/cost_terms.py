"""Cost-term ablation: which parts of Eq. 17 actually drive the wins?

The heuristic's incremental cost has four components — the VM's run
energy ``W_ij``, the busy-time idle power, the idle-gap costs, and wake
transitions. :class:`WeightedMinEnergy` re-weights them in the *selection
rule only*; plans are always evaluated under the full, unweighted
accounting. Zeroing a weight therefore measures how much that term
contributes to the heuristic's decisions (DESIGN.md ablation 1,
sharpened).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy, server_cost
from repro.exceptions import ValidationError
from repro.model.vm import VM
from repro.placement.config import EngineConfig

__all__ = ["CostWeights", "WeightedMinEnergy"]


@dataclass(frozen=True)
class CostWeights:
    """Per-component weights applied to the incremental Eq.-17 cost."""

    run: float = 1.0
    busy_idle: float = 1.0
    gaps: float = 1.0
    wake: float = 1.0

    def __post_init__(self) -> None:
        for name in ("run", "busy_idle", "gaps", "wake"):
            if getattr(self, name) < 0:
                raise ValidationError(f"weight {name} must be >= 0")

    def describe(self) -> str:
        parts = [name for name in ("run", "busy_idle", "gaps", "wake")
                 if getattr(self, name) > 0]
        return "+".join(parts) if parts else "none"


class WeightedMinEnergy(Allocator):
    """Greedy selection by a re-weighted incremental cost.

    With default weights this selects identically to the paper's
    heuristic (though more slowly — it recomputes component-wise costs
    instead of using the local delta), so it exists for ablations, not
    production use.
    """

    name = "min-energy-weighted"

    def __init__(self, weights: CostWeights | None = None, *,
                 seed: int | None = None,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL,
                 engine: EngineConfig | str | None = None) -> None:
        super().__init__(seed=seed, policy=policy, engine=engine)
        self.weights = weights if weights is not None else CostWeights()

    def _weighted_delta(self, state: ServerState, vm: VM) -> float:
        spec = state.server.spec
        before = server_cost(spec, state.vms, policy=self._policy)
        after = server_cost(spec, state.vms + [vm], policy=self._policy)
        w = self.weights
        return (w.run * (after.run - before.run)
                + w.busy_idle * (after.busy_idle - before.busy_idle)
                + w.gaps * (after.gaps - before.gaps)
                + w.wake * (after.initial_wake - before.initial_wake))

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        best = feasible[0]
        best_delta = self._weighted_delta(best, vm)
        for state in feasible[1:]:
            delta = self._weighted_delta(state, vm)
            if delta < best_delta - 1e-12:
                best = state
                best_delta = delta
        return best
