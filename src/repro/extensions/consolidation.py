"""Epoch-based migration consolidation — beyond the paper.

The paper saves energy *at allocation time* and explicitly contrasts
itself with migration-based approaches (Sec. V: "[6] and [18] researched
to save energy ... by dynamic migration ... our problem focuses on saving
energy by allocation instead of migration"). This extension adds the
migration half of that comparison: a post-pass that revisits the plan at
fixed epoch boundaries and moves running VMs when doing so lowers energy
by more than the migration itself costs.

Model
-----
A live migration at time ``t`` splits a VM into a *head* piece
``[start, t-1]`` staying on the source server and a *remainder* piece
``[t, end]`` on the target. Energy of the resulting plan is the ordinary
Eq.-17 accounting over pieces, plus a per-move cost proportional to the
VM's memory footprint (copying RAM over the network burns energy on both
hosts): ``migration_cost = migration_cost_per_gb * vm.memory``.

The pass is greedy: at each epoch boundary, each VM spanning the boundary
is tentatively split, its remainder re-bid across the fleet with the same
incremental-cost rule the paper uses, and the move is kept only when the
total saving (source relief + target increase + move cost) is negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.allocators.base import Allocator
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.phases import split_vm
from repro.model.vm import VM

__all__ = ["Migration", "ConsolidationResult", "EpochConsolidator"]


@dataclass(frozen=True)
class Migration:
    """One live migration: a VM moves servers at an epoch boundary."""

    vm_id: int
    time: int
    source: int
    target: int
    cost: float


@dataclass(frozen=True)
class ConsolidationResult:
    """Outcome of allocation plus the migration post-pass."""

    allocation: Allocation
    migrations: tuple[Migration, ...]
    placement_energy: float
    migration_energy: float

    @property
    def total_energy(self) -> float:
        return self.placement_energy + self.migration_energy

    @property
    def migration_count(self) -> int:
        return len(self.migrations)


class EpochConsolidator:
    """Allocate online, then re-consolidate at fixed epoch boundaries.

    Parameters
    ----------
    epoch_length:
        Time units between consolidation passes (the knob trading
        migration churn against energy).
    migration_cost_per_gb:
        Energy charged per GByte of VM memory per move, in the same
        watt-time-unit currency as the rest of the model.
    base:
        The allocator producing the initial plan (the paper's heuristic
        by default).
    """

    def __init__(self, epoch_length: int = 30,
                 migration_cost_per_gb: float = 5.0,
                 base: Allocator | None = None,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL) -> None:
        if epoch_length <= 0:
            raise ValidationError(
                f"epoch_length must be positive, got {epoch_length}")
        if migration_cost_per_gb < 0:
            raise ValidationError(
                "migration_cost_per_gb must be non-negative, got "
                f"{migration_cost_per_gb}")
        self._epoch = epoch_length
        self._cost_per_gb = migration_cost_per_gb
        self._base = base if base is not None else MinIncrementalEnergy()
        self._policy = policy

    def allocate(self, vms: Iterable[VM], cluster: Cluster
                 ) -> ConsolidationResult:
        """Produce the consolidated plan for ``vms`` on ``cluster``."""
        vms = list(vms)
        initial = self._base.allocate(vms, cluster)
        states = [ServerState(server, policy=self._policy)
                  for server in cluster]
        # Pieces carry fresh ids above the original range so the final
        # Allocation stays a plain VM -> server mapping.
        next_id = max((vm.vm_id for vm in vms), default=-1) + 1
        pieces: dict[VM, int] = {}
        origin: dict[int, int] = {}
        for vm in vms:
            server_id = initial.server_of(vm)
            states[server_id].place(vm)
            pieces[vm] = server_id
            origin[vm.vm_id] = vm.vm_id

        migrations: list[Migration] = []
        horizon = initial.horizon()
        for boundary in range(self._epoch, horizon + 1, self._epoch):
            for piece in sorted(pieces, key=lambda v: v.vm_id):
                if not piece.start < boundary <= piece.end:
                    continue
                source_id = pieces[piece]
                move = self._best_move(piece, boundary, source_id, states,
                                       next_id)
                if move is None:
                    continue
                head, remainder, target_id, saving = move
                del pieces[piece]
                pieces[head] = source_id
                pieces[remainder] = target_id
                origin[head.vm_id] = origin[piece.vm_id]
                origin[remainder.vm_id] = origin[piece.vm_id]
                next_id += 2
                migrations.append(Migration(
                    vm_id=origin[head.vm_id], time=boundary,
                    source=source_id, target=target_id,
                    cost=self._move_cost(piece)))

        allocation = Allocation(cluster, pieces)
        placement_energy = sum(state.cost for state in states)
        migration_energy = sum(m.cost for m in migrations)
        return ConsolidationResult(
            allocation=allocation,
            migrations=tuple(migrations),
            placement_energy=placement_energy,
            migration_energy=migration_energy,
        )

    # -- internals -----------------------------------------------------------

    def _move_cost(self, vm: VM) -> float:
        return self._cost_per_gb * vm.memory

    def _best_move(self, piece: VM, boundary: int, source_id: int,
                   states: Sequence[ServerState], next_id: int
                   ) -> tuple[VM, VM, int, float] | None:
        """The best migration for ``piece`` at ``boundary``, if it saves.

        Returns ``(head, remainder, target_id, saving)`` or ``None`` when
        keeping the VM in place is cheapest.
        """
        head, remainder = split_vm(piece, boundary, next_id, next_id + 1)
        source = states[source_id]
        # Tentatively shrink the piece to its head on the source.
        removed = source.remove(piece)
        head_added = source.place(head)
        relief = head_added - removed  # negative: energy freed at source
        best_target: int | None = None
        best_delta = 0.0
        move_cost = self._move_cost(piece)
        for target_id, target in enumerate(states):
            if target_id == source_id or not target.probe(remainder):
                continue
            delta = (relief + target.incremental_cost(remainder)
                     + move_cost)
            # Compare against leaving the VM whole on the source, whose
            # cost is restored exactly by re-adding the remainder.
            stay_delta = relief + source.incremental_cost(remainder)
            saving = delta - stay_delta
            if saving < best_delta - 1e-9:
                best_delta = saving
                best_target = target_id
        if best_target is None:
            # Restore: head + remainder merge back into the original.
            source.remove(head)
            source.place(piece)
            return None
        states[best_target].place(remainder)
        return head, remainder, best_target, best_delta
