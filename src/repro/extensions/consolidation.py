"""Epoch-based migration consolidation — beyond the paper.

The paper saves energy *at allocation time* and explicitly contrasts
itself with migration-based approaches (Sec. V: "[6] and [18] researched
to save energy ... by dynamic migration ... our problem focuses on saving
energy by allocation instead of migration"). This extension adds the
migration half of that comparison: a post-pass that revisits the plan at
fixed epoch boundaries and moves running VMs when doing so lowers energy
by more than the migration itself costs.

Model
-----
A live migration at time ``t`` splits a VM into a *head* piece
``[start, t-1]`` staying on the source server and a *remainder* piece
``[t, end]`` on the target. Energy of the resulting plan is the ordinary
Eq.-17 accounting over pieces, plus a per-move cost proportional to the
VM's memory footprint (copying RAM over the network burns energy on both
hosts): ``migration_cost = migration_cost_per_gb * vm.memory``.

The pass is greedy: at each epoch boundary, each VM spanning the boundary
is tentatively split, its remainder re-bid across the fleet with the same
incremental-cost rule the paper uses, and the move is kept only when the
total saving (source relief + target increase + move cost) is negative.

Move selection itself lives in the shared
:class:`~repro.consolidation.planner.MigrationPlanner` — the very same
episode algorithm the live daemon runs — so the offline post-pass and
the online consolidation subsystem provably agree move for move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.allocators.base import Allocator
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.state import ServerState
from repro.consolidation.planner import MigrationPlanner
from repro.energy.cost import SleepPolicy
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.vm import VM

__all__ = ["Migration", "ConsolidationResult", "EpochConsolidator"]


@dataclass(frozen=True)
class Migration:
    """One live migration: a VM moves servers at an epoch boundary."""

    vm_id: int
    time: int
    source: int
    target: int
    cost: float


@dataclass(frozen=True)
class ConsolidationResult:
    """Outcome of allocation plus the migration post-pass."""

    allocation: Allocation
    migrations: tuple[Migration, ...]
    placement_energy: float
    migration_energy: float

    @property
    def total_energy(self) -> float:
        return self.placement_energy + self.migration_energy

    @property
    def migration_count(self) -> int:
        return len(self.migrations)


class EpochConsolidator:
    """Allocate online, then re-consolidate at fixed epoch boundaries.

    Parameters
    ----------
    epoch_length:
        Time units between consolidation passes (the knob trading
        migration churn against energy).
    migration_cost_per_gb:
        Energy charged per GByte of VM memory per move, in the same
        watt-time-unit currency as the rest of the model.
    base:
        The allocator producing the initial plan (the paper's heuristic
        by default).
    planner:
        The shared :class:`MigrationPlanner` selecting moves (built from
        ``migration_cost_per_gb`` when omitted). Passing the daemon's
        planner instance here is what the live-vs-offline equivalence
        test leans on.
    """

    def __init__(self, epoch_length: int = 30,
                 migration_cost_per_gb: float = 5.0,
                 base: Allocator | None = None,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL,
                 planner: MigrationPlanner | None = None) -> None:
        if epoch_length <= 0:
            raise ValidationError(
                f"epoch_length must be positive, got {epoch_length}")
        self._epoch = epoch_length
        self._planner = planner if planner is not None \
            else MigrationPlanner(migration_cost_per_gb)
        self._base = base if base is not None else MinIncrementalEnergy()
        self._policy = policy

    def allocate(self, vms: Iterable[VM], cluster: Cluster
                 ) -> ConsolidationResult:
        """Produce the consolidated plan for ``vms`` on ``cluster``."""
        vms = list(vms)
        initial = self._base.allocate(vms, cluster)
        states = [ServerState(server, policy=self._policy)
                  for server in cluster]
        # Pieces carry fresh ids above the original range so the final
        # Allocation stays a plain VM -> server mapping.
        next_id = max((vm.vm_id for vm in vms), default=-1) + 1
        pieces: dict[VM, int] = {}
        origin: dict[int, int] = {}
        for vm in vms:
            server_id = initial.server_of(vm)
            states[server_id].place(vm)
            pieces[vm] = server_id
            origin[vm.vm_id] = vm.vm_id

        migrations: list[Migration] = []
        horizon = initial.horizon()
        for boundary in range(self._epoch, horizon + 1, self._epoch):
            plan = self._planner.plan_episode(states, boundary, next_id)
            for move in plan.moves:
                del pieces[move.vm]
                pieces[move.head] = move.source_id
                pieces[move.remainder] = move.target_id
                origin[move.head.vm_id] = origin[move.vm.vm_id]
                origin[move.remainder.vm_id] = origin[move.vm.vm_id]
                migrations.append(Migration(
                    vm_id=origin[move.head.vm_id], time=boundary,
                    source=move.source_id, target=move.target_id,
                    cost=move.cost))
            next_id += 2 * len(plan.moves)

        allocation = Allocation(cluster, pieces)
        placement_energy = sum(state.cost for state in states)
        migration_energy = sum(m.cost for m in migrations)
        return ConsolidationResult(
            allocation=allocation,
            migrations=tuple(migrations),
            placement_energy=placement_energy,
            migration_energy=migration_energy,
        )
