"""Robustness of plans to non-affine power curves — beyond the paper.

The paper's model (and the heuristic's cost function) assumes the affine
power curve of Eq. 1. Measured server power is often mildly convex or
concave in utilisation (Barroso & Hölzle). This module evaluates a
*finished plan* under an arbitrary power model by integrating power per
time unit over each server's actual CPU profile — the question being: do
plans optimised under the affine assumption keep their advantage when the
electricity bill follows a different curve?

Only the evaluation changes; sleep decisions and wake-ups are kept as the
plan's accounting made them (the operator committed to that schedule).
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.energy.accounting import energy_report
from repro.energy.cost import SleepPolicy
from repro.energy.power import PowerModel
from repro.exceptions import ValidationError
from repro.metrics.utilization import server_profiles
from repro.model.allocation import Allocation
from repro.model.server import ServerSpec

__all__ = ["SuperlinearPowerModel", "evaluate_under_model"]


@dataclass(frozen=True)
class SuperlinearPowerModel(PowerModel):
    """``P(u) = P_idle + (P_peak - P_idle) * u**gamma``.

    ``gamma = 1`` recovers the paper's affine model; ``gamma > 1`` makes
    mid-range load cheaper than affine predicts (convex curve, typical of
    DVFS-governed CPUs); ``gamma < 1`` makes it more expensive (concave).
    """

    gamma: float = 1.4

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ValidationError(
                f"gamma must be positive, got {self.gamma}")

    def active_power(self, spec: ServerSpec, cpu_used: float) -> float:
        if cpu_used < 0:
            raise ValidationError(
                f"cpu_used must be non-negative, got {cpu_used}")
        utilization = min(cpu_used / spec.cpu_capacity, 1.0)
        return spec.p_idle + (spec.p_peak - spec.p_idle) * \
            utilization ** self.gamma


def evaluate_under_model(allocation: Allocation, model: PowerModel, *,
                         policy: SleepPolicy = SleepPolicy.OPTIMAL
                         ) -> float:
    """Total energy of ``allocation`` under an arbitrary power model.

    Keeps the plan's wake/sleep schedule (derived from the paper's Eq.-16
    rule) and its transition costs, but integrates active power per time
    unit through ``model`` over each server's real CPU profile.
    """
    report = energy_report(allocation, policy=policy)
    total = 0.0
    for server_report in report.servers:
        server = allocation.cluster.server(server_report.server_id)
        cpu, _ = server_profiles(allocation, server_report.server_id)
        span_start = server_report.timeline.busy[0].start
        for interval in server_report.active:
            for t in range(interval.start, interval.end + 1):
                index = t - span_start
                used = float(cpu[index]) if 0 <= index < cpu.size else 0.0
                total += model.active_power(server.spec, used)
        total += server_report.transitions * server.spec.transition_cost
    return total
