"""Generic one-knob sensitivity sweeps with significance.

The figure functions hard-code the paper's sweeps; this harness sweeps
*any* :class:`ScenarioConfig` field for *any* registered algorithm pair,
and attaches a paired t-test per point so the output says not just "by
how much" but "with what confidence". It backs the ``repro sweep`` CLI
command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ValidationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import format_table
from repro.experiments.runner import compare
from repro.metrics.significance import PairedComparison, paired_t_test
from repro.metrics.summary import Aggregate, aggregate

__all__ = ["SensitivityPoint", "SensitivityResult", "sensitivity_sweep"]

_SWEEPABLE = ("n_vms", "mean_interarrival", "mean_duration",
              "transition_time", "server_ratio")


@dataclass(frozen=True)
class SensitivityPoint:
    """One sweep value with seed-averaged outcomes and significance."""

    value: float
    reduction: Aggregate
    baseline_energy: Aggregate
    algorithm_energy: Aggregate
    test: PairedComparison


@dataclass(frozen=True)
class SensitivityResult:
    """A complete sweep over one scenario field."""

    field: str
    algorithm: str
    baseline: str
    points: tuple[SensitivityPoint, ...]

    def format(self) -> str:
        rows = []
        for p in self.points:
            rows.append((
                p.value,
                round(100 * p.reduction.mean, 2),
                round(100 * p.reduction.ci_halfwidth, 2),
                f"{p.test.p_value:.2g}",
                "yes" if p.test.significant else "no",
            ))
        return format_table(
            (self.field, "reduction %", "± (95% CI)", "p-value",
             "significant"), rows)


def sensitivity_sweep(base: ScenarioConfig, field: str,
                      values: Sequence[float],
                      algorithm: str = "min-energy",
                      baseline: str = "ffps") -> SensitivityResult:
    """Sweep ``field`` over ``values``, comparing two algorithms.

    ``field`` must be one of the numeric scenario knobs; each point runs
    both algorithms on identical per-seed workloads and reports the
    paired t-test on total energy.
    """
    if field not in _SWEEPABLE:
        raise ValidationError(
            f"cannot sweep {field!r}; choose from {_SWEEPABLE}")
    if not values:
        raise ValidationError("values must be non-empty")
    points = []
    for value in values:
        cast = int(value) if field == "n_vms" else float(value)
        config = base.with_(**{field: cast})
        runs = [compare(config, seed, algorithm, baseline)
                for seed in config.seeds]
        ours = [r.algorithm.total_energy for r in runs]
        base_costs = [r.baseline.total_energy for r in runs]
        if len(runs) >= 2:
            test = paired_t_test(ours, base_costs)
        else:  # a single seed carries no significance information
            test = PairedComparison(
                mean_diff=ours[0] - base_costs[0], statistic=0.0,
                p_value=1.0, n=1)
        points.append(SensitivityPoint(
            value=float(value),
            reduction=aggregate([r.reduction for r in runs]),
            baseline_energy=aggregate(base_costs),
            algorithm_energy=aggregate(ours),
            test=test,
        ))
    return SensitivityResult(field=field, algorithm=algorithm,
                             baseline=baseline, points=tuple(points))
