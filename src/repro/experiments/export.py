"""Exporting regenerated figure data to CSV and JSON.

Every figure object in :mod:`repro.experiments.figures` renders itself as
a text table; for plotting in external tools the same data is exported as
flat records here. The schema is one row per (series, point):
``figure, series, x, reduction_pct, ffps_*, ours_*`` plus the fit's
parameters when present.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.exceptions import ValidationError
from repro.experiments.figures import (
    Fig8Result,
    FigureResult,
    RobustFrontierResult,
    SweepSeries,
    UtilizationFigure,
)

__all__ = ["figure_records", "save_csv", "save_json"]

_FIELDS = (
    "figure", "series", "x", "reduction_pct",
    "ffps_energy", "ours_energy",
    "ffps_cpu_util", "ours_cpu_util",
    "ffps_mem_util", "ours_mem_util",
    "fit_kind", "fit_params",
)


def _series_records(figure: str, series: SweepSeries) -> list[dict]:
    fit_kind = series.fit.kind if series.fit else ""
    fit_params = (";".join(f"{p:.6g}" for p in series.fit.params)
                  if series.fit else "")
    records = []
    for point in series.points:
        c = point.comparison
        records.append({
            "figure": figure,
            "series": series.label,
            "x": point.x,
            "reduction_pct": point.reduction_pct,
            "ffps_energy": c.baseline_energy.mean,
            "ours_energy": c.algorithm_energy.mean,
            "ffps_cpu_util": c.baseline_cpu_util.mean,
            "ours_cpu_util": c.algorithm_cpu_util.mean,
            "ffps_mem_util": c.baseline_mem_util.mean,
            "ours_mem_util": c.algorithm_mem_util.mean,
            "fit_kind": fit_kind,
            "fit_params": fit_params,
        })
    return records


def _utilization_records(figure: str, label: str,
                         panel: UtilizationFigure) -> list[dict]:
    records = []
    for point in panel.points:
        c = point.comparison
        records.append({
            "figure": figure,
            "series": label,
            "x": point.x,
            "reduction_pct": point.reduction_pct,
            "ffps_energy": c.baseline_energy.mean,
            "ours_energy": c.algorithm_energy.mean,
            "ffps_cpu_util": c.baseline_cpu_util.mean,
            "ours_cpu_util": c.algorithm_cpu_util.mean,
            "ffps_mem_util": c.baseline_mem_util.mean,
            "ours_mem_util": c.algorithm_mem_util.mean,
            "fit_kind": "",
            "fit_params": "",
        })
    return records


def figure_records(result: object) -> list[dict]:
    """Flatten any supported figure object into exportable records."""
    if isinstance(result, FigureResult):
        records = []
        for series in result.series:
            records.extend(_series_records(result.figure, series))
        return records
    if isinstance(result, UtilizationFigure):
        return _utilization_records(result.figure, "utilisation", result)
    if isinstance(result, Fig8Result):
        return (_utilization_records("fig8", "all types",
                                     result.all_types)
                + _utilization_records("fig8", "types 1-3",
                                       result.small_types))
    if isinstance(result, RobustFrontierResult):
        # The frontier has its own (narrower) schema — one row per Γ
        # budget — rather than the ffps-vs-ours comparison columns.
        return [{
            "figure": "robust",
            "series": point.label,
            "x": point.gamma,
            "mode": point.mode,
            "energy": point.energy,
            "placed": point.placed,
            "rejected": point.rejected,
            "overload_rate": point.overload_rate,
        } for point in result.sweep.points]
    raise ValidationError(
        f"cannot export object of type {type(result).__name__}")


def save_csv(result: object, path: str | Path) -> int:
    """Write the figure's records as CSV; returns the row count."""
    records = figure_records(result)
    path = Path(path)
    fieldnames = tuple(records[0]) if records else _FIELDS
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(records)
    return len(records)


def save_json(result: object, path: str | Path) -> int:
    """Write the figure's records as a JSON array; returns the count."""
    records = figure_records(result)
    Path(path).write_text(json.dumps(records, indent=2))
    return len(records)
