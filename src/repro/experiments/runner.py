"""Running scenarios: single runs, algorithm comparisons, seed averaging.

The runner is the glue between a :class:`ScenarioConfig` and the metrics
the paper reports. One :func:`compare` call reproduces a single data point
of a figure: generate the workload for a seed, allocate with FFPS and with
the algorithm under test, and compute energy, reduction ratio and
utilisations. :func:`compare_averaged` repeats that over the scenario's
seeds, matching the paper's "averaged over 5 random runs".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocators.registry import make_allocator
from repro.energy.accounting import energy_report
from repro.energy.cost import CostBreakdown
from repro.experiments.config import ScenarioConfig
from repro.metrics.reduction import energy_reduction_ratio
from repro.metrics.summary import Aggregate, aggregate
from repro.metrics.utilization import UtilizationStats, utilization_stats
from repro.model.allocation import Allocation

__all__ = ["RunResult", "ComparisonResult", "AveragedComparison",
           "run_once", "compare", "compare_averaged"]

#: The paper's baseline algorithm name.
BASELINE = "ffps"


@dataclass(frozen=True)
class RunResult:
    """One algorithm on one seed of one scenario."""

    algorithm: str
    seed: int
    allocation: Allocation
    cost: CostBreakdown
    utilization: UtilizationStats
    servers_used: int

    @property
    def total_energy(self) -> float:
        return self.cost.total


@dataclass(frozen=True)
class ComparisonResult:
    """Baseline vs algorithm on the same workload."""

    baseline: RunResult
    algorithm: RunResult

    @property
    def reduction(self) -> float:
        return energy_reduction_ratio(self.baseline.total_energy,
                                      self.algorithm.total_energy)


@dataclass(frozen=True)
class AveragedComparison:
    """Seed-averaged comparison — one figure data point."""

    config: ScenarioConfig
    reduction: Aggregate
    baseline_energy: Aggregate
    algorithm_energy: Aggregate
    baseline_cpu_util: Aggregate
    baseline_mem_util: Aggregate
    algorithm_cpu_util: Aggregate
    algorithm_mem_util: Aggregate
    runs: tuple[ComparisonResult, ...]


def run_once(config: ScenarioConfig, algorithm: str, seed: int) -> RunResult:
    """Generate the seed's workload and allocate it with one algorithm."""
    vms = config.generate_vms(seed)
    cluster = config.build_cluster()
    allocator = make_allocator(algorithm, seed=seed)
    allocation = allocator.allocate(vms, cluster)
    report = energy_report(allocation)
    return RunResult(
        algorithm=algorithm,
        seed=seed,
        allocation=allocation,
        cost=report.total,
        utilization=utilization_stats(allocation),
        servers_used=report.servers_used,
    )


def compare(config: ScenarioConfig, seed: int,
            algorithm: str = "min-energy",
            baseline: str = BASELINE) -> ComparisonResult:
    """Baseline and algorithm on the *same* workload and fleet."""
    return ComparisonResult(
        baseline=run_once(config, baseline, seed),
        algorithm=run_once(config, algorithm, seed),
    )


def compare_averaged(config: ScenarioConfig,
                     algorithm: str = "min-energy",
                     baseline: str = BASELINE) -> AveragedComparison:
    """Average a comparison over the scenario's seeds."""
    runs = tuple(compare(config, seed, algorithm, baseline)
                 for seed in config.seeds)
    return AveragedComparison(
        config=config,
        reduction=aggregate([r.reduction for r in runs]),
        baseline_energy=aggregate(
            [r.baseline.total_energy for r in runs]),
        algorithm_energy=aggregate(
            [r.algorithm.total_energy for r in runs]),
        baseline_cpu_util=aggregate(
            [r.baseline.utilization.cpu for r in runs]),
        baseline_mem_util=aggregate(
            [r.baseline.utilization.memory for r in runs]),
        algorithm_cpu_util=aggregate(
            [r.algorithm.utilization.cpu for r in runs]),
        algorithm_mem_util=aggregate(
            [r.algorithm.utilization.memory for r in runs]),
        runs=runs,
    )
