"""Experiment harness: scenario configs, runners, and the per-figure
reproduction functions."""

from repro.experiments.config import DEFAULT_SEEDS, ScenarioConfig
from repro.experiments.figures import (
    ablation_initial_wake,
    ablation_sleep_policy,
    ablation_zoo,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    format_table,
    ilp_gap,
)
from repro.experiments.runner import (
    AveragedComparison,
    ComparisonResult,
    RunResult,
    compare,
    compare_averaged,
    run_once,
)
from repro.experiments.tables import table1, table2

__all__ = [
    "DEFAULT_SEEDS",
    "ScenarioConfig",
    "ablation_initial_wake",
    "ablation_sleep_policy",
    "ablation_zoo",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "format_table",
    "ilp_gap",
    "AveragedComparison",
    "ComparisonResult",
    "RunResult",
    "compare",
    "compare_averaged",
    "run_once",
    "table1",
    "table2",
]
