"""Experiment configuration objects.

A :class:`ScenarioConfig` captures one simulated scenario exactly as the
paper's Sec. IV-B describes it: the workload parameters (VM count, Poisson
inter-arrival, exponential mean length, which Table I types), the fleet
(which Table II types, servers = half the VMs by default, a common
transition time), and the seeds to average over.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.exceptions import ValidationError
from repro.model.catalog import ALL_VM_TYPES, SERVER_TYPES
from repro.model.cluster import Cluster
from repro.model.server import ServerSpec
from repro.model.vm import VM, VMSpec
from repro.workload.generator import PoissonWorkload

__all__ = ["ScenarioConfig", "DEFAULT_SEEDS"]

#: The paper averages every data point over 5 random runs.
DEFAULT_SEEDS: tuple[int, ...] = (0, 1, 2, 3, 4)


@dataclass(frozen=True)
class ScenarioConfig:
    """One fully-specified simulation scenario."""

    n_vms: int = 100
    mean_interarrival: float = 4.0
    mean_duration: float = 5.0
    transition_time: float = 1.0
    vm_types: tuple[VMSpec, ...] = field(default=ALL_VM_TYPES)
    server_types: tuple[ServerSpec, ...] = field(default=SERVER_TYPES)
    #: number of servers per VM; the paper uses half the VMs.
    server_ratio: float = 0.5
    seeds: tuple[int, ...] = DEFAULT_SEEDS

    def __post_init__(self) -> None:
        if self.n_vms <= 0:
            raise ValidationError(f"n_vms must be positive, got {self.n_vms}")
        if self.mean_interarrival <= 0:
            raise ValidationError("mean_interarrival must be positive")
        if self.mean_duration <= 0:
            raise ValidationError("mean_duration must be positive")
        if self.transition_time < 0:
            raise ValidationError("transition_time must be non-negative")
        if self.server_ratio <= 0:
            raise ValidationError("server_ratio must be positive")
        if not self.seeds:
            raise ValidationError("seeds must be non-empty")
        if not self.vm_types:
            raise ValidationError("vm_types must be non-empty")
        if not self.server_types:
            raise ValidationError("server_types must be non-empty")

    @property
    def n_servers(self) -> int:
        """Fleet size: ``round(n_vms * server_ratio)``, at least one."""
        return max(1, round(self.n_vms * self.server_ratio))

    def workload(self) -> PoissonWorkload:
        """The Sec. IV-B1 workload family for this scenario."""
        return PoissonWorkload(
            mean_interarrival=self.mean_interarrival,
            mean_duration=self.mean_duration,
            vm_types=self.vm_types,
        )

    def generate_vms(self, seed: int) -> list[VM]:
        """Draw this scenario's VM requests for one seed."""
        return self.workload().generate(self.n_vms, rng=seed)

    def build_cluster(self) -> Cluster:
        """The scenario's fleet, with the transition time applied."""
        return Cluster.mixed(self.server_types, self.n_servers,
                             transition_time=self.transition_time)

    def with_(self, **changes: object) -> "ScenarioConfig":
        """A modified copy (thin wrapper over :func:`dataclasses.replace`)."""
        return replace(self, **changes)

    @staticmethod
    def sweep(base: "ScenarioConfig", field_name: str,
              values: Sequence[object]) -> list["ScenarioConfig"]:
        """Copies of ``base`` with ``field_name`` set to each value."""
        return [replace(base, **{field_name: v}) for v in values]
