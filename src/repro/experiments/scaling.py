"""Empirical complexity: how allocation time grows with problem size.

The heuristic evaluates every feasible server per VM, so its work grows
like ``m * n`` (with ``n = m/2`` in the paper's fleets, ~``m^2``). This
harness measures wall time across instance sizes and fits the empirical
exponent with a log-log linear fit — the scalability claim of the
paper's Fig. 2 ("our algorithm is scalable") made quantitative for the
implementation itself.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

from repro.allocators.registry import make_allocator
from repro.exceptions import ValidationError
from repro.metrics.fitting import FitResult, linear_fit
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms

__all__ = ["ScalingPoint", "ScalingStudy", "measure_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One instance size with its measured wall time."""

    n_vms: int
    n_servers: int
    seconds: float


@dataclass(frozen=True)
class ScalingStudy:
    """Measured points plus the fitted log-log exponent."""

    algorithm: str
    points: tuple[ScalingPoint, ...]
    loglog_fit: FitResult

    @property
    def exponent(self) -> float:
        """Empirical growth exponent: time ~ m^exponent."""
        return self.loglog_fit.params[1]

    def format(self) -> str:
        rows = [f"{p.n_vms:6d} VMs / {p.n_servers:5d} servers: "
                f"{p.seconds * 1000:9.1f} ms" for p in self.points]
        rows.append(f"empirical exponent: {self.exponent:.2f} "
                    f"(adjR2 {self.loglog_fit.adj_r_squared:.3f})")
        return "\n".join(rows)


def measure_scaling(counts: Sequence[int],
                    algorithm: str = "min-energy",
                    mean_interarrival: float = 4.0,
                    repeats: int = 3,
                    seed: int = 0) -> ScalingStudy:
    """Time ``algorithm`` across instance sizes and fit the exponent.

    Each size is measured ``repeats`` times (minimum taken, the standard
    noise-robust estimator for wall-time benchmarking).
    """
    if len(counts) < 2:
        raise ValidationError("need at least two sizes to fit a slope")
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    points = []
    for count in counts:
        vms = generate_vms(count, mean_interarrival=mean_interarrival,
                           seed=seed)
        cluster = Cluster.paper_all_types(max(5, count // 2))
        best = float("inf")
        for _ in range(repeats):
            allocator = make_allocator(algorithm, seed=seed)
            start = time.perf_counter()
            allocator.allocate(vms, cluster)
            best = min(best, time.perf_counter() - start)
        points.append(ScalingPoint(n_vms=count, n_servers=len(cluster),
                                   seconds=best))
    fit = linear_fit([math.log(p.n_vms) for p in points],
                     [math.log(max(p.seconds, 1e-9)) for p in points])
    return ScalingStudy(algorithm=algorithm, points=tuple(points),
                        loglog_fit=fit)
