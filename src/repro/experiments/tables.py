"""Table I and Table II renderers (the paper's parameter tables)."""

from __future__ import annotations

from repro.experiments.figures import format_table
from repro.model.catalog import (
    ALL_VM_TYPES,
    CPU_INTENSIVE_VM_TYPES,
    MEMORY_INTENSIVE_VM_TYPES,
    SERVER_TYPES,
    STANDARD_VM_TYPES,
)

__all__ = ["table1", "table2"]


def table1() -> str:
    """Table I: the types of resource demands of VMs."""
    family_of = {}
    for spec in STANDARD_VM_TYPES:
        family_of[spec.name] = "standard"
    for spec in MEMORY_INTENSIVE_VM_TYPES:
        family_of[spec.name] = "memory-intensive"
    for spec in CPU_INTENSIVE_VM_TYPES:
        family_of[spec.name] = "CPU-intensive"
    rows = [(spec.name, family_of[spec.name], spec.cpu, spec.memory)
            for spec in ALL_VM_TYPES]
    return format_table(
        ("type", "family", "CPU (compute units)", "memory (GBytes)"), rows)


def table2() -> str:
    """Table II: server capacities and power parameters."""
    rows = [(spec.name, spec.cpu_capacity, spec.memory_capacity,
             spec.p_idle, spec.p_peak,
             f"{100 * spec.idle_peak_ratio:.0f}%")
            for spec in SERVER_TYPES]
    return format_table(
        ("type", "CPU (cu)", "memory (GB)", "P_idle (W)", "P_peak (W)",
         "idle/peak"), rows)
