"""Reproduction of every figure in the paper's evaluation (Sec. IV).

Each ``figN`` function regenerates the data behind the corresponding
figure: it sweeps the same parameter, averages over seeds the same way,
fits the same curve family the paper overlays, and returns a structured
result whose ``format()`` renders the series as an aligned text table.
Paper-scale parameters are the defaults; benchmarks may pass smaller
grids, and EXPERIMENTS.md records the paper-scale outputs.

The module also contains the ablations DESIGN.md calls for (allocator zoo,
sleep policy, initial-wake convention, ILP optimality gap), which have no
counterpart figure in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.allocators.registry import allocator_names, make_allocator
from repro.energy.accounting import energy_report
from repro.energy.cost import SleepPolicy, allocation_cost
from repro.exceptions import ValidationError
from repro.experiments.config import DEFAULT_SEEDS, ScenarioConfig
from repro.experiments.runner import AveragedComparison, compare_averaged
from repro.ilp.solver import solve_ilp
from repro.metrics.fitting import (
    FitResult,
    exponential_fit,
    linear_fit,
    logarithmic_fit,
)
from repro.metrics.summary import aggregate
from repro.model.catalog import (
    SERVER_TYPES,
    SMALL_SERVER_TYPES,
    STANDARD_VM_TYPES,
)
from repro.model.cluster import Cluster
from repro.robust.evaluate import GammaSweep, sweep_gamma
from repro.workload.phased import PhasedWorkload

__all__ = [
    "SweepPoint",
    "SweepSeries",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ablation_zoo",
    "ablation_sleep_policy",
    "ablation_initial_wake",
    "ilp_gap",
    "robust_frontier",
    "format_table",
]

#: The paper's mean inter-arrival sweep (0.5 to 10 minutes).
INTERARRIVALS: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{c:.4g}" if isinstance(c, float) else str(c)
                      for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for k, row in enumerate(cells):
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        if k == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


@dataclass(frozen=True)
class SweepPoint:
    """One averaged data point of a sweep."""

    x: float
    comparison: AveragedComparison

    @property
    def reduction_pct(self) -> float:
        return 100.0 * self.comparison.reduction.mean


@dataclass(frozen=True)
class SweepSeries:
    """One labelled curve: points plus the paper's fit over them."""

    label: str
    points: tuple[SweepPoint, ...]
    fit: FitResult | None

    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    def reductions_pct(self) -> list[float]:
        return [p.reduction_pct for p in self.points]


def _fit_series(kind: str, xs: Sequence[float],
                ys: Sequence[float]) -> FitResult | None:
    """Fit the requested curve family, or ``None`` when data is too short."""
    try:
        if kind == "linear":
            return linear_fit(xs, ys)
        if kind == "logarithmic":
            return logarithmic_fit(xs, ys)
        if kind == "exponential":
            return exponential_fit(xs, ys)
    except ValidationError:
        return None
    raise ValidationError(f"unknown fit kind {kind!r}")


def _reduction_sweep(base: ScenarioConfig, field_name: str,
                     values: Sequence[float], label: str,
                     fit_kind: str) -> SweepSeries:
    points = []
    for value in values:
        config = base.with_(**{field_name: value})
        points.append(SweepPoint(x=float(value),
                                 comparison=compare_averaged(config)))
    fit = _fit_series(fit_kind, [p.x for p in points],
                      [p.reduction_pct for p in points])
    return SweepSeries(label=label, points=tuple(points), fit=fit)


@dataclass(frozen=True)
class FigureResult:
    """A figure: one or more series plus a formatting recipe."""

    figure: str
    series: tuple[SweepSeries, ...]
    x_label: str

    def format(self) -> str:
        rows = []
        for s in self.series:
            for p in s.points:
                rows.append((s.label, p.x, round(p.reduction_pct, 2),
                             round(100 * p.comparison.baseline_cpu_util.mean,
                                   1),
                             round(100 * p.comparison.algorithm_cpu_util.mean,
                                   1)))
        header = (self.figure, self.x_label, "reduction %",
                  "ffps cpu util %", "ours cpu util %")
        table = format_table(header, rows)
        fits = "\n".join(
            f"  {s.label}: {s.fit}" for s in self.series if s.fit is not None)
        return table + ("\n\nfits:\n" + fits if fits else "")


# ---------------------------------------------------------------------------
# Fig. 2 — energy reduction vs mean inter-arrival, for 100..500 VMs
# ---------------------------------------------------------------------------

def fig2(n_vms_list: Sequence[int] = (100, 200, 300, 400, 500),
         interarrivals: Sequence[float] = INTERARRIVALS,
         seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Energy reduction ratio of all VM types on all server types.

    The paper's headline figure: the reduction grows approximately
    linearly with the mean inter-arrival time (about 10 % at 10 minutes)
    and is insensitive to the VM count (scalability).
    """
    series = []
    for n_vms in n_vms_list:
        base = ScenarioConfig(n_vms=n_vms, seeds=tuple(seeds))
        series.append(_reduction_sweep(
            base, "mean_interarrival", interarrivals,
            label=f"{n_vms} VMs", fit_kind="linear"))
    return FigureResult(figure="fig2", series=tuple(series),
                        x_label="mean inter-arrival (min)")


# ---------------------------------------------------------------------------
# Fig. 3 — CPU / memory utilisation vs inter-arrival (100 VMs)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UtilizationFigure:
    """Utilisation curves for both algorithms (Figs. 3 and 8)."""

    figure: str
    points: tuple[SweepPoint, ...]
    x_label: str

    def format(self) -> str:
        rows = []
        for p in self.points:
            c = p.comparison
            rows.append((p.x,
                         round(100 * c.algorithm_cpu_util.mean, 1),
                         round(100 * c.algorithm_mem_util.mean, 1),
                         round(100 * c.baseline_cpu_util.mean, 1),
                         round(100 * c.baseline_mem_util.mean, 1)))
        return format_table(
            (self.x_label, "ours cpu %", "ours mem %",
             "ffps cpu %", "ffps mem %"), rows)


def fig3(n_vms: int = 100,
         interarrivals: Sequence[float] = INTERARRIVALS,
         seeds: Sequence[int] = DEFAULT_SEEDS) -> UtilizationFigure:
    """Average nonzero CPU/memory utilisation, ours vs FFPS.

    The paper's claims: our algorithm's utilisations are much higher and
    more even than FFPS's, and utilisation decreases as the inter-arrival
    grows.
    """
    base = ScenarioConfig(n_vms=n_vms, seeds=tuple(seeds))
    points = tuple(
        SweepPoint(x=ia, comparison=compare_averaged(
            base.with_(mean_interarrival=ia)))
        for ia in interarrivals)
    return UtilizationFigure(figure="fig3", points=points,
                             x_label="mean inter-arrival (min)")


# ---------------------------------------------------------------------------
# Fig. 4 — energy reduction vs memory load (logarithmic fits)
# ---------------------------------------------------------------------------

def fig4(n_vms_list: Sequence[int] = (100, 200, 300, 400, 500),
         interarrivals: Sequence[float] = INTERARRIVALS,
         seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Reduction ratio re-indexed by system memory load.

    The system load is quantified by the average memory utilisation FFPS
    achieves (Sec. IV-C); the reduction decreases logarithmically as load
    grows.
    """
    series = []
    for n_vms in n_vms_list:
        base = ScenarioConfig(n_vms=n_vms, seeds=tuple(seeds))
        points = []
        for ia in interarrivals:
            comparison = compare_averaged(base.with_(mean_interarrival=ia))
            load = 100 * comparison.baseline_mem_util.mean
            points.append(SweepPoint(x=load, comparison=comparison))
        points.sort(key=lambda p: p.x)
        fit = _fit_series("logarithmic", [p.x for p in points],
                          [p.reduction_pct for p in points])
        series.append(SweepSeries(label=f"{n_vms} VMs",
                                  points=tuple(points), fit=fit))
    return FigureResult(figure="fig4", series=tuple(series),
                        x_label="memory load (%)")


# ---------------------------------------------------------------------------
# Fig. 5 — impact of the transition time (1000 VMs / 500 servers)
# ---------------------------------------------------------------------------

def fig5(transition_times: Sequence[float] = (0.5, 1.0, 3.0),
         interarrivals: Sequence[float] = INTERARRIVALS,
         n_vms: int = 1000,
         seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Reduction ratio for transition times of 0.5, 1 and 3 minutes.

    Shorter transitions make sleeping through idle segments cheaper, so
    the heuristic saves more. The paper fits the 0.5/1-minute curves
    linearly and the 3-minute curve exponentially.
    """
    series = []
    for transition in transition_times:
        base = ScenarioConfig(n_vms=n_vms, transition_time=transition,
                              seeds=tuple(seeds))
        fit_kind = "exponential" if transition >= 3 else "linear"
        series.append(_reduction_sweep(
            base, "mean_interarrival", interarrivals,
            label=f"transition {transition} min", fit_kind=fit_kind))
    return FigureResult(figure="fig5", series=tuple(series),
                        x_label="mean inter-arrival (min)")


# ---------------------------------------------------------------------------
# Fig. 6 — impact of the mean VM length (1000 VMs / 500 servers)
# ---------------------------------------------------------------------------

def fig6(mean_durations: Sequence[float] = (2.0, 5.0, 10.0),
         interarrivals: Sequence[float] = INTERARRIVALS,
         n_vms: int = 1000,
         seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Reduction ratio for mean VM lengths of 2, 5 and 10 minutes.

    Shorter VMs make the load lighter and more dynamic; FFPS then wastes
    more idle power and the heuristic's advantage grows.
    """
    series = []
    for duration in mean_durations:
        base = ScenarioConfig(n_vms=n_vms, mean_duration=duration,
                              seeds=tuple(seeds))
        fit_kind = "logarithmic" if duration <= 2 else "linear"
        series.append(_reduction_sweep(
            base, "mean_interarrival", interarrivals,
            label=f"mean length {duration} min", fit_kind=fit_kind))
    return FigureResult(figure="fig6", series=tuple(series),
                        x_label="mean inter-arrival (min)")


# ---------------------------------------------------------------------------
# Fig. 7 — standard VMs on server types 1-3
# ---------------------------------------------------------------------------

def fig7(n_vms_list: Sequence[int] = (100, 200, 300, 400, 500),
         interarrivals: Sequence[float] = INTERARRIVALS,
         seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Reduction for standard VM types on small server types (1-3).

    The paper reports savings up to ~20 % with logarithmic fits, shrinking
    as the inter-arrival grows large and the load becomes light... saved
    energy is highest at moderate loads.
    """
    series = []
    for n_vms in n_vms_list:
        base = ScenarioConfig(n_vms=n_vms, vm_types=STANDARD_VM_TYPES,
                              server_types=SMALL_SERVER_TYPES,
                              seeds=tuple(seeds))
        series.append(_reduction_sweep(
            base, "mean_interarrival", interarrivals,
            label=f"{n_vms} VMs", fit_kind="logarithmic"))
    return FigureResult(figure="fig7", series=tuple(series),
                        x_label="mean inter-arrival (min)")


# ---------------------------------------------------------------------------
# Fig. 8 — utilisation for standard VMs, two server mixes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig8Result:
    """Fig. 8(a): all server types; Fig. 8(b): types 1-3."""

    all_types: UtilizationFigure
    small_types: UtilizationFigure

    def format(self) -> str:
        return ("(a) all server types\n" + self.all_types.format()
                + "\n\n(b) server types 1-3\n" + self.small_types.format())


def fig8(n_vms: int = 1000,
         interarrivals: Sequence[float] = INTERARRIVALS,
         seeds: Sequence[int] = DEFAULT_SEEDS) -> Fig8Result:
    """Average utilisation of standard VMs under both server mixes.

    The heuristic keeps both utilisations above ~70 % in both mixes; FFPS
    drops to ~30 % when large server types are present.
    """
    panels = []
    for server_types in (SERVER_TYPES, SMALL_SERVER_TYPES):
        base = ScenarioConfig(n_vms=n_vms, vm_types=STANDARD_VM_TYPES,
                              server_types=server_types, seeds=tuple(seeds))
        points = tuple(
            SweepPoint(x=ia, comparison=compare_averaged(
                base.with_(mean_interarrival=ia)))
            for ia in interarrivals)
        panels.append(UtilizationFigure(
            figure="fig8", points=points,
            x_label="mean inter-arrival (min)"))
    return Fig8Result(all_types=panels[0], small_types=panels[1])


# ---------------------------------------------------------------------------
# Fig. 9 — reduction vs system load, both server mixes (linear fits)
# ---------------------------------------------------------------------------

def fig9(n_vms: int = 1000,
         interarrivals: Sequence[float] = INTERARRIVALS,
         seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Reduction ratio vs CPU and memory load under both server mixes.

    The reduction decreases close to linearly with load, and the all-types
    mix yields a higher reduction than the types-1-3 mix at equal load.
    """
    series = []
    for server_types, mix_label in ((SERVER_TYPES, "all types"),
                                    (SMALL_SERVER_TYPES, "types 1-3")):
        base = ScenarioConfig(n_vms=n_vms, vm_types=STANDARD_VM_TYPES,
                              server_types=server_types, seeds=tuple(seeds))
        comparisons = [
            compare_averaged(base.with_(mean_interarrival=ia))
            for ia in interarrivals]
        for axis, label in (("cpu", "CPU load"), ("memory", "memory load")):
            points = []
            for comparison in comparisons:
                util = (comparison.baseline_cpu_util if axis == "cpu"
                        else comparison.baseline_mem_util)
                points.append(SweepPoint(x=100 * util.mean,
                                         comparison=comparison))
            points.sort(key=lambda p: p.x)
            fit = _fit_series("linear", [p.x for p in points],
                              [p.reduction_pct for p in points])
            series.append(SweepSeries(
                label=f"vs {label} ({mix_label})",
                points=tuple(points), fit=fit))
    return FigureResult(figure="fig9", series=tuple(series),
                        x_label="load (%)")


# ---------------------------------------------------------------------------
# Ablations (no counterpart in the paper; DESIGN.md Sec. 6)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AblationRow:
    label: str
    energy_mean: float
    reduction_vs_ffps_pct: float
    servers_used: float


@dataclass(frozen=True)
class AblationResult:
    name: str
    rows: tuple[AblationRow, ...]

    def format(self) -> str:
        return format_table(
            (self.name, "energy", "vs ffps %", "servers used"),
            [(r.label, round(r.energy_mean, 1),
              round(r.reduction_vs_ffps_pct, 2), round(r.servers_used, 1))
             for r in self.rows])


def ablation_zoo(config: ScenarioConfig | None = None,
                 algorithms: Sequence[str] | None = None) -> AblationResult:
    """Every registered allocator on one scenario, FFPS-normalised."""
    config = config or ScenarioConfig(n_vms=200, seeds=DEFAULT_SEEDS)
    algorithms = list(algorithms or allocator_names())
    per_algo: dict[str, list[float]] = {a: [] for a in algorithms}
    servers: dict[str, list[float]] = {a: [] for a in algorithms}
    for seed in config.seeds:
        vms = config.generate_vms(seed)
        cluster = config.build_cluster()
        for algo in algorithms:
            allocation = make_allocator(algo, seed=seed).allocate(
                vms, cluster)
            report = energy_report(allocation)
            per_algo[algo].append(report.total_energy)
            servers[algo].append(report.servers_used)
    ffps_mean = aggregate(per_algo["ffps"]).mean if "ffps" in per_algo \
        else None
    rows = []
    for algo in algorithms:
        mean = aggregate(per_algo[algo]).mean
        reduction = (100 * (ffps_mean - mean) / ffps_mean
                     if ffps_mean else float("nan"))
        rows.append(AblationRow(
            label=algo, energy_mean=mean,
            reduction_vs_ffps_pct=reduction,
            servers_used=aggregate(servers[algo]).mean))
    rows.sort(key=lambda r: r.energy_mean)
    return AblationResult(name="allocator", rows=tuple(rows))


def ablation_sleep_policy(config: ScenarioConfig | None = None
                          ) -> AblationResult:
    """Value of the ``min(P_idle*gap, alpha)`` rule vs never/always sleep."""
    config = config or ScenarioConfig(n_vms=200, seeds=DEFAULT_SEEDS)
    rows = []
    baseline_mean = None
    for policy in (SleepPolicy.OPTIMAL, SleepPolicy.NEVER_SLEEP,
                   SleepPolicy.ALWAYS_SLEEP):
        energies = []
        servers = []
        for seed in config.seeds:
            vms = config.generate_vms(seed)
            cluster = config.build_cluster()
            allocation = make_allocator(
                "min-energy", seed=seed, policy=policy).allocate(
                    vms, cluster)
            report = energy_report(allocation, policy=policy)
            energies.append(report.total_energy)
            servers.append(report.servers_used)
        mean = aggregate(energies).mean
        if policy is SleepPolicy.OPTIMAL:
            baseline_mean = mean
        rows.append(AblationRow(
            label=policy.value, energy_mean=mean,
            reduction_vs_ffps_pct=100 * (baseline_mean - mean)
            / baseline_mean,
            servers_used=aggregate(servers).mean))
    return AblationResult(name="sleep policy", rows=tuple(rows))


def ablation_initial_wake(config: ScenarioConfig | None = None
                          ) -> AblationResult:
    """Share of total energy contributed by the initial-wake convention.

    Quantifies the Eq.-17 note in DESIGN.md: how much energy the
    first-switch-on term adds for each algorithm (it applies identically
    to all of them, so comparisons are convention-independent).
    """
    config = config or ScenarioConfig(n_vms=200, seeds=DEFAULT_SEEDS)
    rows = []
    for algo in ("min-energy", "ffps"):
        with_wake = []
        without = []
        servers = []
        for seed in config.seeds:
            vms = config.generate_vms(seed)
            cluster = config.build_cluster()
            allocation = make_allocator(algo, seed=seed).allocate(
                vms, cluster)
            with_wake.append(allocation_cost(
                allocation, include_initial_wake=True).total)
            without.append(allocation_cost(
                allocation, include_initial_wake=False).total)
            servers.append(len(allocation.used_servers()))
        w = aggregate(with_wake).mean
        wo = aggregate(without).mean
        rows.append(AblationRow(
            label=f"{algo} (wake share)", energy_mean=w,
            reduction_vs_ffps_pct=100 * (w - wo) / w,
            servers_used=aggregate(servers).mean))
    return AblationResult(name="initial wake", rows=tuple(rows))


@dataclass(frozen=True)
class ILPGapResult:
    """Optimality gaps of the heuristic and FFPS on small instances."""

    rows: tuple[tuple[int, float, float, float], ...]

    def format(self) -> str:
        return format_table(
            ("seed", "optimal", "heuristic gap %", "ffps gap %"),
            [(s, round(o, 1), round(h, 2), round(f, 2))
             for s, o, h, f in self.rows])

    @property
    def mean_heuristic_gap_pct(self) -> float:
        return sum(r[2] for r in self.rows) / len(self.rows)

    @property
    def mean_ffps_gap_pct(self) -> float:
        return sum(r[3] for r in self.rows) / len(self.rows)


@dataclass(frozen=True)
class RobustFrontierResult:
    """The energy-vs-overload frontier of Γ-robust placement.

    One row per Γ budget: committed Eq.-17 energy of the robust plan,
    its placed/rejected split, and the overload rate measured by
    replaying the plan against demand realized from the declared
    intervals (:mod:`repro.robust.evaluate`). Γ=0 is the nominal
    planner; ``box`` (when swept) the full worst case.
    """

    uncertainty: float
    n_vms: int
    sweep: GammaSweep

    def format(self) -> str:
        return (f"Γ frontier — {self.sweep.algo}, {self.n_vms} VMs, "
                f"±{100 * self.uncertainty:.0f}% demand uncertainty, "
                f"{self.sweep.draws} realized worlds\n"
                + self.sweep.format())


def robust_frontier(n_vms: int = 300, mean_interarrival: float = 0.5,
                    mean_duration: float = 8.0, uncertainty: float = 0.3,
                    gammas: Sequence[int] = (0, 1, 2, 3, 4),
                    include_box: bool = True, algo: str = "first-fit",
                    draws: int = 20, seed: int = 7) -> RobustFrontierResult:
    """Sweep the Γ budget on one uncertain phased workload (extra study).

    The workload declares ``±uncertainty`` demand intervals around the
    catalog nominals; each budget's committed plan is replayed against
    the same realized worlds, tracing how much overload a unit of
    robustness energy buys.
    """
    if not 0 < uncertainty <= 1:
        raise ValidationError(
            f"uncertainty must be in (0, 1], got {uncertainty}")
    workload = PhasedWorkload(
        mean_interarrival=mean_interarrival, mean_duration=mean_duration,
        uncertainty=uncertainty)
    vms = workload.generate(n_vms, rng=seed)
    cluster = Cluster.paper_all_types(max(1, n_vms // 5))
    sweep = sweep_gamma(vms, cluster, gammas=gammas,
                        include_box=include_box, algo=algo, draws=draws,
                        seed=seed)
    return RobustFrontierResult(uncertainty=uncertainty, n_vms=n_vms,
                                sweep=sweep)


def ilp_gap(n_vms: int = 10, n_servers: int = 4,
            mean_interarrival: float = 2.0,
            seeds: Sequence[int] = DEFAULT_SEEDS,
            time_limit: float | None = 60.0) -> ILPGapResult:
    """Compare both algorithms against the HiGHS optimum (extra study).

    Uses standard VM types only, so every VM fits every server and tiny
    instances are never infeasible by type mismatch.
    """
    config = ScenarioConfig(
        n_vms=n_vms, mean_interarrival=mean_interarrival,
        vm_types=STANDARD_VM_TYPES,
        server_ratio=n_servers / n_vms, seeds=tuple(seeds))
    rows = []
    for seed in config.seeds:
        vms = config.generate_vms(seed)
        cluster = config.build_cluster()
        optimal = solve_ilp(vms, cluster, time_limit=time_limit)
        heuristic = allocation_cost(
            make_allocator("min-energy").allocate(vms, cluster)).total
        ffps = allocation_cost(
            make_allocator("ffps", seed=seed).allocate(vms, cluster)).total
        rows.append((
            seed, optimal.objective,
            100 * (heuristic - optimal.objective) / optimal.objective,
            100 * (ffps - optimal.objective) / optimal.objective))
    return ILPGapResult(rows=tuple(rows))
