"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries while more specific handlers
remain possible.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument or model object failed validation.

    Also subclasses :class:`ValueError` so generic callers that expect
    standard-library semantics keep working.
    """


class AllocatorConfigError(ValidationError):
    """An allocator was requested by an unknown name or with parameters
    its constructor does not accept. The message always lists the valid
    choices so callers (CLI, service config) can self-correct."""


class CapacityError(ReproError):
    """A placement would exceed a server's CPU or memory capacity."""

    def __init__(self, message: str, *, server_id: int | None = None,
                 time: int | None = None) -> None:
        super().__init__(message)
        self.server_id = server_id
        self.time = time


class AllocationError(ReproError):
    """No feasible server exists for a VM (the allocator cannot place it)."""

    def __init__(self, message: str, *, vm_id: int | None = None) -> None:
        super().__init__(message)
        self.vm_id = vm_id


class SolverError(ReproError):
    """The exact ILP solver failed or returned an unusable status."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ServiceError(ReproError):
    """The online allocation service received a request it cannot honour
    (malformed message, unknown operation, or a protocol violation)."""


class ProtocolVersionError(ServiceError):
    """A request carried a protocol version this daemon does not speak.

    Carries the offending ``version`` and the ``supported`` tuple so the
    service can answer with a structured error listing the versions a
    client may retry with.
    """

    def __init__(self, message: str, *, version: object = None,
                 supported: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.version = version
        self.supported = tuple(supported)


class UnknownOperationError(ServiceError):
    """A request named an operation this daemon does not implement.

    Carries the offending ``op`` and the ``supported`` tuple so the
    service can answer with a structured error listing the operations a
    client may use — the same self-describing shape as
    :class:`ProtocolVersionError`.
    """

    def __init__(self, message: str, *, op: object = None,
                 supported: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.op = op
        self.supported = tuple(supported)


class UnavailableError(ServiceError):
    """The daemon cannot serve requests right now (shut down, or still
    replaying a restore). The request was not applied; clients should
    fail over or wait for the daemon to come back."""


class RetryableError(ServiceError):
    """A service request failed for a *transient* reason.

    The operation may have succeeded or may succeed if repeated; clients
    with a retry budget should back off and try again. Terminal errors
    (validation, protocol violations) deliberately do **not** derive
    from this class, so ``except RetryableError`` is exactly the
    client's retry classification.
    """


class TransportError(RetryableError):
    """The connection to the daemon broke (reset, timeout, closed
    mid-response). The daemon may be fine; reconnect and retry."""


class OverloadedError(RetryableError):
    """The daemon shed the request under load (bounded ingest queue).

    Carries the daemon's suggested ``retry_after`` delay in seconds;
    retrying clients wait at least that long before the next attempt.
    """

    def __init__(self, message: str, *,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after
