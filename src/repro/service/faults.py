"""Deterministic fault injection against a running allocation daemon.

The chaos harness of the service tests and the CI ``chaos`` job: a
:class:`FaultInjector` holds a fixed schedule of :class:`FaultEvent`\\ s
— server failures, recoveries, forced consolidation episodes and
client-side latency stalls — keyed
by *stream position* (how many requests the driver has sent), and the
driver calls :meth:`FaultInjector.fire_due` between requests. Because
the schedule is data and positions are deterministic, every run of a
seeded test injects exactly the same faults at exactly the same points
in the stream, which is what makes the live-versus-offline energy
equality assertions possible.

The injector talks through any client exposing ``fail_server`` /
``recover_server`` (an :class:`~repro.service.client.AllocationClient`
or the daemon's in-process dict API wrapped in a shim), so the same
schedule drives a TCP daemon in CI and an in-process daemon in unit
tests.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.exceptions import ValidationError

__all__ = ["FaultEvent", "FaultInjector"]

#: Fault kinds the injector understands.
KINDS = ("fail", "recover", "consolidate", "stall", "dump_debug")


class _FaultTarget(Protocol):
    def fail_server(self, server_id: int,
                    time: int | None = None) -> dict[str, object]: ...

    def recover_server(self, server_id: int) -> dict[str, object]: ...

    def consolidate(self,
                    time: int | None = None) -> dict[str, object]: ...

    def dump_debug(self) -> dict[str, object]: ...


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault.

    ``after`` is the stream position the event fires at: the event is
    due once the driver has issued ``after`` requests (so ``after=0``
    fires before the first request). ``kind`` is one of ``"fail"``
    (needs ``server_id``, optional failure ``time``), ``"recover"``
    (needs ``server_id``), ``"consolidate"`` (forces one live
    consolidation episode, optional ``time``), ``"stall"`` (sleeps
    ``stall_ms`` on the driver side — a latency spike, no daemon
    interaction) or ``"dump_debug"`` (pulls the daemon's flight
    recorder mid-chaos, exercising the debug path under load).
    """

    after: int
    kind: str = field(compare=False)
    server_id: int | None = field(default=None, compare=False)
    time: int | None = field(default=None, compare=False)
    stall_ms: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValidationError(
                f"fault position 'after' must be >= 0, got {self.after}")
        if self.kind not in KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{list(KINDS)}")
        if self.kind in ("fail", "recover") and self.server_id is None:
            raise ValidationError(
                f"a {self.kind!r} fault needs a server_id")
        if self.kind == "stall" and self.stall_ms < 0:
            raise ValidationError(
                f"stall_ms must be >= 0, got {self.stall_ms}")


class FaultInjector:
    """Fire a fixed fault schedule against a daemon, deterministically.

    ``events`` may arrive in any order; they are fired sorted by
    ``after`` (ties in schedule order). The driver calls
    :meth:`fire_due` with its current stream position between requests
    and :meth:`drain` once the stream ends; each event fires exactly
    once. ``sleep`` is injectable so tests can run stalls at zero
    wall-clock cost.

    Every daemon response is collected in :attr:`responses` (in firing
    order, paired with its event) for assertions on re-placement
    outcomes.
    """

    def __init__(self, events: Sequence[FaultEvent], target: _FaultTarget,
                 *, sleep: Callable[[float], None] = _time.sleep) -> None:
        self._pending: list[FaultEvent] = sorted(
            events, key=lambda e: e.after)
        self._target = target
        self._sleep = sleep
        self.responses: list[tuple[FaultEvent, dict[str, object]]] = []

    @property
    def pending(self) -> tuple[FaultEvent, ...]:
        """Events not yet fired, in firing order."""
        return tuple(self._pending)

    def fire_due(self, position: int) -> list[dict[str, object]]:
        """Fire every event with ``after <= position``; returns their
        daemon responses (empty for stalls)."""
        fired: list[dict[str, object]] = []
        while self._pending and self._pending[0].after <= position:
            event = self._pending.pop(0)
            fired.extend(self._fire(event))
        return fired

    def drain(self) -> list[dict[str, object]]:
        """Fire everything still pending (end of stream)."""
        fired: list[dict[str, object]] = []
        while self._pending:
            fired.extend(self._fire(self._pending.pop(0)))
        return fired

    def _fire(self, event: FaultEvent) -> list[dict[str, object]]:
        if event.kind == "stall":
            self._sleep(event.stall_ms / 1e3)
            return []
        if event.kind == "fail":
            response = self._target.fail_server(event.server_id,
                                                event.time)
        elif event.kind == "consolidate":
            response = self._target.consolidate(event.time)
        elif event.kind == "dump_debug":
            response = self._target.dump_debug()
        else:
            response = self._target.recover_server(event.server_id)
        self.responses.append((event, response))
        return [response]
