"""The HTTP/REST gateway: the daemon's ops as JSON-over-HTTP.

Every endpoint translates onto the same :meth:`AllocationDaemon.handle`
op handlers the socket transports use — one daemon, one commit lock,
one metrics surface, whatever the wire.

=====================  ======  =========================================
Endpoint               Method  Daemon op
=====================  ======  =========================================
``/v1/place``          POST    ``place`` (body: ``{"vm": {...}}``)
``/v1/place_batch``    POST    ``place_batch`` (body: ``{"vms": [...]}``)
``/v1/tick``           POST    ``tick`` (body: ``{"now": t}``)
``/v1/fail_server``    POST    ``fail_server``
``/v1/recover_server`` POST    ``recover_server``
``/v1/consolidate``    POST    ``consolidate``
``/v1/snapshot``       POST    ``snapshot``
``/v1/shutdown``       POST    ``shutdown``
``/v1/stats``          GET     ``stats``
``/v1/telemetry``      GET     ``telemetry`` (``?last=N``)
``/v1/metrics``        GET     ``metrics`` (Prometheus text page)
``/healthz``           GET     liveness/readiness probe
``/varz``              GET     the debug JSON document
=====================  ======  =========================================

Requests are served as protocol **v3**, so failures carry the typed
error envelope (:mod:`repro.service.errors`) and the HTTP status is
its projection — ``overloaded`` answers ``429`` with a ``Retry-After``
header, ``unavailable`` ``503``, validation failures ``400``.

Trace propagation: ``X-Trace-Id`` / ``X-Request-Id`` request headers
become the request's :class:`~repro.obs.context.TraceContext` (the
same ids land on journal entries, spans and logs), and both ids are
echoed back as response headers whether the caller supplied them or
not.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.context import REQUEST_ID_FIELD, TRACE_ID_FIELD
from repro.service.daemon import AllocationDaemon
from repro.service.errors import envelope, error_fields, http_status_of
from repro.service.metrics import CONTENT_TYPE

__all__ = ["GatewayServer", "start_gateway"]

#: Header names carrying the trace context across the HTTP hop.
TRACE_HEADER = "X-Trace-Id"
REQUEST_HEADER = "X-Request-Id"

_POST_OPS = ("place", "place_batch", "tick", "fail_server",
             "recover_server", "consolidate", "snapshot", "shutdown")
_GET_OPS = ("stats", "telemetry", "dump_debug")

_JSON = "application/json; charset=utf-8"
_MAX_BODY = 64 * 1024 * 1024


class _GatewayHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def _send(self, status: int, body: bytes, content_type: str = _JSON,
              extra: dict[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, code: str, message: str) -> None:
        body = json.dumps(
            {"ok": False, "error": envelope(code, message)},
            separators=(",", ":")).encode("utf-8")
        self._send(status, body)

    def _send_response(self, response: dict[str, object]) -> None:
        """One daemon response, projected onto HTTP."""
        status = http_status_of(response)
        extra: dict[str, str] = {}
        trace_id = response.get(TRACE_ID_FIELD)
        request_id = response.get(REQUEST_ID_FIELD)
        if isinstance(trace_id, str):
            extra[TRACE_HEADER] = trace_id
        if isinstance(request_id, str):
            extra[REQUEST_HEADER] = request_id
        fields = error_fields(response)
        if fields is not None and fields.retry_after is not None:
            extra["Retry-After"] = str(fields.retry_after)
        body = json.dumps(response, separators=(",", ":"),
                          default=str).encode("utf-8")
        self._send(status, body, extra=extra)

    def _dispatch(self, op: str, body: dict[str, object]) -> None:
        message: dict[str, object] = {"op": op, "v": 3, **body}
        for header, field in ((TRACE_HEADER, TRACE_ID_FIELD),
                              (REQUEST_HEADER, REQUEST_ID_FIELD)):
            value = self.headers.get(header)
            if value is not None and field not in message:
                message[field] = value
        self._send_response(self.server.daemon.handle(message))

    # -- methods -----------------------------------------------------------

    def do_POST(self) -> None:
        path = urlparse(self.path).path
        parts = path.strip("/").split("/")
        if len(parts) != 2 or parts[0] != "v1":
            self._send_error(404, "not_found", f"no such endpoint {path}")
            return
        op = parts[1]
        if op in _GET_OPS or path in ("/healthz", "/readyz", "/varz") \
                or op == "metrics":
            self._send_error(405, "method_not_allowed",
                             f"{path} is read-only; use GET")
            return
        if op not in _POST_OPS:
            self._send_error(404, "not_found", f"no such endpoint {path}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            self._send_error(400, "bad_request",
                             "malformed Content-Length header")
            return
        if length > _MAX_BODY:
            self._send_error(400, "bad_request",
                             f"request body of {length} bytes exceeds "
                             f"the {_MAX_BODY}-byte limit")
            return
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_error(400, "bad_request",
                             f"request body is not valid JSON: {exc}")
            return
        if not isinstance(body, dict):
            self._send_error(400, "bad_request",
                             "request body must be a JSON object")
            return
        self._dispatch(op, body)

    def do_GET(self) -> None:
        parsed = urlparse(self.path)
        path = parsed.path
        daemon = self.server.daemon
        if path in ("/healthz", "/readyz"):
            if daemon.ready and not daemon.closed:
                self._send(200, b"ok\n", "text/plain; charset=utf-8")
            else:
                reason = b"shutting down\n" if daemon.closed \
                    else b"restoring\n"
                self._send(503, reason, "text/plain; charset=utf-8")
            return
        if path == "/varz":
            body = (json.dumps(daemon.varz(), indent=2, default=str)
                    + "\n").encode("utf-8")
            self._send(200, body)
            return
        if path in ("/v1/metrics", "/metrics"):
            # The Prometheus page is text, not a JSON op response.
            self._send(200, daemon.render_metrics().encode("utf-8"),
                       CONTENT_TYPE)
            return
        parts = path.strip("/").split("/")
        if len(parts) != 2 or parts[0] != "v1":
            self._send_error(404, "not_found", f"no such endpoint {path}")
            return
        op = parts[1]
        if op in _POST_OPS:
            self._send_error(405, "method_not_allowed",
                             f"{path} mutates state; use POST")
            return
        if op not in _GET_OPS:
            self._send_error(404, "not_found", f"no such endpoint {path}")
            return
        body: dict[str, object] = {}
        if op == "telemetry":
            query = parse_qs(parsed.query)
            if "last" in query:
                try:
                    body["last"] = int(query["last"][0])
                except ValueError:
                    self._send_error(
                        400, "bad_request",
                        f"query parameter last={query['last'][0]!r} "
                        f"is not an integer")
                    return
        self._dispatch(op, body)

    def log_message(self, *args: object) -> None:
        """Silence per-request stderr logging."""


class GatewayServer(ThreadingHTTPServer):
    """The gateway's HTTP server (one thread per request, shared
    daemon). Built by :func:`start_gateway`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 daemon: AllocationDaemon) -> None:
        super().__init__(address, _GatewayHandler)
        self.daemon = daemon


def start_gateway(daemon: AllocationDaemon, host: str = "127.0.0.1",
                  port: int = 0) -> GatewayServer:
    """Serve the REST gateway on a background thread.

    Port ``0`` binds an ephemeral port (read it back from
    ``server.server_address``). A daemon shutdown — whether it arrived
    through the gateway or any socket transport — stops the server.
    """
    server = GatewayServer((host, port), daemon)
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name="repro-gateway")
    thread.start()
    daemon.on_shutdown(lambda: threading.Thread(
        target=server.shutdown, daemon=True).start())
    return server
