"""Crash-safe persistence: the request journal and snapshot rotation.

The daemon's durability story is the classic snapshot + write-ahead
pair:

* every state-mutating request (``place``, ``tick``) is appended to a
  JSON-lines **journal** — flushed (and optionally fsynced) per entry,
  with monotone sequence numbers;
* periodically the whole :class:`~repro.service.state.ClusterStateStore`
  is checkpointed as a **snapshot** that records the last journal
  sequence it covers.

Restore loads the newest readable snapshot and replays only the journal
entries after its sequence number. A torn final journal line (the crash
happened mid-write) is dropped on read *and truncated away on reopen* —
an entry only exists once its terminating newline is on disk, and
appending after a partial line would weld two records into one
unparseable line. Corruption anywhere before the final line is an
error. Placements are replayed from the *recorded* decision, not
re-derived through the allocator, so a restored daemon reaches the
identical state even for randomized allocators.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Mapping

from repro.exceptions import ValidationError

__all__ = ["RequestJournal", "SnapshotManager", "read_journal"]

_SNAPSHOT_GLOB = "snapshot-*.json"


class RequestJournal:
    """An append-only JSON-lines journal with monotone sequence numbers."""

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._next_seq = 1
        if self.path.exists():
            entries, keep = _scan_journal(self.path)
            if entries:
                self._next_seq = int(entries[-1]["seq"]) + 1
            if keep < self.path.stat().st_size:
                # Cut the torn tail before appending: writing onto a
                # partial line would merge two entries into one
                # unparseable record and lose both on the next restore.
                with self.path.open("rb+") as fh:
                    fh.truncate(keep)
                    fh.flush()
                    if fsync:
                        os.fsync(fh.fileno())
        self._fh = self.path.open("a", encoding="utf-8")

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def append(self, entry: Mapping[str, object]) -> int:
        """Durably append ``entry``; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        record = {"seq": seq, **entry}
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        return seq

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _scan_journal(path: Path) -> tuple[list[dict[str, object]], int]:
    """Parse the journal; returns ``(entries, keep)``.

    ``keep`` is the byte offset just past the last complete entry —
    everything beyond it is a torn final write. An entry only counts
    once its terminating newline is on disk, so an unterminated final
    line is dropped even when its JSON happens to parse (the append
    never completed, hence was never acknowledged).

    Raises :class:`ValidationError` when a line *before* the last is
    unreadable — that is corruption, not an interrupted append.
    """
    entries: list[dict[str, object]] = []
    keep = 0
    cursor = 0
    lines = path.read_bytes().splitlines(keepends=True)
    for i, raw in enumerate(lines):
        cursor += len(raw)
        if not raw.endswith(b"\n"):
            break  # unterminated final write: the entry never happened
        if not raw.strip():
            keep = cursor
            continue
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if i == len(lines) - 1:
                break  # torn final write
            raise ValidationError(
                f"{path}:{i + 1}: corrupt journal entry: {exc}") from exc
        if not isinstance(entry, dict) or "seq" not in entry:
            raise ValidationError(
                f"{path}:{i + 1}: journal entry without seq: {raw!r}")
        entries.append(entry)
        keep = cursor
    return entries, keep


def read_journal(path: str | Path) -> Iterator[dict[str, object]]:
    """Yield journal entries in order, dropping a torn final line.

    Raises :class:`ValidationError` when a line *before* the last is
    unreadable — that is corruption, not an interrupted append.
    """
    path = Path(path)
    if not path.exists():
        return
    yield from _scan_journal(path)[0]


class SnapshotManager:
    """Writes, rotates and recovers snapshot files in one directory."""

    def __init__(self, directory: str | Path, *, keep: int = 3) -> None:
        if keep < 1:
            raise ValidationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._keep = keep

    def path_for(self, seq: int) -> Path:
        return self.directory / f"snapshot-{seq:010d}.json"

    def save(self, document: Mapping[str, object], seq: int) -> Path:
        """Atomically write the snapshot covering journal entries <= seq."""
        path = self.path_for(seq)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document), encoding="utf-8")
        os.replace(tmp, path)
        self._prune()
        return path

    def _prune(self) -> None:
        snapshots = sorted(self.directory.glob(_SNAPSHOT_GLOB))
        for stale in snapshots[:-self._keep]:
            stale.unlink(missing_ok=True)

    def load_latest(self) -> dict[str, object] | None:
        """The newest readable snapshot document, or ``None``.

        A snapshot that fails to parse (e.g. the crash interrupted an
        ``os.replace`` on a filesystem without atomic rename) is skipped
        in favour of the previous one.
        """
        for path in sorted(self.directory.glob(_SNAPSHOT_GLOB),
                           reverse=True):
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(document, dict):
                return document
        return None
