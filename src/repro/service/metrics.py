"""Service metrics and their Prometheus text exposition.

Counters (requests by decision, admission delays, protocol errors), a
bounded reservoir of per-request placement latencies (p50/p99), and
gauges read live off the :class:`~repro.service.state.ClusterStateStore`
— instantaneous Eq.-1 fleet power, servers active/asleep, the analytic
energy accumulated so far, and the integrated/peak power of the closed
ticks via :class:`~repro.simulation.telemetry.Telemetry`.

The exposition follows the Prometheus text format, version 0.0.4:
``# HELP`` / ``# TYPE`` comments followed by ``name{labels} value``
sample lines, one metric family per block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.service.state import ClusterStateStore

__all__ = ["LatencyReservoir", "ServiceMetrics", "CONTENT_TYPE"]

#: The HTTP Content-Type of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_DECISIONS = ("placed", "rejected")


class LatencyReservoir:
    """A bounded sliding window of latency samples with quantile reads."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValidationError(
                f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._samples: list[float] = []
        self._next = 0
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:  # overwrite round-robin: keep the most recent window
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self._capacity

    def quantile(self, q: float) -> float:
        """The q-quantile (nearest-rank) of the window; 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]


class ServiceMetrics:
    """Counters + latency reservoir, renderable as Prometheus text."""

    def __init__(self) -> None:
        self.requests = {decision: 0 for decision in _DECISIONS}
        self.delayed = 0
        self.errors = 0
        self.latency = LatencyReservoir()

    def observe_request(self, decision: str, latency_seconds: float,
                        delay: int = 0) -> None:
        if decision not in self.requests:
            raise ValidationError(f"unknown decision {decision!r}")
        self.requests[decision] += 1
        if delay:
            self.delayed += 1
        self.latency.observe(latency_seconds)

    def observe_replayed(self, decision: str, delay: int = 0) -> None:
        """Count a journal-replayed request (no latency sample — the
        original timing is gone)."""
        if decision not in self.requests:
            raise ValidationError(f"unknown decision {decision!r}")
        self.requests[decision] += 1
        if delay:
            self.delayed += 1

    def observe_error(self) -> None:
        self.errors += 1

    # -- persistence (the latency window itself is not restorable) --------

    def to_meta(self) -> dict[str, object]:
        return {"requests": dict(self.requests), "delayed": self.delayed,
                "errors": self.errors}

    def restore_meta(self, meta: Mapping[str, object]) -> None:
        requests = meta.get("requests")
        if isinstance(requests, Mapping):
            for decision in _DECISIONS:
                self.requests[decision] = int(requests.get(decision, 0))
        self.delayed = int(meta.get("delayed", 0))
        self.errors = int(meta.get("errors", 0))

    # -- exposition --------------------------------------------------------

    def render(self, store: "ClusterStateStore") -> str:
        """The full Prometheus text page for this daemon."""
        telemetry = store.telemetry()
        lines: list[str] = []

        def family(name: str, kind: str, help_text: str,
                   samples: list[tuple[str, float]]) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for suffix, value in samples:
                lines.append(f"{name}{suffix} {value:.10g}")

        family("repro_requests_total", "counter",
               "Placement requests by final decision.",
               [(f'{{decision="{d}"}}', float(self.requests[d]))
                for d in _DECISIONS])
        family("repro_requests_delayed_total", "counter",
               "Requests admitted only after a queueing delay.",
               [("", float(self.delayed))])
        family("repro_request_errors_total", "counter",
               "Malformed or unserviceable protocol requests.",
               [("", float(self.errors))])
        family("repro_placement_latency_seconds", "summary",
               "Service-side latency of placement decisions.",
               [('{quantile="0.5"}', self.latency.quantile(0.5)),
                ('{quantile="0.99"}', self.latency.quantile(0.99)),
                ("_sum", self.latency.total),
                ("_count", float(self.latency.count))])
        family("repro_fleet_power_watts", "gauge",
               "Instantaneous fleet power draw (Eq. 1).",
               [("", store.fleet_power())])
        family("repro_servers_active", "gauge",
               "Servers currently in the active power state.",
               [("", float(store.servers_active()))])
        family("repro_servers_asleep", "gauge",
               "Servers currently in the power-saving state.",
               [("", float(store.servers_asleep()))])
        family("repro_running_vms", "gauge",
               "VM demand pieces currently resident on the fleet.",
               [("", float(store.running_vms()))])
        family("repro_clock_ticks", "gauge",
               "Current wall-clock tick of the cluster state.",
               [("", float(store.clock))])
        family("repro_vms_placed", "gauge",
               "VMs committed to the plan since daemon start.",
               [("", float(len(store.placements)))])
        family("repro_energy_accumulated_watt_ticks", "counter",
               "Analytic Eq.-17 energy accumulated over all placements.",
               [("", store.energy_accumulated)])
        family("repro_busy_energy_watt_ticks", "counter",
               "Integrated live fleet power over closed ticks.",
               [("", telemetry.total_energy)])
        family("repro_power_peak_watts", "gauge",
               "Peak per-tick fleet power over closed ticks.",
               [("", telemetry.peak_power)])
        return "\n".join(lines) + "\n"
