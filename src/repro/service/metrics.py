"""Service metrics and their Prometheus text exposition.

Counters (requests by decision — plain and labelled per algorithm —
admission delays, protocol errors), cumulative :class:`Histogram`
families for placement latency and per-decision candidate counts, a
bounded reservoir of per-request placement latencies (p50/p99), and
gauges read live off the :class:`~repro.service.state.ClusterStateStore`
— instantaneous Eq.-1 fleet power, servers active/asleep, the analytic
energy accumulated so far, and the integrated/peak power of the closed
ticks via :class:`~repro.simulation.telemetry.Telemetry`.

The exposition follows the Prometheus text format, version 0.0.4:
``# HELP`` / ``# TYPE`` comments followed by ``name{labels} value``
sample lines, one metric family per block; histograms expose the
cumulative ``_bucket`` series (ending in ``le="+Inf"``), ``_sum`` and
``_count``.

Thread safety: every family guards its own mutation — the reservoir
and each histogram carry a lock, and :class:`ServiceMetrics` holds one
more for the scalar counters — so concurrent recorders (the daemon's
per-connection threads and the shard-scan pool) never lose increments,
and ``render()`` reads a consistent snapshot of each family without a
daemon-wide lock.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
import time
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.service.state import ClusterStateStore

__all__ = ["LatencyReservoir", "Histogram", "ServiceMetrics",
           "CONTENT_TYPE", "parse_exposition", "escape_label_value",
           "LATENCY_BUCKETS", "CANDIDATE_BUCKETS", "BATCH_BUCKETS",
           "SHARD_SCAN_BUCKETS", "CONSOLIDATION_BUCKETS"]

#: The HTTP Content-Type of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_DECISIONS = ("placed", "rejected")

#: Default bucket bounds (seconds) of the placement-latency histogram.
LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                   0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

#: Default bucket bounds of the per-decision candidate-count histogram.
CANDIDATE_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                     500.0)

#: Default bucket bounds of the ``place_batch`` batch-size histogram.
BATCH_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                 1000.0)

#: Default bucket bounds (seconds) of the shard-scan-time histogram.
SHARD_SCAN_BUCKETS = (0.00001, 0.000025, 0.00005, 0.0001, 0.00025,
                      0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05)

#: Default bucket bounds (seconds) of the consolidation-episode
#: duration histogram (episodes plan a whole migration sweep, so the
#: range sits above per-placement latency).
CONSOLIDATION_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                         0.05, 0.1, 0.25, 0.5, 1.0, 2.5)


class LatencyReservoir:
    """A bounded sliding window of latency samples with quantile reads."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValidationError(
                f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._samples: list[float] = []
        self._next = 0
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            if len(self._samples) < self._capacity:
                self._samples.append(seconds)
            else:  # overwrite round-robin: keep the most recent window
                self._samples[self._next] = seconds
                self._next = (self._next + 1) % self._capacity

    def quantile(self, q: float) -> float:
        """The q-quantile of the window, by the nearest-rank definition.

        Edge cases are pinned down rather than left to interpolation:
        an empty reservoir reports ``0.0`` (there is nothing to
        summarise), a single sample *is* every quantile, and for ``n``
        samples the rank is ``ceil(q * n)`` clamped to ``[1, n]`` — so
        ``p50`` of two samples is the lower one, never a value outside
        the observed set.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
        return ordered[rank - 1]


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``bounds`` are the upper bucket bounds (``le``), strictly
    increasing; an implicit ``+Inf`` bucket catches the overflow. The
    exposition renders the cumulative ``_bucket`` series plus ``_sum``
    and ``_count``.
    """

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValidationError("histogram needs at least one bound")
        cleaned = tuple(float(b) for b in bounds)
        if any(b >= c for b, c in zip(cleaned, cleaned[1:])):
            raise ValidationError(
                f"histogram bounds must be strictly increasing: {cleaned}")
        if any(math.isinf(b) or math.isnan(b) for b in cleaned):
            raise ValidationError(
                "histogram bounds must be finite (+Inf is implicit)")
        self.bounds = cleaned
        self._counts = [0] * len(cleaned)
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            self.count += 1
            self.sum += value

    def cumulative(self) -> list[tuple[float, int]]:
        """(bound, cumulative count) pairs, ending with ``(inf, count)``."""
        pairs, _, _ = self.snapshot()
        return pairs

    def snapshot(self) -> tuple[list[tuple[float, int]], float, int]:
        """One consistent read: (cumulative pairs, sum, count)."""
        with self._lock:
            counts = list(self._counts)
            total, count = self.sum, self.count
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, counts):
            running += bucket
            pairs.append((bound, running))
        pairs.append((math.inf, count))
        return pairs, total, count


class ServiceMetrics:
    """Counters + latency reservoir + histograms, rendered as Prometheus
    text."""

    def __init__(self) -> None:
        self.requests = {decision: 0 for decision in _DECISIONS}
        self.delayed = 0
        self.errors = 0
        self.overloaded = 0
        self.failures = 0
        self.replacements = 0
        self.vms_lost = 0
        self.migrations = 0
        self.servers_freed = 0
        self.consolidation_energy_saved = 0.0
        self.latency = LatencyReservoir()
        self.latency_hist = Histogram(LATENCY_BUCKETS)
        self.candidates = Histogram(CANDIDATE_BUCKETS)
        self.batch_size = Histogram(BATCH_BUCKETS)
        self.shard_scan = Histogram(SHARD_SCAN_BUCKETS)
        self.consolidation_duration = Histogram(CONSOLIDATION_BUCKETS)
        #: (algorithm, decision) -> count; the labelled twin of
        #: ``requests`` once an algorithm is registered.
        self.decisions: dict[tuple[str, str], int] = {}
        #: Static build labels rendered as ``repro_build_info``.
        self.build_info: dict[str, str] = {}
        #: Monotonic birth time; ``repro_uptime_seconds`` reads off it.
        self.started = time.monotonic()
        #: guards the scalar counters above (each histogram family and
        #: the reservoir carry their own lock).
        self._lock = threading.Lock()

    def set_build_info(self, **labels: object) -> None:
        """Set the static labels of the ``repro_build_info`` gauge
        (version, algorithm, engine, ...). Called once at daemon
        construction, before any concurrent scrape."""
        self.build_info = {str(key): str(value)
                           for key, value in labels.items()}

    def register_algorithm(self, algorithm: str) -> None:
        """Pre-seed the labelled decision counters at zero, so scrapes
        see the full family from the first request on."""
        with self._lock:
            for decision in _DECISIONS:
                self.decisions.setdefault((algorithm, decision), 0)

    def observe_request(self, decision: str, latency_seconds: float,
                        delay: int = 0, *, algorithm: str | None = None,
                        candidates: int | None = None) -> None:
        if decision not in self.requests:
            raise ValidationError(f"unknown decision {decision!r}")
        with self._lock:
            self.requests[decision] += 1
            if delay:
                self.delayed += 1
            if algorithm is not None:
                key = (algorithm, decision)
                self.decisions[key] = self.decisions.get(key, 0) + 1
        self.latency.observe(latency_seconds)
        self.latency_hist.observe(latency_seconds)
        if candidates is not None:
            self.candidates.observe(float(candidates))

    def observe_item(self, latency_seconds: float, *,
                     candidates: int | None = None) -> None:
        """Record one batch item's latency/candidate samples.

        The scalar decision counters are deliberately *not* touched here
        — ``place_batch`` updates them in one
        :meth:`observe_batch_outcome` call per batch, so a 1000-VM batch
        takes the counter lock once instead of a thousand times.
        """
        self.latency.observe(latency_seconds)
        self.latency_hist.observe(latency_seconds)
        if candidates is not None:
            self.candidates.observe(float(candidates))

    def observe_batch_outcome(self, *, placed: int, rejected: int,
                              delayed: int = 0,
                              algorithm: str | None = None) -> None:
        """Bulk-update the decision counters for one batch under a
        single lock acquisition (the counter twin of
        :meth:`observe_item`)."""
        with self._lock:
            self.requests["placed"] += placed
            self.requests["rejected"] += rejected
            self.delayed += delayed
            if algorithm is not None:
                for decision, n in (("placed", placed),
                                    ("rejected", rejected)):
                    if n:
                        key = (algorithm, decision)
                        self.decisions[key] = \
                            self.decisions.get(key, 0) + n

    def observe_replayed(self, decision: str, delay: int = 0, *,
                         algorithm: str | None = None) -> None:
        """Count a journal-replayed request (no latency/candidate sample
        — the original timing is gone)."""
        if decision not in self.requests:
            raise ValidationError(f"unknown decision {decision!r}")
        with self._lock:
            self.requests[decision] += 1
            if delay:
                self.delayed += 1
            if algorithm is not None:
                key = (algorithm, decision)
                self.decisions[key] = self.decisions.get(key, 0) + 1

    def observe_error(self) -> None:
        with self._lock:
            self.errors += 1

    def observe_overload(self) -> None:
        """Count one request shed by the bounded ingest queue."""
        with self._lock:
            self.overloaded += 1

    def observe_failure(self, *, replaced: int, lost: int = 0) -> None:
        """Count one server-failure episode and its re-placements."""
        with self._lock:
            self.failures += 1
            self.replacements += replaced
            self.vms_lost += lost

    def observe_consolidation(self, *, moves: int, servers_freed: int,
                              energy_saved: float,
                              duration_seconds: float | None = None
                              ) -> None:
        """Count one consolidation episode's migrations and yield.

        ``duration_seconds`` is ``None`` for journal-replayed episodes
        — the original timing is gone, so only the counters advance.
        """
        with self._lock:
            self.migrations += moves
            self.servers_freed += servers_freed
            self.consolidation_energy_saved += energy_saved
        if duration_seconds is not None:
            self.consolidation_duration.observe(duration_seconds)

    def observe_batch(self, size: int) -> None:
        """Record one ``place_batch`` request's batch size."""
        self.batch_size.observe(float(size))

    def observe_shard_scan(self, seconds: float) -> None:
        """Record one shard scan's wall-clock duration."""
        self.shard_scan.observe(seconds)

    # -- persistence (latency/candidate windows are not restorable) --------

    def to_meta(self) -> dict[str, object]:
        with self._lock:
            return {"requests": dict(self.requests),
                    "delayed": self.delayed, "errors": self.errors,
                    "overloaded": self.overloaded,
                    "failures": self.failures,
                    "replacements": self.replacements,
                    "vms_lost": self.vms_lost,
                    "migrations": self.migrations,
                    "servers_freed": self.servers_freed,
                    "consolidation_energy_saved":
                        self.consolidation_energy_saved,
                    "decisions": {f"{algorithm}\t{decision}": count
                                  for (algorithm, decision), count
                                  in self.decisions.items()}}

    def restore_meta(self, meta: Mapping[str, object]) -> None:
        with self._lock:
            requests = meta.get("requests")
            if isinstance(requests, Mapping):
                for decision in _DECISIONS:
                    self.requests[decision] = int(requests.get(decision, 0))
            self.delayed = int(meta.get("delayed", 0))
            self.errors = int(meta.get("errors", 0))
            self.overloaded = int(meta.get("overloaded", 0))
            self.failures = int(meta.get("failures", 0))
            self.replacements = int(meta.get("replacements", 0))
            self.vms_lost = int(meta.get("vms_lost", 0))
            self.migrations = int(meta.get("migrations", 0))
            self.servers_freed = int(meta.get("servers_freed", 0))
            self.consolidation_energy_saved = float(
                meta.get("consolidation_energy_saved", 0.0))
            decisions = meta.get("decisions")
            if isinstance(decisions, Mapping):
                for key, count in decisions.items():
                    algorithm, _, decision = str(key).partition("\t")
                    self.decisions[(algorithm, decision)] = int(count)

    # -- exposition --------------------------------------------------------

    def render(self, store: "ClusterStateStore", *,
               slo: object | None = None) -> str:
        """The full Prometheus text page for this daemon.

        ``slo`` is any object with a ``report()`` shaped like
        :meth:`repro.obs.slo.SLOTracker.report`; when given, the
        ``repro_slo_*`` objective and burn-rate families are appended.
        """
        telemetry = store.telemetry()
        with self._lock:
            requests = dict(self.requests)
            decisions = sorted(self.decisions.items())
            delayed, errors = self.delayed, self.errors
            overloaded = self.overloaded
            failures = self.failures
            replacements = self.replacements
            vms_lost = self.vms_lost
            migrations = self.migrations
            servers_freed = self.servers_freed
            energy_saved = self.consolidation_energy_saved
        lines: list[str] = []

        def family(name: str, kind: str, help_text: str,
                   samples: list[tuple[str, float]]) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for suffix, value in samples:
                lines.append(f"{name}{suffix} {value:.10g}")

        def hist_family(name: str, help_text: str,
                        hist: Histogram) -> None:
            pairs, total, count = hist.snapshot()
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in pairs:
                le = "+Inf" if math.isinf(bound) else f"{bound:.10g}"
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{name}_sum {total:.10g}")
            lines.append(f"{name}_count {count}")

        build_labels = "".join(
            f'{key}="{escape_label_value(value)}",'
            for key, value in sorted(self.build_info.items())).rstrip(",")
        family("repro_build_info", "gauge",
               "Build metadata of this daemon (constant 1; the labels "
               "carry version/algorithm/engine).",
               [(f"{{{build_labels}}}" if build_labels else "", 1.0)])
        family("repro_uptime_seconds", "gauge",
               "Seconds since this daemon process was constructed.",
               [("", time.monotonic() - self.started)])
        family("repro_requests_total", "counter",
               "Placement requests by final decision.",
               [(f'{{decision="{escape_label_value(d)}"}}',
                 float(requests[d])) for d in _DECISIONS])
        family("repro_decisions_total", "counter",
               "Placement decisions by algorithm and outcome.",
               [(f'{{algorithm="{escape_label_value(algorithm)}",'
                 f'decision="{escape_label_value(decision)}"}}',
                 float(count))
                for (algorithm, decision), count in decisions])
        family("repro_requests_delayed_total", "counter",
               "Requests admitted only after a queueing delay.",
               [("", float(delayed))])
        family("repro_request_errors_total", "counter",
               "Malformed or unserviceable protocol requests.",
               [("", float(errors))])
        family("repro_requests_overloaded_total", "counter",
               "Requests shed by the bounded ingest queue.",
               [("", float(overloaded))])
        family("repro_failures_total", "counter",
               "Server-failure episodes served (fail_server ops).",
               [("", float(failures))])
        family("repro_replacements_total", "counter",
               "VM remainders re-placed onto surviving servers after "
               "failures.", [("", float(replacements))])
        family("repro_vms_lost_total", "counter",
               "VM remainders that fit no surviving server after a "
               "failure.", [("", float(vms_lost))])
        family("repro_migrations_total", "counter",
               "Live migrations committed by consolidation episodes.",
               [("", float(migrations))])
        family("repro_servers_freed_total", "counter",
               "Servers drained empty by consolidation episodes.",
               [("", float(servers_freed))])
        family("repro_consolidation_energy_saved", "counter",
               "Net Eq.-17 energy saved by consolidation episodes "
               "(migration costs already deducted).",
               [("", energy_saved)])
        family("repro_placement_latency_seconds", "summary",
               "Service-side latency of placement decisions.",
               [('{quantile="0.5"}', self.latency.quantile(0.5)),
                ('{quantile="0.99"}', self.latency.quantile(0.99)),
                ("_sum", self.latency.total),
                ("_count", float(self.latency.count))])
        hist_family("repro_placement_duration_seconds",
                    "Histogram of service-side placement decision latency.",
                    self.latency_hist)
        hist_family("repro_placement_candidates",
                    "Histogram of feasible candidate servers per placement "
                    "decision.", self.candidates)
        hist_family("repro_batch_size",
                    "Histogram of VM counts per place_batch request.",
                    self.batch_size)
        hist_family("repro_shard_scan_seconds",
                    "Histogram of per-shard candidate scan durations.",
                    self.shard_scan)
        hist_family("repro_consolidation_duration_seconds",
                    "Histogram of consolidation episode durations "
                    "(plan + apply + journal).", self.consolidation_duration)
        family("repro_fleet_power_watts", "gauge",
               "Instantaneous fleet power draw (Eq. 1).",
               [("", store.fleet_power())])
        family("repro_servers_active", "gauge",
               "Servers currently in the active power state.",
               [("", float(store.servers_active()))])
        family("repro_servers_asleep", "gauge",
               "Servers currently in the power-saving state.",
               [("", float(store.servers_asleep()))])
        family("repro_servers_failed", "gauge",
               "Servers currently in the failed state.",
               [("", float(store.servers_failed()))])
        family("repro_running_vms", "gauge",
               "VM demand pieces currently resident on the fleet.",
               [("", float(store.running_vms()))])
        family("repro_clock_ticks", "gauge",
               "Current wall-clock tick of the cluster state.",
               [("", float(store.clock))])
        family("repro_vms_placed", "gauge",
               "VMs committed to the plan since daemon start.",
               [("", float(len(store.placements)))])
        family("repro_energy_accumulated_watt_ticks", "counter",
               "Analytic Eq.-17 energy accumulated over all placements.",
               [("", store.energy_accumulated)])
        family("repro_busy_energy_watt_ticks", "counter",
               "Integrated live fleet power over closed ticks.",
               [("", telemetry.total_energy)])
        family("repro_power_peak_watts", "gauge",
               "Peak per-tick fleet power over closed ticks.",
               [("", telemetry.peak_power)])
        if slo is not None:
            report = slo.report()
            config = report["config"]
            totals = report["totals"]
            family("repro_slo_latency_objective_seconds", "gauge",
                   "Per-request latency threshold of the latency SLO.",
                   [("", float(config["latency_objective"]))])
            family("repro_slo_latency_target", "gauge",
                   "Required fraction of requests under the latency "
                   "objective.", [("", float(config["latency_target"]))])
            family("repro_slo_availability_target", "gauge",
                   "Required fraction of requests answered without "
                   "error.",
                   [("", float(config["availability_target"]))])
            family("repro_slo_requests_total", "counter",
                   "Requests observed by the SLO tracker.",
                   [("", float(totals["requests"]))])
            family("repro_slo_errors_total", "counter",
                   "Requests the SLO tracker counted as errored.",
                   [("", float(totals["errors"]))])
            family("repro_slo_slow_requests_total", "counter",
                   "Requests slower than the latency objective.",
                   [("", float(totals["slow"]))])
            windows = report["windows"]
            family("repro_slo_latency_burn_rate", "gauge",
                   "Latency error-budget burn rate per trailing window "
                   "(1.0 = spending the budget exactly at the allowed "
                   "rate).",
                   [(f'{{window="{w["window_seconds"]:.10g}"}}',
                     float(w["latency_burn_rate"])) for w in windows])
            family("repro_slo_availability_burn_rate", "gauge",
                   "Availability error-budget burn rate per trailing "
                   "window.",
                   [(f'{{window="{w["window_seconds"]:.10g}"}}',
                     float(w["availability_burn_rate"]))
                    for w in windows])
        return "\n".join(lines) + "\n"


def escape_label_value(value: str) -> str:
    """Escape a label value per the text format: ``\\``, ``"``, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?'
    r'\s+(?P<value>\S+)(?:\s+\S+)?$')
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"') \
        .replace("\\\\", "\\")


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse a text-format page into ``name -> [(labels, value)]``.

    A lenient scrape used by ``repro client`` to summarise the daemon's
    metrics; the strict conformance checks live in the test suite.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        labels = {key: _unescape(value) for key, value
                  in _LABEL_RE.findall(match.group("labels") or "")}
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples
