"""The online allocation service.

The paper's heuristics are online — VMs are placed in arrival order
against live cluster state — and this subsystem makes that literal: a
long-running daemon ingests a stream of placement requests (JSON lines
over stdin or TCP), routes each through a registered allocator against
a mutable :class:`ClusterStateStore`, journals every decision, and
checkpoints crash-safe snapshots, while a Prometheus endpoint exposes
fleet power, occupancy and latency. Protocol v2 adds ``place_batch``
(a whole batch per round trip, journaled as one group) and the daemon
fans each feasibility scan out over a sharded fleet view — identical
placements at any shard count. Protocol v2 also carries live failure
events: ``fail_server`` splits every affected VM at the failure tick
and re-places the remainders through the active allocator (one atomic
journal group per failure), ``recover_server`` brings the machine
back; :class:`AllocationClient` retries transient faults under a
:class:`ClientConfig` budget and :class:`FaultInjector` drives
deterministic chaos schedules for tests. The daemon also defragments
itself: consolidation episodes (epoch- or fragmentation-triggered, or
forced via the v2 ``consolidate`` op) migrate running VMs off
under-packed servers through the shared
:mod:`repro.consolidation` planner, each episode journaled as one
atomic group. See ``docs/service.md`` and the ``repro serve`` /
``repro client`` / ``repro consolidate`` CLI commands.

Protocol v3 is the async multi-worker generation: one
:class:`AsyncDaemonServer` port speaks JSON-lines *and* length-prefixed
binary frames (sniffed per connection, v1/v2 clients byte-unchanged),
failures carry the typed error envelope of
:mod:`repro.service.errors`, an HTTP/REST gateway
(:func:`start_gateway`) translates ``POST /v1/place`` and friends onto
the same op handlers, and with ``scan_processes > 0`` the daemon fans
candidate scans out over process-per-shard store replicas
(:class:`WorkerPool`) kept bit-exact through the journal-entry stream.
"""

from repro.service.aio import AsyncDaemonServer, serve_async
from repro.service.client import (
    AllocationClient,
    ClientConfig,
    ReplaySummary,
    replay_trace,
)
from repro.service.daemon import (
    AllocationDaemon,
    DaemonTCPServer,
    serve_stdio,
    serve_tcp,
    start_metrics_server,
)
from repro.service.errors import (
    CODES,
    ErrorFields,
    envelope,
    envelope_of_exception,
    error_fields,
    http_status_of,
)
from repro.service.framing import (
    FRAME_MAGIC,
    FrameDecoder,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.service.gateway import GatewayServer, start_gateway
from repro.service.metrics import (
    Histogram,
    LatencyReservoir,
    ServiceMetrics,
    parse_exposition,
)
from repro.service.faults import FaultEvent, FaultInjector
from repro.service.persistence import (
    RequestJournal,
    SnapshotManager,
    read_journal,
)
from repro.service.replication import AppliedEntry, apply_entry
from repro.service.protocol import (
    OPS,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    consolidate_request,
    dump_debug_request,
    encode,
    fail_server_request,
    negotiate_version,
    parse_batch_records,
    parse_request,
    parse_response,
    place_batch_request,
    place_request,
    recover_server_request,
    telemetry_request,
)
from repro.service.workers import WorkerFleet, WorkerPool
from repro.service.state import (
    SNAPSHOT_FORMAT_VERSION,
    ClusterStateStore,
    ConsolidationReport,
    FailureReport,
    Replacement,
    snapshot_meta,
)

__all__ = [
    "AllocationClient",
    "AllocationDaemon",
    "AppliedEntry",
    "AsyncDaemonServer",
    "CODES",
    "ClientConfig",
    "ClusterStateStore",
    "ConsolidationReport",
    "DaemonTCPServer",
    "ErrorFields",
    "FailureReport",
    "FaultEvent",
    "FaultInjector",
    "FRAME_MAGIC",
    "FrameDecoder",
    "GatewayServer",
    "Histogram",
    "LatencyReservoir",
    "OPS",
    "PROTOCOL_VERSION",
    "Replacement",
    "ReplaySummary",
    "RequestJournal",
    "ServiceMetrics",
    "SNAPSHOT_FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "SnapshotManager",
    "WorkerFleet",
    "WorkerPool",
    "apply_entry",
    "consolidate_request",
    "dump_debug_request",
    "encode",
    "encode_frame",
    "envelope",
    "envelope_of_exception",
    "error_fields",
    "fail_server_request",
    "http_status_of",
    "negotiate_version",
    "parse_batch_records",
    "parse_exposition",
    "parse_request",
    "parse_response",
    "place_batch_request",
    "place_request",
    "read_frame",
    "read_journal",
    "recover_server_request",
    "replay_trace",
    "serve_async",
    "serve_stdio",
    "serve_tcp",
    "snapshot_meta",
    "start_gateway",
    "start_metrics_server",
    "telemetry_request",
    "write_frame",
]
