"""Store-level entry application: one op log, many replicas.

A journal entry (see :class:`~repro.service.persistence.RequestJournal`)
records everything needed to reproduce one mutating operation on a
:class:`~repro.service.state.ClusterStateStore` *without* re-running
the allocator or the planner: placements carry the recorded decision,
failure episodes their recorded re-placements, consolidation episodes
their recorded moves. :func:`apply_entry` is the single function that
applies one such entry to a store — the daemon's restore path replays
the journal tail through it, and the process worker pool
(:mod:`repro.service.workers`) streams live entries through it to keep
each worker's replica bit-identical to the primary.

The same bytes applied to the same starting store always produce the
same state; the kill+restore end-to-end tests pin that bit-exactness,
and the worker pool inherits it for free by reusing this code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.consolidation.planner import PlannedMove
from repro.exceptions import ValidationError
from repro.service.state import ClusterStateStore, Replacement
from repro.simulation.admission import shift_request
from repro.workload.trace import vm_from_record

__all__ = ["AppliedEntry", "apply_entry"]

#: Entry ops that change which servers the fleet may scan — appliers
#: must rebuild their fleet view / candidate index afterwards.
FLEET_CHANGING_OPS = ("fail_server", "recover_server", "consolidate")


@dataclass(frozen=True)
class AppliedEntry:
    """What applying one entry did, for the caller's bookkeeping."""

    op: str
    #: ``(decision, delay)`` per replayed placement (place/place_batch).
    placements: tuple[tuple[str, int], ...] = ()
    #: The store's report object for fail_server / consolidate entries.
    report: object | None = None

    @property
    def fleet_changed(self) -> bool:
        """Whether the entry may have changed the scannable fleet."""
        if self.op in ("fail_server", "recover_server"):
            return True
        if self.op == "consolidate":
            return bool(getattr(self.report, "moves", ()))
        return False


def _apply_place(store: ClusterStateStore,
                 entry: Mapping[str, object]) -> tuple[str, int]:
    vm = vm_from_record(entry["vm"])
    if vm.start > store.clock:
        store.advance_to(vm.start)
    decision = str(entry["decision"])
    delay = int(entry.get("delay", 0))
    if decision == "placed":
        store.commit(shift_request(vm, delay), int(entry["server_id"]))
    return decision, delay


def apply_entry(store: ClusterStateStore,
                entry: Mapping[str, object]) -> AppliedEntry:
    """Apply one journal-shaped entry to ``store``.

    Recorded decisions are applied verbatim — no allocator, no planner
    — so any replica fed the same entries reaches the same state
    bit-for-bit. ``init`` entries are no-ops (the caller builds the
    store from their snapshot).
    """
    op = str(entry.get("op"))
    if op == "init":
        return AppliedEntry(op=op)
    if op == "tick":
        now = int(entry["now"])
        if now > store.clock:
            store.advance_to(now)
        return AppliedEntry(op=op)
    if op == "place":
        return AppliedEntry(op=op,
                            placements=(_apply_place(store, entry),))
    if op == "place_batch":
        placements = tuple(_apply_place(store, sub)
                           for sub in entry["decisions"])
        return AppliedEntry(op=op, placements=placements)
    if op == "fail_server":
        report = store.fail_server(
            int(entry["server_id"]), int(entry["time"]),
            replacements=[Replacement.from_record(record)
                          for record in entry["replacements"]])
        return AppliedEntry(op=op, report=report)
    if op == "recover_server":
        store.recover_server(int(entry["server_id"]))
        return AppliedEntry(op=op)
    if op == "consolidate":
        report = store.consolidate(
            int(entry["time"]),
            moves=[PlannedMove.from_record(record)
                   for record in entry.get("moves", ())])
        return AppliedEntry(op=op, report=report)
    raise ValidationError(f"unknown journal entry op {op!r}")


# ``field`` is imported for dataclass forward-compat; keep linters calm.
_ = field
