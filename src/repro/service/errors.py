"""The typed error envelope of the allocation service.

Protocol v3 unifies every failure response into one shape::

    {"ok": false, "op": ..., "error": {
        "code": "overloaded",
        "message": "daemon shed the request under load",
        "retryable": true,
        "retry_after": 0.25        # only when the daemon has a hint
    }}

``code`` is a stable machine-readable identifier from :data:`CODES`
(clients dispatch on it — never on the message text), ``retryable``
says whether resending the identical request may succeed, and
``retry_after`` carries the daemon's backoff hint in seconds when it
has one. Extra self-describing fields (``supported_versions``,
``supported_ops``) stay top-level in the response, next to ``error``.

v1/v2 compatibility
-------------------
Pre-v3 readers keep the historical shape byte-for-byte: ``error`` is
the bare message string and ``retry_after`` rides top-level. The
daemon builds the envelope once and :func:`attach_error` projects it
onto whichever shape the request's negotiated version requires;
:func:`error_fields` reads *both* shapes back into one
:class:`ErrorFields` view, so client code (retry classification, the
CLI) never needs to know which daemon generation answered.

The HTTP gateway maps codes onto status codes via
:func:`http_status_of` — ``overloaded`` becomes ``429`` with a
``Retry-After`` header, ``unavailable`` becomes ``503``, validation
failures ``400``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import (
    ProtocolVersionError,
    ReproError,
    RetryableError,
    UnavailableError,
    UnknownOperationError,
)

__all__ = ["CODES", "ErrorFields", "attach_error", "envelope",
           "envelope_of_exception", "error_fields", "http_status_of"]

#: Every error code the daemon emits, with its HTTP projection.
#: ``code -> (http_status, retryable_by_default)``
CODES: dict[str, tuple[int, bool]] = {
    "bad_request": (400, False),
    "unsupported_version": (400, False),
    "unknown_op": (400, False),
    "not_found": (404, False),
    "method_not_allowed": (405, False),
    "overloaded": (429, True),
    "internal": (500, False),
    "unavailable": (503, True),
}


@dataclass(frozen=True)
class ErrorFields:
    """One normalized view over both error-response generations."""

    code: str
    message: str
    retryable: bool
    retry_after: float | None = None


def envelope(code: str, message: str, *, retryable: bool | None = None,
             retry_after: float | None = None) -> dict[str, object]:
    """Build one v3 error envelope (the ``error`` object)."""
    if code not in CODES:
        raise ValueError(f"unknown error code {code!r}")
    if retryable is None:
        retryable = CODES[code][1]
    env: dict[str, object] = {"code": code, "message": message,
                              "retryable": bool(retryable)}
    if retry_after is not None:
        env["retry_after"] = retry_after
    return env


def envelope_of_exception(exc: ReproError) -> dict[str, object]:
    """The envelope of one service-side exception.

    The mapping is by type, most specific first; anything else from the
    typed hierarchy is a request the daemon understood but cannot
    honour — ``bad_request``.
    """
    if isinstance(exc, ProtocolVersionError):
        return envelope("unsupported_version", str(exc))
    if isinstance(exc, UnknownOperationError):
        return envelope("unknown_op", str(exc))
    if isinstance(exc, UnavailableError):
        return envelope("unavailable", str(exc))
    if isinstance(exc, RetryableError):
        return envelope("overloaded", str(exc), retryable=True)
    return envelope("bad_request", str(exc))


def attach_error(response: dict[str, object], env: Mapping[str, object],
                 version: int) -> dict[str, object]:
    """Project ``env`` onto ``response`` in the shape ``version`` reads.

    v3 readers get the envelope verbatim under ``error``; v1/v2 readers
    get the historical bare string (plus top-level ``retry_after`` when
    the envelope carries a hint) — byte-for-byte what those clients
    always received.
    """
    response["ok"] = False
    if version >= 3:
        response["error"] = dict(env)
    else:
        response["error"] = str(env.get("message", ""))
        if "retry_after" in env:
            response["retry_after"] = env["retry_after"]
    return response


def error_fields(response: Mapping[str, object]) -> ErrorFields | None:
    """Normalize a failure response of either generation.

    Returns ``None`` for successful responses (``ok`` true) and for
    payloads with no readable error at all. Legacy responses are
    classified by the one string the old protocol made structural —
    ``"overloaded"`` — everything else is terminal.
    """
    if response.get("ok"):
        return None
    error = response.get("error")
    if isinstance(error, Mapping):
        code = str(error.get("code", "internal"))
        retry_after = error.get("retry_after")
        return ErrorFields(
            code=code,
            message=str(error.get("message", "")),
            retryable=bool(error.get("retryable",
                                     CODES.get(code, (500, False))[1])),
            retry_after=None if retry_after is None
            else float(retry_after))
    if isinstance(error, str):
        retry_after = response.get("retry_after")
        if error == "overloaded":
            return ErrorFields(
                code="overloaded", message=error, retryable=True,
                retry_after=None if retry_after is None
                else float(retry_after))
        return ErrorFields(code="bad_request", message=error,
                           retryable=False,
                           retry_after=None if retry_after is None
                           else float(retry_after))
    return None


def http_status_of(response: Mapping[str, object]) -> int:
    """The HTTP status code one daemon response maps onto."""
    if response.get("ok"):
        return 200
    fields = error_fields(response)
    if fields is None:
        return 500
    return CODES.get(fields.code, (500, False))[0]
