"""Process-per-shard scan workers: candidate scans beyond the GIL.

The daemon's feasibility scans fan out over a
:class:`~repro.placement.sharding.ShardedFleet` of threads — fine for
the numpy engine (which releases the GIL inside its peak queries) but
serialized for pure-Python probe work. A :class:`WorkerPool` moves the
scan fan-out into worker *processes*: each worker boots a full
:class:`~repro.service.state.ClusterStateStore` replica from a
snapshot of the primary and then applies the daemon's journal-entry
stream (:func:`repro.service.replication.apply_entry`) mutation by
mutation, so every replica tracks the primary bit-for-bit.

Determinism
-----------
A scan request ships the VM and a chunk of ``(ordinal, server_id)``
pairs; the worker maps the ids onto its replica's live states, runs
the allocator's own :meth:`~repro.allocators.base.Allocator._scan_shard`
and returns a :class:`ShardScan` in portable form (ids, not state
objects). The coordinator folds the per-shard results with the exact
``(score, scan ordinal)`` reduction of
:meth:`~repro.allocators.base.Allocator.select_sharded` — the scan
*sequence* (shuffles, rotations, static pruning) and all stateful
hooks (``choose``, round-robin cursors, RNG draws) stay on the
coordinator — so placements are bit-identical to the in-process scan.

Ordering is carried by the pipes: the daemon's commit lock serializes
mutations and scans, and each worker's pipe delivers FIFO, so a
replica always applies commit *i* before it can see the scan for
decision *i + 1*.

:class:`WorkerFleet` is the drop-in ``ShardedFleet`` subclass the
daemon builds when ``scan_processes > 0``; its :meth:`remote_scans`
method is the dispatch hook ``select_sharded`` probes for.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.allocators.batch import ShardScan
from repro.exceptions import ServiceError, ValidationError
from repro.placement.sharding import ShardedFleet

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.allocators.base import Allocator
    from repro.allocators.state import ServerState
    from repro.model.vm import VM

__all__ = ["WorkerFleet", "WorkerPool"]


def _worker_main(conn, document: Mapping[str, object], algorithm: str,
                 seed: object, algo_params: Mapping[str, object],
                 parent_pid: int) -> None:
    """One scan worker: replica store + allocator, driven over a pipe.

    Messages are ``(kind, payload)`` tuples. ``apply`` entries mutate
    the replica (fire-and-forget; the primary already committed).
    ``scan`` requests answer with ``("ok", result_dict)`` or
    ``("error", message)``; a replica poisoned by a failed apply
    reports the poisoning on the next scan instead of serving stale
    state.
    """
    # Deferred imports keep the child's boot line self-contained under
    # the spawn start method.
    from time import perf_counter

    from repro.allocators.registry import make_allocator
    from repro.service.replication import apply_entry
    from repro.service.state import ClusterStateStore
    from repro.workload.trace import vm_from_record

    store = ClusterStateStore.from_snapshot(document)
    # Same precedence as the daemon: explicit algo_params win over the
    # daemon-level seed/policy defaults.
    params: dict[str, object] = {"seed": seed, "policy": store.policy,
                                 **dict(algo_params)}
    allocator = make_allocator(algorithm, **params)
    states: dict[int, object] = {}
    poisoned: str | None = None

    def refresh() -> None:
        states.clear()
        live = list(store.live_states())
        for state in live:
            states[state.server.server_id] = state
        # Rebuild the candidate index + batch probe kernel over the
        # replica fleet, so shard scans take the vectorized path. The
        # scan sequence, ordinals and the final choose() stay on the
        # coordinator, so per-worker on_prepare side effects (ffps
        # reshuffle, round-robin cursor) never influence results.
        allocator.prepare(live)

    refresh()
    # Under fork the worker inherits a copy of the primary's pipe end,
    # so a SIGKILLed primary never EOFs this pipe; watch the parent pid
    # instead (re-parenting to init/subreaper signals the death).
    # ``parent_pid`` comes from the primary itself — reading getppid()
    # here would race a primary that dies during worker boot.
    while True:
        try:
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return
            kind, payload = conn.recv()
        except (EOFError, OSError):
            return
        if kind == "close":
            return
        if kind == "apply":
            try:
                if apply_entry(store, payload).fleet_changed:
                    refresh()
            except Exception as exc:  # replica diverged: poison it
                poisoned = f"{type(exc).__name__}: {exc}"
            continue
        if kind != "scan":
            conn.send(("error", f"unknown worker message {kind!r}"))
            continue
        if poisoned is not None:
            conn.send(("error", f"replica poisoned by failed apply: "
                                f"{poisoned}"))
            continue
        try:
            vm_record, chunk = payload
            vm = vm_from_record(vm_record)
            started = perf_counter()
            scan = allocator._scan_shard(
                vm, [(ordinal, states[server_id])
                     for ordinal, server_id in chunk])
            elapsed = perf_counter() - started
            conn.send(("ok", {
                "winner": None if scan.winner is None
                else scan.winner.server.server_id,
                "key": scan.key,
                "ordinal": scan.ordinal,
                "feasible": [state.server.server_id
                             for state in scan.feasible],
                "evaluated": scan.evaluated,
                "admissible": scan.admissible,
                "elapsed": elapsed,
            }))
        except Exception as exc:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


class WorkerPool:
    """A fixed set of scan worker processes with bit-exact replicas.

    Parameters
    ----------
    document:
        The primary store's snapshot at pool start
        (``store.to_snapshot()``); every worker boots its replica from
        it.
    algorithm / seed / algo_params:
        The daemon's allocator configuration — each worker constructs
        the same allocator so shard scans score candidates identically.
    processes:
        Worker count. Scan chunks are routed round-robin by shard
        index, so any relation between shard count and worker count
        works; matching them keeps every worker busy.
    """

    def __init__(self, document: Mapping[str, object], *,
                 algorithm: str, seed: object = None,
                 algo_params: Mapping[str, object] | None = None,
                 processes: int = 1) -> None:
        if processes < 1:
            raise ValidationError(
                f"processes must be >= 1, got {processes}")
        # Fork is cheap and keeps the snapshot out of the pickle path;
        # fall back to spawn where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._workers: list[tuple[object, object]] = []
        self._closed = False
        for _ in range(processes):
            parent, child = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child, dict(document), algorithm, seed,
                      dict(algo_params or {}), os.getpid()),
                daemon=True, name="repro-scan-worker")
            process.start()
            child.close()
            self._workers.append((process, parent))

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    def apply(self, entry: Mapping[str, object]) -> None:
        """Stream one committed journal-shaped entry to every replica.

        Fire-and-forget: the primary already holds the committed truth,
        and pipe FIFO ordering guarantees the entry lands before any
        scan request sent after it.
        """
        if self._closed:
            return
        message = ("apply", dict(entry))
        for _, conn in self._workers:
            conn.send(message)

    def scan(self, vm_record: Mapping[str, object],
             chunks: Sequence[Sequence[tuple[int, int]]]
             ) -> list[dict[str, object]]:
        """Scan ``chunks`` of ``(ordinal, server_id)`` pairs in parallel.

        Chunk ``i`` goes to worker ``i % len(pool)``; all requests are
        written before any reply is read, so distinct workers overlap.
        Returns one result dict per chunk, in chunk order.
        """
        if self._closed:
            raise ServiceError("scan worker pool is closed")
        assigned: list[list[int]] = [[] for _ in self._workers]
        for i, chunk in enumerate(chunks):
            assigned[i % len(self._workers)].append(i)
        for worker, indices in enumerate(assigned):
            conn = self._workers[worker][1]
            for i in indices:
                conn.send(("scan", (dict(vm_record), list(chunks[i]))))
        results: list[dict[str, object] | None] = [None] * len(chunks)
        for worker, indices in enumerate(assigned):
            conn = self._workers[worker][1]
            for i in indices:
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError) as exc:
                    raise ServiceError(
                        f"scan worker {worker} died mid-scan: "
                        f"{exc!r}") from exc
                if status != "ok":
                    raise ServiceError(f"scan worker {worker} failed: "
                                       f"{payload}")
                results[i] = payload
        return results  # type: ignore[return-value]

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _, conn in self._workers:
            try:
                conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
        for process, conn in self._workers:
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout)
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class WorkerFleet(ShardedFleet):
    """A sharded fleet whose shard scans run on a :class:`WorkerPool`.

    Everything else — the contiguous partition, per-shard locks, the
    commit path's ``position_of``/``lock_for`` — is inherited;
    :meth:`~repro.allocators.base.Allocator.select_sharded` detects
    :meth:`remote_scans` and routes the chunks here instead of the
    thread pool, while keeping its deterministic fold. The pool is
    owned by the daemon (it outlives fleet rebuilds on
    failure/recovery/consolidation), so :meth:`close` leaves it alone.
    """

    def __init__(self, states: Sequence["ServerState"], *,
                 pool: WorkerPool, shards: int = 1,
                 max_workers: int | None = None,
                 on_scan_time=None) -> None:
        super().__init__(states, shards=shards, max_workers=max_workers,
                         on_scan_time=on_scan_time)
        self.pool = pool
        self._by_id = {state.server.server_id: state
                       for state in self.states}

    def remote_scans(self, allocator: "Allocator", vm: "VM",
                     chunks: Sequence[Sequence[tuple[int, "ServerState"]]]
                     ) -> list[ShardScan]:
        """Run every non-empty chunk on the worker pool.

        Mirrors :meth:`ShardedFleet.map_scans`: results come back for
        the non-empty chunks only, in ascending shard order, and each
        scan's wall-clock feeds ``on_scan_time``. State objects cross
        the process boundary as server ids and come back mapped onto
        *this* fleet's states, so the coordinator-side fold (and
        ``choose`` for collect-mode allocators) sees its own objects.
        """
        from repro.workload.trace import vm_to_record

        live = [i for i, chunk in enumerate(chunks) if chunk]
        id_chunks = [[(ordinal, state.server.server_id)
                      for ordinal, state in chunks[i]] for i in live]
        raw = self.pool.scan(vm_to_record(vm), id_chunks)
        scans: list[ShardScan] = []
        for result in raw:
            if self.on_scan_time is not None:
                self.on_scan_time(float(result["elapsed"]))
            winner_id = result["winner"]
            scans.append(ShardScan(
                winner=None if winner_id is None
                else self._by_id[winner_id],
                key=float(result["key"]) if result["key"] is not None
                else math.inf,
                ordinal=int(result["ordinal"]),
                feasible=[self._by_id[server_id]
                          for server_id in result["feasible"]],
                evaluated=int(result["evaluated"]),
                admissible=int(result["admissible"])))
        return scans
