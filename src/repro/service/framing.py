"""Length-prefixed binary framing: the protocol-v3 transport.

A v3 connection exchanges *frames* instead of newline-terminated
lines. Every frame is a fixed 6-byte header followed by the payload::

    offset  size  field
    ------  ----  -----------------------------------------------
    0       1     magic     0xF3 (never a JSON-lines first byte)
    1       1     version   0x03 (the framing layer's own version)
    2       4     length    payload byte count, big-endian uint32
    6       n     payload   one UTF-8 JSON message (no newline)

The payload is the same JSON object the line protocol carries — the
framing layer changes *transport*, not vocabulary — so every op,
error envelope and trace field documented in
:mod:`repro.service.protocol` applies unchanged.

Sniffing
--------
The magic byte ``0xF3`` is not valid as the first byte of any v1/v2
request: a JSON-lines request starts with ``{`` (0x7B) or
insignificant ASCII whitespace, and 0xF3 cannot begin a UTF-8
sequence that decodes to either. The async server therefore *sniffs*
the first byte of each connection — 0xF3 selects the framed loop,
anything else replays the byte into the line loop — so one port
serves v1, v2 and v3 clients simultaneously and every pre-v3 client
stays byte-compatible.

Limits
------
Frames above ``max_frame`` (default 16 MiB) are refused with
:class:`~repro.exceptions.ServiceError` before the payload is read —
a defense against a corrupt or hostile length prefix, not a protocol
parameter.
"""

from __future__ import annotations

import struct

from repro.exceptions import ServiceError

__all__ = ["FRAME_MAGIC", "FRAME_VERSION", "HEADER_SIZE", "MAX_FRAME",
           "FrameDecoder", "encode_frame", "read_frame", "write_frame"]

#: First byte of every frame; sniffed by the accept path.
FRAME_MAGIC = 0xF3

#: Version byte of this framing layout.
FRAME_VERSION = 0x03

#: magic(1) + version(1) + length(4).
HEADER_SIZE = 6

#: Default refusal bound for a single frame's payload (bytes).
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">BBI")


def encode_frame(payload: bytes) -> bytes:
    """One wire frame around ``payload`` (header + bytes)."""
    return _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, len(payload)) + payload


def decode_header(header: bytes, *, max_frame: int = MAX_FRAME) -> int:
    """Validate one 6-byte header; returns the payload length.

    Raises
    ------
    ServiceError
        On a bad magic byte, an unknown framing version, or a length
        above ``max_frame``.
    """
    if len(header) != HEADER_SIZE:
        raise ServiceError(
            f"truncated frame header: got {len(header)} of "
            f"{HEADER_SIZE} bytes")
    magic, version, length = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise ServiceError(
            f"bad frame magic 0x{magic:02X} (expected 0x{FRAME_MAGIC:02X})")
    if version != FRAME_VERSION:
        raise ServiceError(
            f"unsupported framing version 0x{version:02X} "
            f"(this build speaks 0x{FRAME_VERSION:02X})")
    if length > max_frame:
        raise ServiceError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit")
    return length


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete payloads come
    back in arrival order. Partial frames are buffered across calls,
    so the decoder works over any transport that delivers bytes in
    unpredictable pieces.
    """

    def __init__(self, *, max_frame: int = MAX_FRAME) -> None:
        self._buffer = bytearray()
        self._max_frame = max_frame

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; returns every payload completed by it."""
        self._buffer.extend(data)
        payloads: list[bytes] = []
        while len(self._buffer) >= HEADER_SIZE:
            length = decode_header(bytes(self._buffer[:HEADER_SIZE]),
                                   max_frame=self._max_frame)
            end = HEADER_SIZE + length
            if len(self._buffer) < end:
                break
            payloads.append(bytes(self._buffer[HEADER_SIZE:end]))
            del self._buffer[:end]
        return payloads

    @property
    def pending(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)


def write_frame(stream, payload: bytes) -> None:
    """Write one frame to a binary file-like object (no flush)."""
    stream.write(encode_frame(payload))


def read_frame(stream, *, max_frame: int = MAX_FRAME) -> bytes | None:
    """Read one frame from a blocking binary stream.

    Returns the payload, or ``None`` on a clean EOF *before* any header
    byte. An EOF inside a frame raises :class:`ServiceError` — the peer
    died mid-message.
    """
    header = stream.read(HEADER_SIZE)
    if not header:
        return None
    if len(header) < HEADER_SIZE:
        raise ServiceError(
            f"connection closed inside a frame header "
            f"({len(header)} of {HEADER_SIZE} bytes)")
    length = decode_header(header, max_frame=max_frame)
    payload = bytearray()
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise ServiceError(
                f"connection closed inside a frame payload "
                f"({len(payload)} of {length} bytes)")
        payload.extend(chunk)
    return bytes(payload)
