"""Client side of the allocation service: connect, stream, summarize.

:class:`DaemonClient` speaks the JSON-lines protocol over TCP (one
request line out, one response line back); :func:`replay_trace` streams
a whole workload — a :class:`~repro.workload.trace.Trace` or any VM
iterable — in the paper's online order (start time, ties by end then
id) and aggregates the per-request decisions into a
:class:`ReplaySummary`. With ``batch=N`` it chunks the stream into v2
``place_batch`` round trips instead of one ``place`` per VM — same
placements, far fewer round trips. This is what ``repro client`` runs.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import ServiceError
from repro.model.vm import VM
from repro.service.protocol import (
    encode,
    parse_response,
    place_batch_request,
    place_request,
)

__all__ = ["DaemonClient", "ReplaySummary", "replay_trace"]


class DaemonClient:
    """A blocking JSON-lines client for one daemon connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7077, *,
                 timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")

    def request(self, message: Mapping[str, object]) -> dict[str, object]:
        """Send one request and wait for its response."""
        self._writer.write(encode(message))
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ServiceError("daemon closed the connection")
        return parse_response(line)

    def place(self, vm: VM, *, explain: bool = False) -> dict[str, object]:
        return self.request(place_request(vm, explain=explain))

    def place_batch(self, vms: Iterable[VM]) -> dict[str, object]:
        """Place a whole batch in one v2 round trip (``place_batch``)."""
        return self.request(place_batch_request(vms))

    def tick(self, now: int) -> dict[str, object]:
        return self.request({"op": "tick", "now": now})

    def stats(self) -> dict[str, object]:
        return self.request({"op": "stats"})

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition (``metrics`` op)."""
        response = self.request({"op": "metrics"})
        if not response.get("ok"):
            raise ServiceError(
                f"metrics request failed: {response.get('error')}")
        return str(response.get("text", ""))

    def ping(self) -> dict[str, object]:
        return self.request({"op": "ping"})

    def shutdown(self) -> dict[str, object]:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        for closer in (self._reader, self._writer, self._sock):
            try:
                closer.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass(frozen=True)
class ReplaySummary:
    """Aggregate outcome of streaming one workload at a daemon."""

    offered: int
    placed: int
    rejected: int
    delayed: int
    energy_delta_total: float
    mean_latency_ms: float

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


def replay_trace(client: DaemonClient, vms: Iterable[VM], *,
                 final_tick: bool = True,
                 batch: int | None = None) -> ReplaySummary:
    """Stream ``vms`` in online (start-time) order; returns the summary.

    With ``batch=N`` the workload is chunked into ``place_batch``
    requests of up to ``N`` VMs each (one v2 round trip per chunk,
    ``repro client --batch``); the default streams one ``place`` per
    VM. Both paths yield identical placements — the daemon processes a
    batch in the same online order.

    With ``final_tick`` the cluster clock is advanced past the last
    request's end afterwards, so the daemon retires everything and its
    telemetry covers the whole horizon.
    """
    if batch is not None and batch < 1:
        raise ServiceError(f"batch size must be >= 1, got {batch}")
    ordered = sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))
    placed = rejected = delayed = 0
    energy = 0.0
    latency_total = 0.0
    latency_samples = 0
    horizon = 0

    def tally(item: Mapping[str, object]) -> None:
        nonlocal placed, rejected, delayed, energy
        if item.get("decision") == "placed":
            placed += 1
            energy += float(item.get("energy_delta", 0.0))
            if int(item.get("delay", 0)):
                delayed += 1
        else:
            rejected += 1

    if batch is None:
        for vm in ordered:
            response = client.place(vm)
            if not response.get("ok"):
                raise ServiceError(
                    f"daemon rejected the protocol request for "
                    f"vm{vm.vm_id}: {response.get('error')}")
            horizon = max(horizon, vm.end)
            latency_total += float(response.get("latency_ms", 0.0))
            latency_samples += 1
            tally(response)
    else:
        for offset in range(0, len(ordered), batch):
            chunk = ordered[offset:offset + batch]
            response = client.place_batch(chunk)
            if not response.get("ok"):
                raise ServiceError(
                    f"daemon rejected the place_batch request at offset "
                    f"{offset}: {response.get('error')}")
            horizon = max(horizon, max(vm.end for vm in chunk))
            latency_total += float(response.get("latency_ms", 0.0))
            latency_samples += 1
            for item in response.get("decisions", []):
                tally(item)
    if final_tick and ordered:
        client.tick(horizon + 1)
    return ReplaySummary(
        offered=len(ordered), placed=placed, rejected=rejected,
        delayed=delayed, energy_delta_total=energy,
        mean_latency_ms=(latency_total / latency_samples
                         if latency_samples else 0.0))
