"""Client side of the allocation service: connect, retry, summarize.

:class:`AllocationClient` speaks the allocation protocol over TCP —
JSON-lines by default, or the protocol-v3 binary framing with
``framing="frames"`` — through *typed methods only*: :meth:`place`,
:meth:`place_batch`, :meth:`consolidate`, :meth:`telemetry`,
:meth:`slo` and friends. The raw-dict ``request()`` escape hatch —
deprecated since the v3 framing landed — is gone; code never builds
protocol dicts by hand.

Failures are classified with the typed hierarchy of
:mod:`repro.exceptions`, dispatching on the error envelope's stable
``code`` (:mod:`repro.service.errors`) — never on message text — and
reading the legacy v1/v2 string shape through the same normalizer:
transient transport faults (reset, timeout, connection closed
mid-response) raise :class:`~repro.exceptions.TransportError` and
overload shedding (code ``overloaded``) raises
:class:`~repro.exceptions.OverloadedError` — both are
:class:`~repro.exceptions.RetryableError`, and with a retry budget in
:class:`ClientConfig` the client reconnects and resends under capped
exponential backoff (honouring the daemon's ``retry_after`` hint).
Terminal protocol errors are never retried: the daemon's structured
error payload is returned to the caller unchanged.

Retries are at-least-once: a send that dies mid-response may already
have been applied by the daemon, so a retried mutating operation can be
applied twice. That matches the journal semantics (every applied
request is journaled); exactly-once callers should keep ``retries=0``
(the default).

:func:`replay_trace` streams a whole workload — a
:class:`~repro.workload.trace.Trace` or any VM iterable — in the
paper's online order (start time, ties by end then id), lifts every
response into a typed :class:`~repro.results.PlacementResult`, and
aggregates them into a :class:`ReplaySummary`. With ``batch=N`` it
chunks the stream into ``place_batch`` round trips instead of one
``place`` per VM — same placements, far fewer round trips. This is
what ``repro client`` runs.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.exceptions import (
    OverloadedError,
    RetryableError,
    ServiceError,
    TransportError,
    ValidationError,
)
from repro.model.vm import VM
from repro.obs.context import (
    REQUEST_ID_FIELD,
    TRACE_ID_FIELD,
    new_request_id,
    new_trace_id,
)
from repro.results import PlacementResult
from repro.service.errors import error_fields
from repro.service.framing import encode_frame, read_frame
from repro.service.protocol import (
    consolidate_request,
    dump_debug_request,
    encode,
    fail_server_request,
    parse_response,
    place_batch_request,
    place_request,
    recover_server_request,
    telemetry_request,
)

__all__ = ["AllocationClient", "ClientConfig",
           "ReplaySummary", "replay_trace"]

#: The client's wire dialects: newline-terminated JSON (compatible
#: with every daemon generation) or v3 length-prefixed frames.
FRAMINGS = ("lines", "frames")


@dataclass(frozen=True)
class ClientConfig:
    """Timeout and retry policy of one :class:`AllocationClient`.

    ``retries`` is the number of *additional* attempts after the first
    (0 = never retry). The delay before retry attempt ``k`` (0-based)
    is ``min(backoff_cap, backoff * 2**k)`` seconds, stretched by up to
    ``jitter`` (a fraction: 0.1 adds up to +10%, drawn from a
    ``random.Random(seed)`` so test schedules are reproducible), and
    never less than an :class:`~repro.exceptions.OverloadedError`'s
    ``retry_after`` hint.
    """

    timeout: float = 30.0
    retries: int = 0
    backoff: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValidationError(
                f"timeout must be positive, got {self.timeout!r}")
        if self.retries < 0:
            raise ValidationError(
                f"retries must be >= 0, got {self.retries!r}")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValidationError(
                f"backoff delays must be >= 0, got backoff="
                f"{self.backoff!r}, backoff_cap={self.backoff_cap!r}")
        if self.jitter < 0:
            raise ValidationError(
                f"jitter must be >= 0, got {self.jitter!r}")


class AllocationClient:
    """A blocking allocation-service client with typed errors and
    retries.

    ``framing`` selects the wire dialect: ``"lines"`` (JSON-lines, the
    default, byte-compatible with every daemon generation) or
    ``"frames"`` (the protocol-v3 binary framing — requires a server
    with the sniffing accept path, :mod:`repro.service.aio`).

    ``connect`` and ``sleep`` are injectable for tests: ``connect()``
    must return a connected socket-like object (``makefile``/``close``)
    and defaults to a TCP connection to ``host:port``; ``sleep`` is
    called with each backoff delay.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7077, *,
                 timeout: float | None = None,
                 config: ClientConfig | None = None,
                 framing: str = "lines",
                 connect: Callable[[], socket.socket] | None = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if framing not in FRAMINGS:
            raise ValidationError(
                f"unknown framing {framing!r}; valid framings: {FRAMINGS}")
        if config is None:
            config = ClientConfig() if timeout is None \
                else ClientConfig(timeout=timeout)
        elif timeout is not None and timeout != config.timeout:
            raise ValidationError(
                "pass the timeout inside ClientConfig, not alongside it")
        self.config = config
        self.framing = framing
        self._connect = connect if connect is not None else (
            lambda: socket.create_connection((host, port),
                                             timeout=config.timeout))
        self._sleep = sleep
        self._rng = random.Random(config.seed)
        self._sock: socket.socket | None = None
        self._reader = None
        self._writer = None
        self._open()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def _open(self) -> None:
        try:
            self._sock = self._connect()
            if self.framing == "frames":
                self._reader = self._sock.makefile("rb")
                self._writer = self._sock.makefile("wb")
            else:
                self._reader = self._sock.makefile("r", encoding="utf-8")
                self._writer = self._sock.makefile("w", encoding="utf-8")
        except OSError as exc:
            self._drop()
            raise TransportError(
                f"cannot connect to daemon: {exc}") from exc

    def _drop(self) -> None:
        for closer in (self._reader, self._writer, self._sock):
            if closer is None:
                continue
            try:
                closer.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._sock = self._reader = self._writer = None

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "AllocationClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def _backoff_delay(self, attempt: int) -> float:
        config = self.config
        delay = min(config.backoff_cap, config.backoff * 2 ** attempt)
        if config.jitter:
            delay *= 1.0 + config.jitter * self._rng.random()
        return delay

    def _exchange(self, message: Mapping[str, object]) -> str:
        """One wire round trip in the configured framing; returns the
        raw response line ("" when the peer closed cleanly)."""
        if self.framing == "frames":
            payload = encode(message).rstrip("\n").encode("utf-8")
            self._writer.write(encode_frame(payload))
            self._writer.flush()
            data = read_frame(self._reader)
            return "" if data is None \
                else data.decode("utf-8", errors="replace")
        self._writer.write(encode(message))
        self._writer.flush()
        return self._reader.readline()

    def _request_once(self, message: Mapping[str, object]
                      ) -> dict[str, object]:
        """One attempt: send, read, classify.

        Transport faults and overload shedding raise the retryable
        exceptions; every other response — including the daemon's
        structured terminal errors — is returned as-is. Classification
        dispatches on the error envelope's stable ``code`` (the legacy
        string shape normalizes through the same
        :func:`~repro.service.errors.error_fields` view).
        """
        try:
            if self._sock is None:
                self._open()
            line = self._exchange(message)
        except TransportError:
            raise
        except (OSError, ValueError, ServiceError) as exc:
            # ValueError covers writes on a half-closed file object;
            # ServiceError covers a connection dying mid-frame.
            self._drop()
            raise TransportError(
                f"connection to daemon failed: {exc}") from exc
        if not line:
            self._drop()
            raise TransportError("daemon closed the connection")
        response = parse_response(line)
        fields = error_fields(response)
        if fields is not None and fields.code == "overloaded":
            raise OverloadedError(
                "daemon shed the request under load",
                retry_after=fields.retry_after)
        return response

    def _request(self, message: Mapping[str, object]) -> dict[str, object]:
        """Send one request; retry transient failures per the config.

        Every request is stamped with a ``trace_id``/``request_id``
        pair before the first attempt (caller-supplied ids win) — the
        daemon echoes them on the response and attaches them to its
        spans, journal entries and log lines, and retries resend the
        *same* ids, so an at-least-once duplicate is recognisable.

        Raises the final :class:`~repro.exceptions.RetryableError` once
        the budget is exhausted. Terminal errors (malformed request,
        unknown op, validation) come back as the daemon's structured
        ``{"ok": false, ...}`` payload without consuming any retries.
        """
        message = dict(message)
        message.setdefault(TRACE_ID_FIELD, new_trace_id())
        message.setdefault(REQUEST_ID_FIELD, new_request_id())
        attempt = 0
        while True:
            try:
                return self._request_once(message)
            except RetryableError as exc:
                if attempt >= self.config.retries:
                    raise
                delay = self._backoff_delay(attempt)
                if isinstance(exc, OverloadedError) \
                        and exc.retry_after is not None:
                    delay = max(delay, float(exc.retry_after))
                self._sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def place(self, vm: VM, *, explain: bool = False,
              trace_id: str | None = None) -> dict[str, object]:
        request = place_request(vm, explain=explain)
        if trace_id is not None:
            request[TRACE_ID_FIELD] = trace_id
        return self._request(request)

    def place_batch(self, vms: Iterable[VM], *,
                    trace_id: str | None = None) -> dict[str, object]:
        """Place a whole batch in one v2 round trip (``place_batch``)."""
        request = place_batch_request(vms)
        if trace_id is not None:
            request[TRACE_ID_FIELD] = trace_id
        return self._request(request)

    def tick(self, now: int) -> dict[str, object]:
        return self._request({"op": "tick", "now": now})

    def fail_server(self, server_id: int,
                    time: int | None = None) -> dict[str, object]:
        """Report a server failure (v2 ``fail_server``); the response
        carries the re-placement outcome."""
        return self._request(fail_server_request(server_id, time))

    def recover_server(self, server_id: int) -> dict[str, object]:
        """Bring a failed server back (v2 ``recover_server``)."""
        return self._request(recover_server_request(server_id))

    def consolidate(self, time: int | None = None) -> dict[str, object]:
        """Run one live consolidation episode (v2 ``consolidate``);
        the response carries the committed migrations and their yield."""
        return self._request(consolidate_request(time))

    def telemetry(self, last: int | None = None) -> dict[str, object]:
        """The daemon's fleet telemetry ring + SLO report (the
        ``telemetry`` op); ``last`` limits the sample count."""
        return self._request(telemetry_request(last))

    def slo(self) -> dict[str, object]:
        """The daemon's SLO report alone (objectives, burn rates,
        attainment) — the ``slo`` section of :meth:`telemetry`."""
        response = self._request(telemetry_request(1))
        if not response.get("ok"):
            raise ServiceError(
                f"telemetry request failed: {response.get('error')}")
        slo = response.get("slo")
        return dict(slo) if isinstance(slo, Mapping) else {}

    def dump_debug(self) -> dict[str, object]:
        """The daemon's flight recorder (v2 ``dump_debug``): the last
        N request/response tuples."""
        return self._request(dump_debug_request())

    def stats(self) -> dict[str, object]:
        return self._request({"op": "stats"})

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition (``metrics`` op)."""
        response = self._request({"op": "metrics"})
        if not response.get("ok"):
            raise ServiceError(
                f"metrics request failed: {response.get('error')}")
        return str(response.get("text", ""))

    def ping(self) -> dict[str, object]:
        return self._request({"op": "ping"})

    def shutdown(self) -> dict[str, object]:
        return self._request({"op": "shutdown"})


@dataclass(frozen=True)
class ReplaySummary:
    """Aggregate outcome of streaming one workload at a daemon."""

    offered: int
    placed: int
    rejected: int
    delayed: int
    energy_delta_total: float
    mean_latency_ms: float

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


def replay_trace(client: AllocationClient, vms: Iterable[VM], *,
                 final_tick: bool = True,
                 batch: int | None = None) -> ReplaySummary:
    """Stream ``vms`` in online (start-time) order; returns the summary.

    With ``batch=N`` the workload is chunked into ``place_batch``
    requests of up to ``N`` VMs each (one v2 round trip per chunk,
    ``repro client --batch``); the default streams one ``place`` per
    VM. Both paths yield identical placements — the daemon processes a
    batch in the same online order.

    Every per-VM outcome is lifted into a typed
    :class:`~repro.results.PlacementResult` before tallying, so the
    summary counts exactly what the result vocabulary defines
    (``deferred`` results count as placed *and* delayed).

    With ``final_tick`` the cluster clock is advanced past the last
    request's end afterwards, so the daemon retires everything and its
    telemetry covers the whole horizon.
    """
    if batch is not None and batch < 1:
        raise ServiceError(f"batch size must be >= 1, got {batch}")
    ordered = sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))
    placed = rejected = delayed = 0
    energy = 0.0
    latency_total = 0.0
    latency_samples = 0
    horizon = 0

    def tally(item: Mapping[str, object]) -> None:
        nonlocal placed, rejected, delayed, energy
        result = PlacementResult.from_response(item)
        if result.placed:
            placed += 1
            energy += result.energy_delta
            if result.delay:
                delayed += 1
        else:
            rejected += 1

    if batch is None:
        for vm in ordered:
            response = client.place(vm)
            if not response.get("ok"):
                raise ServiceError(
                    f"daemon rejected the protocol request for "
                    f"vm{vm.vm_id}: {response.get('error')}")
            horizon = max(horizon, vm.end)
            latency_total += float(response.get("latency_ms", 0.0))
            latency_samples += 1
            tally(response)
    else:
        for offset in range(0, len(ordered), batch):
            chunk = ordered[offset:offset + batch]
            response = client.place_batch(chunk)
            if not response.get("ok"):
                raise ServiceError(
                    f"daemon rejected the place_batch request at offset "
                    f"{offset}: {response.get('error')}")
            horizon = max(horizon, max(vm.end for vm in chunk))
            latency_total += float(response.get("latency_ms", 0.0))
            latency_samples += 1
            for item in response.get("decisions", []):
                tally(item)
    if final_tick and ordered:
        client.tick(horizon + 1)
    return ReplaySummary(
        offered=len(ordered), placed=placed, rejected=rejected,
        delayed=delayed, energy_delta_total=energy,
        mean_latency_ms=(latency_total / latency_samples
                         if latency_samples else 0.0))
