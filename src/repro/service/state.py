"""Live cluster state behind the allocation daemon.

A :class:`ClusterStateStore` is the online counterpart of one
:func:`~repro.simulation.engine.simulate_online` run, split along the
axis a long-running service needs:

* **planning state** — one :class:`~repro.allocators.state.ServerState`
  per server carries the committed usage, busy segments, and the running
  Eq.-17 cost, exactly as during batch allocation, so any registered
  allocator selects servers through its unmodified ``select`` rule;
* **live state** — one :class:`~repro.simulation.power_state.ServerMachine`
  per server tracks the *current* power state as the wall clock advances:
  servers wake when a placed VM's start tick arrives, expired VMs are
  retired at their end tick, and an emptied server powers down (an online
  controller cannot evaluate the Eq.-16 sleep rule — the next arrival is
  unknown — so the live view sleeps greedily, bridging only gaps of
  length zero; the *authoritative* energy remains the analytic
  accounting, which applies the configured sleep policy exactly);
* **telemetry** — per-tick fleet power, active servers and running VMs,
  frozen into a :class:`~repro.simulation.telemetry.Telemetry` on demand.

The store is crash-safe via :meth:`to_snapshot` / :meth:`from_snapshot`:
a snapshot records the cluster, the clock and every placement in commit
order *with the clock value it was committed at*, and restoring replays
each placement at that clock. That reproduces the live interleaving of
commits and clock advances exactly — including out-of-order arrivals
(``vm.start < clock`` starts immediately, not at its nominal tick) and
sleep/wake cycles the one-tick lookahead would otherwise elide when all
starts are known up front — so planning state, machines (power state,
residents, transition counters) and telemetry are rebuilt bit-for-bit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy, allocation_cost
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.phases import demand_profile
from repro.model.server import ServerSpec
from repro.model.vm import VM
from repro.placement.occupancy import DEFAULT_ENGINE
from repro.simulation.power_state import PowerState, ServerMachine
from repro.simulation.telemetry import Telemetry
from repro.workload.trace import vm_from_record, vm_to_record

__all__ = ["ClusterStateStore", "SNAPSHOT_FORMAT_VERSION", "snapshot_meta"]

SNAPSHOT_FORMAT_VERSION = 1

_SPEC_FIELDS = ("name", "cpu_capacity", "memory_capacity", "p_idle",
                "p_peak", "transition_time")


def _spec_record(spec: ServerSpec) -> dict[str, object]:
    return {field: getattr(spec, field) for field in _SPEC_FIELDS}


class ClusterStateStore:
    """Mutable cluster state: planning usage, power states, telemetry."""

    def __init__(self, cluster: Cluster, *,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL,
                 engine: str = DEFAULT_ENGINE) -> None:
        self.cluster = cluster
        self.policy = policy
        self.engine = engine
        self.states = [ServerState(server, policy=policy, engine=engine)
                       for server in cluster]
        self.machines = {server.server_id: ServerMachine(server)
                         for server in cluster}
        self.clock = 0
        #: analytic Eq.-17 energy, accumulated per-placement delta
        self.energy_accumulated = 0.0
        self._placements: list[tuple[VM, int]] = []
        #: clock value at each commit, parallel to ``_placements``
        self._commit_clocks: list[int] = []
        self._vm_ids: set[int] = set()
        # live-event schedule: tick -> [(piece_id, server_id)]
        self._starts: dict[int, list[tuple[int, int]]] = {}
        self._ends: dict[int, list[tuple[int, int]]] = {}
        self._piece_demand: dict[int, tuple[float, float]] = {}
        # retirement bookkeeping: which VM each piece belongs to, and how
        # many of a VM's pieces are still scheduled to end
        self._piece_vm: dict[int, int] = {}
        self._open_pieces: dict[int, list] = {}  # vm_id -> [vm, sid, n]
        self._next_piece = 0
        self._max_end = 0
        # per-tick samples; index 0 is tick 1 (ticks < clock are closed)
        self._power: list[float] = []
        self._active: list[int] = []
        self._running: list[int] = []

    # -- placement ---------------------------------------------------------

    def commit(self, vm: VM, server_id: int) -> float:
        """Commit ``vm`` to server ``server_id``; returns the energy delta.

        Updates the planning state (raising
        :class:`~repro.exceptions.CapacityError` when the VM does not
        fit), registers the VM's start/end on the live schedule, and —
        when the VM starts on the current tick — wakes the server and
        admits it immediately.

        ``vm_id`` is the request's identity: committing a second VM
        with an already-placed id raises
        :class:`~repro.exceptions.ValidationError` (duplicates would
        silently collapse in the :class:`Allocation` view and corrupt
        the from-scratch energy total).
        """
        if vm.vm_id in self._vm_ids:
            raise ValidationError(
                f"vm_id {vm.vm_id} is already placed; "
                "service vm ids must be unique")
        delta = self.states[server_id].place(vm)
        self._vm_ids.add(vm.vm_id)
        self._placements.append((vm, server_id))
        self._commit_clocks.append(self.clock)
        self.energy_accumulated += delta
        open_pieces = 0
        for piece, cpu, memory in demand_profile(vm):
            if piece.end < self.clock:
                continue  # entirely in the past: no live effect
            piece_id = self._next_piece
            self._next_piece += 1
            open_pieces += 1
            self._piece_demand[piece_id] = (cpu, memory)
            self._piece_vm[piece_id] = vm.vm_id
            self._max_end = max(self._max_end, piece.end)
            if piece.start <= self.clock:
                machine = self.machines[server_id]
                if machine.state is PowerState.POWER_SAVING:
                    machine.wake()
                machine.start_vm(piece_id, cpu, memory)
            else:
                self._starts.setdefault(piece.start, []).append(
                    (piece_id, server_id))
            self._ends.setdefault(piece.end, []).append(
                (piece_id, server_id))
        if open_pieces:
            self._open_pieces[vm.vm_id] = [vm, server_id, open_pieces]
        else:
            # Entirely in the past at commit time: retire immediately so
            # planning-state memory tracks live load, not history.
            self.states[server_id].retire(vm, before=self.clock)
        return delta

    # -- clock -------------------------------------------------------------

    def advance_to(self, t: int) -> None:
        """Advance the wall clock to tick ``t`` (monotone).

        Mirrors the replay engine's per-tick ordering: wakes and VM
        starts open a tick, the fleet sample is taken mid-tick, and VM
        retirements and sleeps close it. The current tick stays open —
        its sample is taken when the clock moves past it, so placements
        landing on the current tick are included.
        """
        if t < self.clock:
            raise ValidationError(
                f"clock cannot move backwards: {t} < {self.clock}")
        while self.clock < t:
            if self.clock >= 1:
                self._close_tick(self.clock)
            self.clock += 1
            for piece_id, server_id in self._starts.pop(self.clock, ()):
                machine = self.machines[server_id]
                if machine.state is PowerState.POWER_SAVING:
                    machine.wake()
                cpu, memory = self._piece_demand[piece_id]
                machine.start_vm(piece_id, cpu, memory)

    def _close_tick(self, tick: int) -> None:
        power = 0.0
        active = 0
        running = 0
        for machine in self.machines.values():
            power += machine.power_draw()
            if machine.state is PowerState.ACTIVE:
                active += 1
            running += len(machine.resident_vms)
        self._power.append(power)
        self._active.append(active)
        self._running.append(running)
        for piece_id, server_id in self._ends.pop(tick, ()):
            cpu, memory = self._piece_demand.pop(piece_id)
            self.machines[server_id].end_vm(piece_id, cpu, memory)
            vm_id = self._piece_vm.pop(piece_id)
            entry = self._open_pieces[vm_id]
            entry[2] -= 1
            if entry[2] == 0:
                del self._open_pieces[vm_id]
                # Last piece done: the VM ran to completion — drop it from
                # the planning state and compact detail older than `tick`.
                self.states[entry[1]].retire(entry[0], before=tick)
        # Power down emptied servers — unless a start is already
        # scheduled for the very next tick (a zero-length gap).
        imminent = {server_id
                    for _, server_id in self._starts.get(tick + 1, ())}
        for machine in self.machines.values():
            if machine.state is PowerState.ACTIVE and \
                    not machine.resident_vms and \
                    machine.server.server_id not in imminent:
                machine.sleep()

    def run_to_completion(self) -> None:
        """Advance past the last scheduled retirement, closing every tick."""
        self.advance_to(max(self.clock, self._max_end) + 1)

    # -- views -------------------------------------------------------------

    @property
    def placements(self) -> tuple[tuple[VM, int], ...]:
        """Every committed (vm, server_id) pair in commit order."""
        return tuple(self._placements)

    def is_placed(self, vm_id: int) -> bool:
        """Whether a VM with this id has already been committed (the
        service's batch pre-validation uses this to reject duplicate
        ids before mutating anything)."""
        return vm_id in self._vm_ids

    def allocation(self) -> Allocation:
        """The committed placements as an :class:`Allocation`."""
        return Allocation(self.cluster,
                          {vm: sid for vm, sid in self._placements})

    def energy_total(self) -> float:
        """From-scratch analytic Eq.-17 energy of the committed plan."""
        return allocation_cost(self.allocation(), policy=self.policy).total

    def fleet_power(self) -> float:
        """Instantaneous fleet power draw (Eq. 1) on the current tick."""
        return sum(m.power_draw() for m in self.machines.values())

    def servers_active(self) -> int:
        return sum(1 for m in self.machines.values()
                   if m.state is PowerState.ACTIVE)

    def servers_asleep(self) -> int:
        return sum(1 for m in self.machines.values()
                   if m.state is PowerState.POWER_SAVING)

    def running_vms(self) -> int:
        return sum(len(m.resident_vms) for m in self.machines.values())

    def telemetry(self) -> Telemetry:
        """The closed-tick series as an immutable Telemetry."""
        return Telemetry(power=np.array(self._power, dtype=float),
                         active_servers=np.array(self._active, dtype=int),
                         running_vms=np.array(self._running, dtype=int))

    # -- snapshots ---------------------------------------------------------

    def to_snapshot(self, meta: Mapping[str, object] | None = None
                    ) -> dict[str, object]:
        """A JSON-safe document from which :meth:`from_snapshot` rebuilds
        an identical store. ``meta`` rides along uninterpreted (the
        daemon stores its counters and journal sequence there)."""
        return {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "policy": self.policy.value,
            "engine": self.engine,
            "clock": self.clock,
            "cluster": [_spec_record(server.spec)
                        for server in self.cluster],
            "placements": [{"server_id": server_id,
                            "committed_at": committed_at,
                            "vm": vm_to_record(vm)}
                           for (vm, server_id), committed_at
                           in zip(self._placements, self._commit_clocks)],
            "meta": dict(meta) if meta else {},
        }

    @classmethod
    def from_snapshot(cls, document: Mapping[str, object]
                      ) -> "ClusterStateStore":
        """Rebuild a store from a :meth:`to_snapshot` document.

        Placements are re-committed in their original order, each at
        its recorded ``committed_at`` clock, so the live sequence of
        commits and clock advances — and with it planning state, power
        states, transition counters and telemetry — is reproduced
        exactly.
        """
        version = document.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise ValidationError(
                f"unsupported snapshot format version {version!r}")
        try:
            specs = [ServerSpec(**record) for record in document["cluster"]]
            policy = SleepPolicy(document["policy"])
            # Pre-engine snapshots carry no field: they were produced by
            # the dense-only build, but replay is engine-agnostic, so the
            # default (indexed) engine restores them bit-exactly too.
            engine = str(document.get("engine", DEFAULT_ENGINE))
            clock = int(document["clock"])
            entries = list(document["placements"])
        except (TypeError, KeyError, ValueError) as exc:
            raise ValidationError(f"malformed snapshot: {exc}") from exc
        store = cls(Cluster.from_specs(specs), policy=policy, engine=engine)
        for i, entry in enumerate(entries):
            try:
                vm = vm_from_record(entry["vm"])
                server_id = int(entry["server_id"])
                committed_at = int(entry["committed_at"])
            except (TypeError, KeyError, ValueError) as exc:
                raise ValidationError(
                    f"malformed snapshot placement #{i}: {exc}") from exc
            if committed_at > store.clock:
                store.advance_to(committed_at)
            store.commit(vm, server_id)
        store.advance_to(clock)
        return store

    def save(self, path: str | Path,
             meta: Mapping[str, object] | None = None) -> None:
        """Atomically write the snapshot document to ``path``."""
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_snapshot(meta)))
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | Path) -> "ClusterStateStore":
        """Load a snapshot written by :meth:`save`."""
        path = Path(path)
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"{path}: not a valid snapshot: {exc}") from exc
        return cls.from_snapshot(document)

    def __repr__(self) -> str:
        return (f"ClusterStateStore(n_servers={len(self.cluster)}, "
                f"clock={self.clock}, placements={len(self._placements)}, "
                f"active={self.servers_active()})")


def snapshot_meta(document: Mapping[str, object]) -> dict[str, object]:
    """The ``meta`` payload of a snapshot document (empty when absent)."""
    meta = document.get("meta")
    return dict(meta) if isinstance(meta, Mapping) else {}
