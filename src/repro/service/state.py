"""Live cluster state behind the allocation daemon.

A :class:`ClusterStateStore` is the online counterpart of one
:func:`~repro.simulation.engine.simulate_online` run, split along the
axis a long-running service needs:

* **planning state** — one :class:`~repro.allocators.state.ServerState`
  per server carries the committed usage, busy segments, and the running
  Eq.-17 cost, exactly as during batch allocation, so any registered
  allocator selects servers through its unmodified ``select`` rule;
* **live state** — one :class:`~repro.simulation.power_state.ServerMachine`
  per server tracks the *current* power state as the wall clock advances:
  servers wake when a placed VM's start tick arrives, expired VMs are
  retired at their end tick, and an emptied server powers down (an online
  controller cannot evaluate the Eq.-16 sleep rule — the next arrival is
  unknown — so the live view sleeps greedily, bridging only gaps of
  length zero; the *authoritative* energy remains the analytic
  accounting, which applies the configured sleep policy exactly);
* **telemetry** — per-tick fleet power, active servers and running VMs,
  frozen into a :class:`~repro.simulation.telemetry.Telemetry` on demand.

The store is crash-safe via :meth:`to_snapshot` / :meth:`from_snapshot`:
a snapshot records the cluster, the clock and every placement in commit
order *with the clock value it was committed at*, and restoring replays
each placement at that clock. That reproduces the live interleaving of
commits and clock advances exactly — including out-of-order arrivals
(``vm.start < clock`` starts immediately, not at its nominal tick) and
sleep/wake cycles the one-tick lookahead would otherwise elide when all
starts are known up front — so planning state, machines (power state,
residents, transition counters) and telemetry are rebuilt bit-for-bit.

Failures are first-class: :meth:`fail_server` kills a server at a tick,
splits every affected VM through the shared
:mod:`repro.simulation.recovery` mechanics (interrupted heads stay on
the victim's books as wasted energy, remainders are re-placed through a
recovery allocator over the surviving fleet), and records the whole
episode — every head/remainder/target — as one event in the snapshot
stream, so a restore replays the *recorded* re-placements instead of
re-running the allocator. :meth:`recover_server` brings a dead server
back to POWER_SAVING; its next wake pays the usual transition cost
``alpha``, which is exactly the paper's Eq.-17 accounting of
recovery as an energy event. Snapshots carrying failure events use
format version 2; event-free snapshots keep writing version 1.

Consolidation reuses the same machinery in the opposite direction:
:meth:`consolidate` runs one migration episode of the shared
:class:`~repro.consolidation.planner.MigrationPlanner` against
*full-history planning replicas* (rebuilt from the placement log, the
same trick the failure path uses for the victim's book, so retired
VMs' spent energy and anchors are never lost), then applies the plan
to the live books — heads stay behind as legitimately-spent energy,
remainders are re-scheduled on their targets, drained-empty servers
power down at the close of the tick, and the per-move migration cost
accrues in :attr:`migration_energy`. Each episode is one event in the
snapshot stream (kind ``"consolidate"``, format version 3), replayed
from its recorded moves exactly like a failure episode — the planner
is never re-run on restore.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.allocators.base import Allocator
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.state import ServerState
from repro.consolidation.planner import (
    ConsolidationReport,
    MigrationPlanner,
    PlannedMove,
)
from repro.energy.cost import SleepPolicy, allocation_cost
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.phases import demand_profile
from repro.model.server import ServerSpec
from repro.model.vm import VM
from repro.placement.config import EngineConfig
from repro.placement.occupancy import DEFAULT_ENGINE
from repro.simulation.power_state import (
    FleetAggregates,
    PowerState,
    ServerMachine,
)
from repro.simulation.recovery import recover_target, split_remainder
from repro.simulation.telemetry import Telemetry
from repro.workload.trace import vm_from_record, vm_to_record

__all__ = ["ClusterStateStore", "ConsolidationReport", "FailureReport",
           "Replacement", "SNAPSHOT_FORMAT_VERSION", "snapshot_meta"]

#: Highest snapshot format this build writes (and reads). Version 2
#: added the failure/recovery event stream; version 3 adds consolidation
#: episodes to it. Stores write the lowest version that can express
#: their event stream, so snapshots stay readable by older builds
#: whenever possible.
SNAPSHOT_FORMAT_VERSION = 3

_SUPPORTED_SNAPSHOT_VERSIONS = (1, 2, 3)


@dataclass(frozen=True)
class Replacement:
    """One affected VM's fate in a server failure.

    ``head`` is the interrupted prefix left on the victim (``None`` when
    the VM had not started and moved whole); ``remainder`` is the part
    re-placed — onto ``server_id``, or lost when ``server_id`` is
    ``None``. ``energy_delta`` is the Eq.-17 planning delta on the
    target (including a forced wake ``alpha`` when the target has to
    power on); ``0.0`` for a lost remainder.
    """

    vm: VM
    head: VM | None
    remainder: VM
    server_id: int | None
    energy_delta: float = 0.0

    @property
    def lost(self) -> bool:
        return self.server_id is None

    def to_record(self) -> dict[str, object]:
        return {
            "vm": vm_to_record(self.vm),
            "head": vm_to_record(self.head) if self.head is not None
            else None,
            "remainder": vm_to_record(self.remainder),
            "server_id": self.server_id,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "Replacement":
        head = record.get("head")
        server_id = record.get("server_id")
        return cls(
            vm=vm_from_record(record["vm"]),
            head=vm_from_record(head) if head is not None else None,
            remainder=vm_from_record(record["remainder"]),
            server_id=int(server_id) if server_id is not None else None,
        )


@dataclass(frozen=True)
class FailureReport:
    """What one :meth:`ClusterStateStore.fail_server` episode did."""

    server_id: int
    time: int
    replacements: tuple[Replacement, ...]
    #: change of the victim's Eq.-17 book (interrupted heads replace
    #: the affected VMs' full runs — usually negative)
    victim_delta: float
    #: victim delta plus every target delta: the fleet-wide energy cost
    #: of this failure episode
    energy_delta: float

    @property
    def killed(self) -> int:
        """VMs interrupted mid-run (a head was left behind)."""
        return sum(1 for r in self.replacements if r.head is not None)

    @property
    def replaced(self) -> int:
        """Remainders that found a new home."""
        return sum(1 for r in self.replacements if r.server_id is not None)

    @property
    def lost(self) -> tuple[VM, ...]:
        """Affected VMs whose remainder fit nowhere."""
        return tuple(r.vm for r in self.replacements if r.lost)

_SPEC_FIELDS = ("name", "cpu_capacity", "memory_capacity", "p_idle",
                "p_peak", "transition_time")


def _spec_record(spec: ServerSpec) -> dict[str, object]:
    return {field: getattr(spec, field) for field in _SPEC_FIELDS}


class ClusterStateStore:
    """Mutable cluster state: planning usage, power states, telemetry."""

    def __init__(self, cluster: Cluster, *,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL,
                 engine: EngineConfig | str = DEFAULT_ENGINE) -> None:
        self.cluster = cluster
        self.policy = policy
        # The store is a config-file-level entry point (CLI, snapshots),
        # so a string here is read as the sanctioned spec string — no
        # ctor-string deprecation, unlike the allocator constructors.
        self.engine_config = EngineConfig.coerce(engine, warn=False)
        #: backend name (``"indexed"``/``"dense"``), kept for back-compat
        self.engine = self.engine_config.engine
        self.states = [ServerState(server, policy=policy,
                                   engine=self.engine_config)
                       for server in cluster]
        self.machines = {server.server_id: ServerMachine(server)
                         for server in cluster}
        #: O(1) fleet totals, kept in sync by the machines themselves —
        #: the telemetry sampler reads these instead of scanning
        self.fleet = FleetAggregates()
        for machine in self.machines.values():
            machine.watcher = self.fleet
            self.fleet.add(machine)
        self.clock = 0
        #: analytic Eq.-17 energy, accumulated per-placement delta
        self.energy_accumulated = 0.0
        #: energy charged for live migrations (per-move cost, on top of
        #: the Eq.-17 placement energy)
        self.migration_energy = 0.0
        self._placements: list[tuple[VM, int]] = []
        #: durable replay stream: every normal commit as (vm, server_id,
        #: clock committed at). Unlike ``_placements`` — the live
        #: allocation truth, which failures edit in place — this log is
        #: append-only; snapshots serialize it plus the event stream.
        self._commit_log: list[tuple[VM, int, int]] = []
        #: failure/recovery events, JSON-safe, in occurrence order; each
        #: carries ``after`` = how many commits preceded it, so replay
        #: interleaves the two streams exactly.
        self._events: list[dict] = []
        #: server_id -> failure tick of currently-dead servers
        self._dead: dict[int, int] = {}
        self._vm_ids: set[int] = set()
        #: next fresh vm id for failure splits (heads/remainders get ids
        #: above every id ever committed, mirroring the offline replay)
        self._next_vm_id = 0
        # live-event schedule: tick -> [(piece_id, server_id)]
        self._starts: dict[int, list[tuple[int, int]]] = {}
        self._ends: dict[int, list[tuple[int, int]]] = {}
        self._piece_demand: dict[int, tuple[float, float]] = {}
        # retirement bookkeeping: which VM each piece belongs to, and how
        # many of a VM's pieces are still scheduled to end
        self._piece_vm: dict[int, int] = {}
        self._open_pieces: dict[int, list] = {}  # vm_id -> [vm, sid, n]
        self._next_piece = 0
        self._max_end = 0
        # per-tick samples; index 0 is tick 1 (ticks < clock are closed)
        self._power: list[float] = []
        self._active: list[int] = []
        self._running: list[int] = []

    # -- placement ---------------------------------------------------------

    def commit(self, vm: VM, server_id: int) -> float:
        """Commit ``vm`` to server ``server_id``; returns the energy delta.

        Updates the planning state (raising
        :class:`~repro.exceptions.CapacityError` when the VM does not
        fit), registers the VM's start/end on the live schedule, and —
        when the VM starts on the current tick — wakes the server and
        admits it immediately.

        ``vm_id`` is the request's identity: committing a second VM
        with an already-placed id raises
        :class:`~repro.exceptions.ValidationError` (duplicates would
        silently collapse in the :class:`Allocation` view and corrupt
        the from-scratch energy total).
        """
        if vm.vm_id in self._vm_ids:
            raise ValidationError(
                f"vm_id {vm.vm_id} is already placed; "
                "service vm ids must be unique")
        if server_id in self._dead:
            raise ValidationError(
                f"server {server_id} failed at tick "
                f"{self._dead[server_id]} and has not recovered; "
                "it cannot host new VMs")
        delta = self.states[server_id].place(vm)
        self._vm_ids.add(vm.vm_id)
        self._next_vm_id = max(self._next_vm_id, vm.vm_id + 1)
        self._placements.append((vm, server_id))
        self._commit_log.append((vm, server_id, self.clock))
        self.energy_accumulated += delta
        self._schedule_live(vm, server_id)
        return delta

    def _schedule_live(self, vm: VM, server_id: int) -> None:
        """Register ``vm``'s pieces on the live schedule; pieces already
        due start immediately (waking the server when needed), entirely
        past VMs are retired from planning on the spot."""
        open_pieces = 0
        for piece, cpu, memory in demand_profile(vm):
            if piece.end < self.clock:
                continue  # entirely in the past: no live effect
            piece_id = self._next_piece
            self._next_piece += 1
            open_pieces += 1
            self._piece_demand[piece_id] = (cpu, memory)
            self._piece_vm[piece_id] = vm.vm_id
            self._max_end = max(self._max_end, piece.end)
            if piece.start <= self.clock:
                machine = self.machines[server_id]
                if machine.state is PowerState.POWER_SAVING:
                    machine.wake()
                machine.start_vm(piece_id, cpu, memory)
            else:
                self._starts.setdefault(piece.start, []).append(
                    (piece_id, server_id))
            self._ends.setdefault(piece.end, []).append(
                (piece_id, server_id))
        if open_pieces:
            self._open_pieces[vm.vm_id] = [vm, server_id, open_pieces]
        else:
            # Entirely in the past at commit time: retire immediately so
            # planning-state memory tracks live load, not history.
            self.states[server_id].retire(vm, before=self.clock)

    # -- clock -------------------------------------------------------------

    def advance_to(self, t: int) -> None:
        """Advance the wall clock to tick ``t`` (monotone).

        Mirrors the replay engine's per-tick ordering: wakes and VM
        starts open a tick, the fleet sample is taken mid-tick, and VM
        retirements and sleeps close it. The current tick stays open —
        its sample is taken when the clock moves past it, so placements
        landing on the current tick are included.
        """
        if t < self.clock:
            raise ValidationError(
                f"clock cannot move backwards: {t} < {self.clock}")
        while self.clock < t:
            if self.clock >= 1:
                self._close_tick(self.clock)
            self.clock += 1
            for piece_id, server_id in self._starts.pop(self.clock, ()):
                machine = self.machines[server_id]
                if machine.state is PowerState.POWER_SAVING:
                    machine.wake()
                cpu, memory = self._piece_demand[piece_id]
                machine.start_vm(piece_id, cpu, memory)

    def _close_tick(self, tick: int) -> None:
        power = 0.0
        active = 0
        running = 0
        for machine in self.machines.values():
            power += machine.power_draw()
            if machine.state is PowerState.ACTIVE:
                active += 1
            running += len(machine.resident_vms)
        self._power.append(power)
        self._active.append(active)
        self._running.append(running)
        for piece_id, server_id in self._ends.pop(tick, ()):
            cpu, memory = self._piece_demand.pop(piece_id)
            self.machines[server_id].end_vm(piece_id, cpu, memory)
            vm_id = self._piece_vm.pop(piece_id)
            entry = self._open_pieces[vm_id]
            entry[2] -= 1
            if entry[2] == 0:
                del self._open_pieces[vm_id]
                # Last piece done: the VM ran to completion — drop it from
                # the planning state and compact detail older than `tick`.
                self.states[entry[1]].retire(entry[0], before=tick)
        # Power down emptied servers — unless a start is already
        # scheduled for the very next tick (a zero-length gap).
        imminent = {server_id
                    for _, server_id in self._starts.get(tick + 1, ())}
        for machine in self.machines.values():
            if machine.state is PowerState.ACTIVE and \
                    not machine.resident_vms and \
                    machine.server.server_id not in imminent:
                machine.sleep()

    def run_to_completion(self) -> None:
        """Advance past the last scheduled retirement, closing every tick."""
        self.advance_to(max(self.clock, self._max_end) + 1)

    # -- failures ----------------------------------------------------------

    def fail_server(self, server_id: int, time: int | None = None, *,
                    recovery: Allocator | None = None,
                    replacements: Sequence[Replacement] | None = None
                    ) -> FailureReport:
        """Kill server ``server_id`` at tick ``time``; re-place its VMs.

        Mirrors :func:`repro.simulation.failures.inject_failures`, one
        failure at a time, against the live store: the clock advances to
        ``time`` (default: the current tick), the victim stops drawing
        power and hosting VMs, and every affected VM (``end >= time``,
        processed in ``(start, vm_id)`` order) is cut by the shared
        :func:`~repro.simulation.recovery.split_remainder` rule — the
        interrupted head stays on the victim's books as wasted energy,
        the remainder goes to
        :func:`~repro.simulation.recovery.recover_target` over the
        surviving fleet (``recovery`` defaults to the paper's
        min-incremental-energy heuristic). Remainders that fit nowhere
        are lost.

        Targets that must power on to take a remainder pay the
        transition cost ``alpha`` — visible in each
        :class:`Replacement.energy_delta` — which is why the returned
        :class:`FailureReport` is an *energy* report, not just an
        availability one.

        ``replacements`` replays a previously recorded episode verbatim
        (snapshot restore / journal replay): the allocator is never
        re-run, the recorded head/remainder/target triples are applied
        as-is, so a restored store is bit-identical to the original.
        """
        if not 0 <= server_id < len(self.cluster):
            raise ValidationError(
                f"failure names unknown server {server_id}")
        if server_id in self._dead:
            raise ValidationError(
                f"server {server_id} already failed at tick "
                f"{self._dead[server_id]}")
        time = self.clock if time is None else int(time)
        if time < 1:
            raise ValidationError(
                f"failure time must be >= 1, got {time}")
        if time < self.clock:
            raise ValidationError(
                f"cannot fail server {server_id} in the past: "
                f"tick {time} < clock {self.clock}")
        at = self.clock
        self.advance_to(time)
        victim = self.states[server_id]
        old_cost = victim.cost
        self._dead[server_id] = time
        self.machines[server_id].fail()
        out: list[Replacement] = []
        if replacements is None:
            affected = sorted(
                (vm for vm in list(victim.vms) if vm.end >= time),
                key=lambda v: (v.start, v.vm_id))
            if recovery is None:
                recovery = MinIncrementalEnergy(policy=self.policy,
                                                engine=self.engine_config)
            self._purge_pieces({vm.vm_id for vm in affected})
            for vm in affected:
                self._unplace(vm, server_id)
                head, remainder, self._next_vm_id = split_remainder(
                    vm, time, self._next_vm_id)
                target = recover_target(remainder, self.states,
                                        self._dead, recovery)
                target_id = None if target is None \
                    else target.server.server_id
                out.append(self._apply_replacement(
                    vm, head, remainder, server_id, target_id))
        else:
            planned = [r if isinstance(r, Replacement)
                       else Replacement.from_record(r)
                       for r in replacements]
            self._purge_pieces({r.vm.vm_id for r in planned})
            for r in planned:
                self._unplace(r.vm, server_id)
                if r.head is not None:
                    self._next_vm_id = max(self._next_vm_id,
                                           r.head.vm_id + 1,
                                           r.remainder.vm_id + 1)
                out.append(self._apply_replacement(
                    r.vm, r.head, r.remainder, server_id, r.server_id))
        # Rebuild the victim's planning book from the full placement
        # history (retired VMs included): the naive remove+re-place
        # would lose the energy anchors of already-retired VMs. Every
        # surviving entry ends before the failure tick, so the fresh
        # state retires them all and holds only the Eq.-17 cost.
        fresh = ServerState(victim.server, policy=self.policy,
                            engine=self.engine_config)
        mine = [vm for vm, sid in self._placements if sid == server_id]
        for vm in mine:
            fresh.place(vm)
        for vm in mine:
            fresh.retire(vm, before=self.clock)
        self.states[server_id] = fresh
        victim_delta = fresh.cost - old_cost
        self.energy_accumulated += victim_delta
        report = FailureReport(
            server_id=server_id, time=time, replacements=tuple(out),
            victim_delta=victim_delta,
            energy_delta=victim_delta + sum(r.energy_delta for r in out))
        self._events.append({
            "kind": "fail", "server_id": server_id, "time": time,
            "at": at, "after": len(self._commit_log),
            "replacements": [r.to_record() for r in out]})
        return report

    def recover_server(self, server_id: int) -> None:
        """Bring a failed server back to POWER_SAVING.

        Recovery itself is free; the planning book (with any wasted
        heads) is kept, and the server's next wake — forced by the
        first VM placed on it — pays the usual transition ``alpha``.
        """
        if not 0 <= server_id < len(self.cluster):
            raise ValidationError(
                f"recovery names unknown server {server_id}")
        if server_id not in self._dead:
            raise ValidationError(
                f"server {server_id} is not failed")
        del self._dead[server_id]
        self.machines[server_id].recover()
        self._events.append({
            "kind": "recover", "server_id": server_id,
            "at": self.clock, "after": len(self._commit_log)})

    # -- consolidation -----------------------------------------------------

    def consolidate(self, time: int | None = None, *,
                    planner: MigrationPlanner | None = None,
                    moves: Sequence[PlannedMove | Mapping[str, object]]
                    | None = None) -> ConsolidationReport:
        """Run one live consolidation episode at tick ``time``.

        The clock advances to ``time`` (default: the current tick),
        then the shared
        :class:`~repro.consolidation.planner.MigrationPlanner` plans
        one episode against *full-history planning replicas* — one
        fresh book per live server rebuilt from the placement log, so
        the planner's tentative ``remove``/``place`` probing never
        touches (or corrupts) the compacted live books. Committed moves
        are then applied for real: each migrated VM's interrupted head
        stays on its source as legitimately-spent energy, the remainder
        is placed and live-scheduled on its target (waking it when
        needed), the per-move cost accrues in :attr:`migration_energy`,
        and sources drained of their last resident power down when the
        tick closes.

        The whole episode is recorded as **one** event in the snapshot
        stream; ``moves`` replays such a recorded episode verbatim
        (snapshot restore / journal replay) — the planner is never
        re-run, so a restored store is bit-identical to the original.
        Dead servers are neither drained nor targeted.
        """
        time = self.clock if time is None else int(time)
        if time < 1:
            raise ValidationError(
                f"consolidation time must be >= 1, got {time}")
        if time < self.clock:
            raise ValidationError(
                f"cannot consolidate in the past: tick {time} < "
                f"clock {self.clock}")
        at = self.clock
        self.advance_to(time)
        if moves is None:
            if planner is None:
                planner = MigrationPlanner()
            by_server: dict[int, list[VM]] = {}
            for vm, sid in self._placements:
                by_server.setdefault(sid, []).append(vm)
            replicas = []
            for server_id, state in enumerate(self.states):
                replica = ServerState(state.server, policy=self.policy,
                                      engine=self.engine_config)
                for vm in by_server.get(server_id, ()):
                    replica.place_trusted(vm)
                replicas.append(replica)
            plan = planner.plan_episode(replicas, time, self._next_vm_id,
                                        skip=frozenset(self._dead))
            planned = plan.moves
        else:
            planned = tuple(
                m if isinstance(m, PlannedMove)
                else PlannedMove.from_record(m) for m in moves)
        report = self._apply_migrations(planned, time)
        if planned:
            self._events.append({
                "kind": "consolidate", "time": time, "at": at,
                "after": len(self._commit_log),
                "moves": [move.to_record() for move in planned]})
        return report

    def _apply_migrations(self, moves: tuple[PlannedMove, ...],
                          time: int) -> ConsolidationReport:
        """Apply a planned (or replayed) episode to the live books.

        Three passes, because a server drained early in the episode may
        be the *target* of a later victim's remainder: first every
        moved VM leaves its source (live eviction + head left behind),
        then every touched source book is rebuilt from the placement
        log with the planner's shrinkage reflected, and only then are
        remainders placed — so each target's book already shows the
        episode's drains when its capacity is probed.
        """
        touched: list[int] = []
        # One order-preserving sweep instead of a per-move equality scan
        # of the placement log; heads are appended afterwards in move
        # order, exactly as per-move remove-then-append would leave it.
        doomed = {(move.vm.vm_id, move.source_id) for move in moves}
        kept = [entry for entry in self._placements
                if (entry[0].vm_id, entry[1]) not in doomed]
        if len(kept) != len(self._placements) - len(moves):
            placed = {(vm.vm_id, sid) for vm, sid in self._placements}
            for move in moves:
                if (move.vm.vm_id, move.source_id) not in placed:
                    raise ValidationError(
                        f"vm {move.vm.vm_id} is not placed on server "
                        f"{move.source_id}")
            raise ValidationError(
                "duplicate placement entries for a consolidation move")
        self._placements[:] = kept
        # Batch the live evictions: one pass over the piece table
        # instead of a scan per move (the per-move order of machine
        # eviction and the final schedule state are unchanged).
        moved_ids = {move.vm.vm_id for move in moves}
        pieces_of: dict[int, list[int]] = {}
        for piece_id, owner in self._piece_vm.items():
            if owner in moved_ids:
                pieces_of.setdefault(owner, []).append(piece_id)
        for move in moves:
            machine = self.machines[move.source_id]
            for piece_id in pieces_of.get(move.vm.vm_id, ()):
                if piece_id in machine.resident_vms:
                    cpu, memory = self._piece_demand[piece_id]
                    machine.end_vm(piece_id, cpu, memory)
        if moved_ids:
            self._purge_pieces(moved_ids)
        for move in moves:
            # The head ran on the source and its energy is spent and
            # useful; it stays on the source's books.
            self._placements.append((move.head, move.source_id))
            self._vm_ids.add(move.head.vm_id)
            self._next_vm_id = max(self._next_vm_id,
                                   move.head.vm_id + 1,
                                   move.remainder.vm_id + 1)
            self.migration_energy += move.cost
            if move.source_id not in touched:
                touched.append(move.source_id)
        by_server: dict[int, list[VM]] = {}
        if touched:
            for vm, sid in self._placements:
                by_server.setdefault(sid, []).append(vm)
        for server_id in touched:
            # Same rebuild as the failure path: a fresh full-history
            # book, so retired VMs' energy anchors survive the drain.
            old = self.states[server_id]
            fresh = ServerState(old.server, policy=self.policy,
                                engine=self.engine_config)
            mine = by_server.get(server_id, [])
            for vm in mine:
                fresh.place_trusted(vm)
            for vm in mine:
                if vm.vm_id not in self._open_pieces:
                    fresh.retire(vm, before=self.clock)
            self.states[server_id] = fresh
            self.energy_accumulated += fresh.cost - old.cost
        for move in moves:
            delta = self.states[move.target_id].place(move.remainder)
            self.energy_accumulated += delta
            self._placements.append((move.remainder, move.target_id))
            self._vm_ids.add(move.remainder.vm_id)
            self._schedule_live(move.remainder, move.target_id)
        occupied = {entry[1] for entry in self._open_pieces.values()}
        freed = sum(1 for server_id in touched
                    if server_id not in occupied)
        return ConsolidationReport(time=time, moves=moves,
                                   servers_freed=freed)

    def _apply_replacement(self, vm: VM, head: VM | None, remainder: VM,
                           victim_id: int, target_id: int | None
                           ) -> Replacement:
        """Book one affected VM's head/remainder after its old entry has
        been removed from the placement list."""
        delta = 0.0
        if head is not None:
            # The head ran on the victim and its energy is spent but
            # useless; it stays on the dead server's books as waste
            # (accounted in the victim rebuild, not here).
            self._placements.append((head, victim_id))
            self._vm_ids.add(head.vm_id)
        if target_id is not None:
            delta = self.states[target_id].place(remainder)
            self.energy_accumulated += delta
            self._placements.append((remainder, target_id))
            self._vm_ids.add(remainder.vm_id)
            self._schedule_live(remainder, target_id)
        return Replacement(vm=vm, head=head, remainder=remainder,
                           server_id=target_id, energy_delta=delta)

    def _unplace(self, vm: VM, server_id: int) -> None:
        try:
            self._placements.remove((vm, server_id))
        except ValueError:
            raise ValidationError(
                f"vm {vm.vm_id} is not placed on server {server_id}"
            ) from None

    def _purge_pieces(self, vm_ids: set[int]) -> None:
        """Drop every live-schedule trace of the given VMs (their
        machine residency was already cleared by the failure)."""
        doomed = {piece_id for piece_id, vm_id in self._piece_vm.items()
                  if vm_id in vm_ids}
        for piece_id in doomed:
            del self._piece_demand[piece_id]
            del self._piece_vm[piece_id]
        if doomed:
            for schedule in (self._starts, self._ends):
                for tick in list(schedule):
                    kept = [entry for entry in schedule[tick]
                            if entry[0] not in doomed]
                    if kept:
                        schedule[tick] = kept
                    else:
                        del schedule[tick]
        for vm_id in vm_ids:
            self._open_pieces.pop(vm_id, None)

    def _apply_event(self, event: Mapping[str, object]) -> None:
        """Replay one recorded failure/recovery/consolidation event
        (snapshot restore)."""
        try:
            kind = event["kind"]
            at = int(event["at"])
        except (TypeError, KeyError, ValueError) as exc:
            raise ValidationError(
                f"malformed snapshot event: {exc}") from exc
        if at > self.clock:
            self.advance_to(at)
        if kind == "consolidate":
            self.consolidate(
                int(event["time"]),
                moves=[PlannedMove.from_record(record)
                       for record in event.get("moves", ())])
            return
        try:
            server_id = int(event["server_id"])
        except (TypeError, KeyError, ValueError) as exc:
            raise ValidationError(
                f"malformed snapshot event: {exc}") from exc
        if kind == "fail":
            self.fail_server(
                server_id, int(event["time"]),
                replacements=[Replacement.from_record(record)
                              for record in event.get("replacements", ())])
        elif kind == "recover":
            self.recover_server(server_id)
        else:
            raise ValidationError(
                f"unknown snapshot event kind {kind!r}")

    # -- views -------------------------------------------------------------

    @property
    def placements(self) -> tuple[tuple[VM, int], ...]:
        """Every committed (vm, server_id) pair in commit order."""
        return tuple(self._placements)

    def is_placed(self, vm_id: int) -> bool:
        """Whether a VM with this id has already been committed (the
        service's batch pre-validation uses this to reject duplicate
        ids before mutating anything)."""
        return vm_id in self._vm_ids

    def allocation(self) -> Allocation:
        """The committed placements as an :class:`Allocation`."""
        return Allocation(self.cluster,
                          {vm: sid for vm, sid in self._placements})

    def energy_total(self) -> float:
        """From-scratch analytic Eq.-17 energy of the committed plan."""
        return allocation_cost(self.allocation(), policy=self.policy).total

    def fleet_power(self) -> float:
        """Instantaneous fleet power draw (Eq. 1) on the current tick."""
        return sum(m.power_draw() for m in self.machines.values())

    def servers_active(self) -> int:
        return sum(1 for m in self.machines.values()
                   if m.state is PowerState.ACTIVE)

    def servers_asleep(self) -> int:
        return sum(1 for m in self.machines.values()
                   if m.state is PowerState.POWER_SAVING)

    def servers_failed(self) -> int:
        return len(self._dead)

    def is_failed(self, server_id: int) -> bool:
        return server_id in self._dead

    def dead_servers(self) -> dict[int, int]:
        """``server_id -> failure tick`` of the currently-failed servers."""
        return dict(self._dead)

    def live_states(self) -> list[ServerState]:
        """Planning states of the non-failed servers, ascending id —
        the fleet allocators are allowed to scan. Note the list
        positions are *not* server ids once a server is dead."""
        return [state for sid, state in enumerate(self.states)
                if sid not in self._dead]

    def running_vms(self) -> int:
        return sum(len(m.resident_vms) for m in self.machines.values())

    def telemetry(self) -> Telemetry:
        """The closed-tick series as an immutable Telemetry."""
        return Telemetry(power=np.array(self._power, dtype=float),
                         active_servers=np.array(self._active, dtype=int),
                         running_vms=np.array(self._running, dtype=int))

    # -- snapshots ---------------------------------------------------------

    def to_snapshot(self, meta: Mapping[str, object] | None = None
                    ) -> dict[str, object]:
        """A JSON-safe document from which :meth:`from_snapshot` rebuilds
        an identical store. ``meta`` rides along uninterpreted (the
        daemon stores its counters and journal sequence there).

        Failure/recovery events make the document format version 2
        (commit stream + interleaved event stream) and consolidation
        episodes make it version 3; a store that never saw either keeps
        writing version 1, byte-compatible with older builds.
        """
        if any(event.get("kind") == "consolidate"
               for event in self._events):
            version = 3
        elif self._events:
            version = 2
        else:
            version = 1
        document: dict[str, object] = {
            "format_version": version,
            "policy": self.policy.value,
            "engine": self.engine_config.spec,
            "clock": self.clock,
            "cluster": [_spec_record(server.spec)
                        for server in self.cluster],
            "placements": [{"server_id": server_id,
                            "committed_at": committed_at,
                            "vm": vm_to_record(vm)}
                           for vm, server_id, committed_at
                           in self._commit_log],
            "meta": dict(meta) if meta else {},
        }
        if self._events:
            document["events"] = [dict(event) for event in self._events]
        return document

    @classmethod
    def from_snapshot(cls, document: Mapping[str, object]
                      ) -> "ClusterStateStore":
        """Rebuild a store from a :meth:`to_snapshot` document.

        Placements are re-committed in their original order, each at
        its recorded ``committed_at`` clock, with failure/recovery
        events interleaved at their recorded positions (each event's
        ``after`` counts the commits preceding it) and applied with
        their *recorded* re-placements — the allocator is never re-run
        — so the live sequence of commits, clock advances and failures,
        and with it planning state, power states, transition counters
        and telemetry, is reproduced exactly.
        """
        version = document.get("format_version")
        if version not in _SUPPORTED_SNAPSHOT_VERSIONS:
            raise ValidationError(
                f"unsupported snapshot format version {version!r}")
        try:
            specs = [ServerSpec(**record) for record in document["cluster"]]
            policy = SleepPolicy(document["policy"])
            # Pre-engine snapshots carry no field: they were produced by
            # the dense-only build, but replay is engine-agnostic, so the
            # default (indexed) engine restores them bit-exactly too.
            engine = EngineConfig.parse(
                str(document.get("engine", DEFAULT_ENGINE)))
            clock = int(document["clock"])
            entries = list(document["placements"])
            events = list(document.get("events", ()))
        except (TypeError, KeyError, ValueError) as exc:
            raise ValidationError(f"malformed snapshot: {exc}") from exc
        store = cls(Cluster.from_specs(specs), policy=policy, engine=engine)
        next_event = 0
        for i, entry in enumerate(entries):
            while next_event < len(events) and \
                    int(events[next_event].get("after", 0)) <= i:
                store._apply_event(events[next_event])
                next_event += 1
            try:
                vm = vm_from_record(entry["vm"])
                server_id = int(entry["server_id"])
                committed_at = int(entry["committed_at"])
            except (TypeError, KeyError, ValueError) as exc:
                raise ValidationError(
                    f"malformed snapshot placement #{i}: {exc}") from exc
            if committed_at > store.clock:
                store.advance_to(committed_at)
            store.commit(vm, server_id)
        while next_event < len(events):
            store._apply_event(events[next_event])
            next_event += 1
        store.advance_to(clock)
        return store

    def save(self, path: str | Path,
             meta: Mapping[str, object] | None = None) -> None:
        """Atomically write the snapshot document to ``path``."""
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_snapshot(meta)))
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | Path) -> "ClusterStateStore":
        """Load a snapshot written by :meth:`save`."""
        path = Path(path)
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"{path}: not a valid snapshot: {exc}") from exc
        return cls.from_snapshot(document)

    def __repr__(self) -> str:
        return (f"ClusterStateStore(n_servers={len(self.cluster)}, "
                f"clock={self.clock}, placements={len(self._placements)}, "
                f"active={self.servers_active()})")


def snapshot_meta(document: Mapping[str, object]) -> dict[str, object]:
    """The ``meta`` payload of a snapshot document (empty when absent)."""
    meta = document.get("meta")
    return dict(meta) if isinstance(meta, Mapping) else {}
