"""The async daemon server: one port, every protocol generation.

:class:`AsyncDaemonServer` runs an :mod:`asyncio` event loop on a
background thread and serves persistent connections for all three
wire dialects at once:

* **v1/v2 JSON-lines** — newline-terminated JSON, byte-compatible
  with :func:`~repro.service.daemon.serve_tcp`.
* **v3 binary framing** — length-prefixed frames
  (:mod:`repro.service.framing`).

Each connection is *sniffed* on its first byte: ``0xF3`` (the frame
magic, impossible as the first byte of a JSON-lines request) selects
the framed loop, anything else replays the byte into the line loop.
A connected client keeps its dialect for the connection's lifetime.

The event loop only shuttles bytes; request execution runs on a
bounded thread pool (``handler_threads``) through the daemon's own
``handle_line`` — the commit lock, the bounded ingest window and the
read-op fast path all apply exactly as on the blocking transports, so
a mixed fleet of v1 sockets, v3 frames and gateway HTTP clients
observes one consistent daemon.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.exceptions import ServiceError
from repro.service.daemon import AllocationDaemon
from repro.service.framing import (
    FRAME_MAGIC,
    HEADER_SIZE,
    MAX_FRAME,
    decode_header,
    encode_frame,
)

__all__ = ["AsyncDaemonServer", "serve_async"]


class AsyncDaemonServer:
    """Serve ``daemon`` over TCP with per-connection protocol sniffing.

    Parameters
    ----------
    daemon:
        The shared :class:`AllocationDaemon`.
    host / port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    handler_threads:
        Width of the request-execution pool. Connections beyond this
        still connect and queue; the daemon's ``max_inflight`` bound
        governs shedding.
    """

    def __init__(self, daemon: AllocationDaemon,
                 host: str = "127.0.0.1", port: int = 0, *,
                 handler_threads: int = 16) -> None:
        self.daemon = daemon
        self._host = host
        self._port = port
        self.address: tuple[str, int] | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=handler_threads,
            thread_name_prefix="repro-aio-handler")
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._bind_error: BaseException | None = None
        self._stopped = False
        #: Connections currently executing a request (loop-thread only).
        self._busy = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AsyncDaemonServer":
        """Bind and start serving on the background loop thread."""
        if self._thread is not None:
            raise ServiceError("server already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-aio")
        self._thread.start()
        self._started.wait()
        if self._bind_error is not None:
            raise self._bind_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._on_connection, self._host, self._port,
                limit=MAX_FRAME)
        except OSError as exc:
            self._bind_error = exc
            self._started.set()
            return
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._stop_event.wait()
        # A shutdown op fires request_stop from *inside* handle (the
        # daemon's on_shutdown hook), while its response is still being
        # computed. Grace-wait for in-flight handlers to finish writing
        # before returning — asyncio.run() cancels whatever tasks
        # remain, which must only ever be idle readers.
        deadline = self._loop.time() + 10.0
        while self._busy and self._loop.time() < deadline:
            await asyncio.sleep(0.01)

    def request_stop(self) -> None:
        """Ask the loop to stop accepting and unwind (non-blocking)."""
        loop = self._loop
        if loop is not None and not loop.is_closed() \
                and self._stop_event is not None:
            loop.call_soon_threadsafe(self._stop_event.set)

    def stop(self, *, timeout: float = 10.0) -> None:
        """Stop the server and join the loop thread (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout)
        self._executor.shutdown(wait=False, cancel_futures=True)

    def join(self, timeout: float | None = None) -> None:
        """Block until the server stops (the CLI's serve loop)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "AsyncDaemonServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- connection handling -----------------------------------------------

    async def _handle(self, line: str) -> str:
        """One request on the handler pool; the loop never blocks."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, self.daemon.handle_line, line)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.read(1)
            if not first:
                return
            if first[0] == FRAME_MAGIC:
                await self._serve_frames(reader, writer, first)
            else:
                await self._serve_lines(reader, writer, first)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        except asyncio.CancelledError:
            pass  # loop teardown cancelled an idle connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError,  # pragma: no cover - racy close
                    asyncio.CancelledError):
                pass

    async def _after_response(self, writer: asyncio.StreamWriter) -> bool:
        """Drain; returns True when the connection should end (the
        daemon was shut down by the request just answered)."""
        await writer.drain()
        if self.daemon.closed:
            # Flush and close *this* connection before unwinding the
            # loop, so the shutdown caller reads its response instead
            # of racing the teardown.
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - racy close
                pass
            self.request_stop()
            return True
        return False

    async def _serve_frames(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            first: bytes) -> None:
        """The v3 framed loop. ``first`` is the already-sniffed magic."""
        while True:
            header = first + await reader.readexactly(
                HEADER_SIZE - len(first))
            length = decode_header(header)
            payload = await reader.readexactly(length)
            line = payload.decode("utf-8", errors="replace")
            self._busy += 1
            try:
                response = await self._handle(line)
                writer.write(encode_frame(
                    response.rstrip("\n").encode("utf-8")))
                ended = await self._after_response(writer)
            finally:
                self._busy -= 1
            if ended:
                return
            first = await reader.read(1)
            if not first:
                return

    async def _serve_lines(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           first: bytes) -> None:
        """The v1/v2 JSON-lines loop. ``first`` is the sniffed byte."""
        pending = first
        while True:
            try:
                raw = pending + await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as exc:
                raw = pending + exc.partial
                if not raw.strip():
                    return
                # Final unterminated line: serve it, then close.
                self._busy += 1
                try:
                    response = await self._handle(
                        raw.decode("utf-8", errors="replace"))
                    writer.write(response.encode("utf-8"))
                    await self._after_response(writer)
                finally:
                    self._busy -= 1
                return
            pending = b""
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            self._busy += 1
            try:
                response = await self._handle(line)
                writer.write(response.encode("utf-8"))
                ended = await self._after_response(writer)
            finally:
                self._busy -= 1
            if ended:
                return


def serve_async(daemon: AllocationDaemon, host: str = "127.0.0.1",
                port: int = 0, *,
                handler_threads: int = 16) -> AsyncDaemonServer:
    """Start an :class:`AsyncDaemonServer` for ``daemon``.

    The server is already accepting when this returns (``port=0``
    binds an ephemeral port — read :attr:`AsyncDaemonServer.address`),
    and a daemon shutdown served over *any* transport stops it.
    """
    server = AsyncDaemonServer(daemon, host, port,
                               handler_threads=handler_threads)
    server.start()
    daemon.on_shutdown(server.request_stop)
    return server
