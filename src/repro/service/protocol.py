"""The JSON-lines wire protocol of the allocation service.

Every message is one JSON object per line, UTF-8, newline-terminated —
the same framing over stdin/stdout and TCP. Requests carry an ``op``
field; responses always carry ``ok`` (and ``error`` when ``ok`` is
false). The VM payload of a ``place`` request uses the canonical trace
record shape (:func:`repro.workload.trace.vm_to_record`), so a saved
trace streams to a daemon without translation.

Versioning
----------
A request may carry ``"v"``; absent means version 1, so every v1 client
keeps working byte-for-byte. The daemon speaks
:data:`SUPPORTED_VERSIONS` and echoes ``"v"`` back on every response to
a versioned request. A version outside that tuple (or a non-integer
``v``) is answered with a structured error::

    {"ok": false, "error": "...", "supported_versions": [1, 2, 3]}

so clients can renegotiate instead of guessing. Version 2 adds the
``place_batch``, ``fail_server`` and ``recover_server`` operations;
everything in version 1 is unchanged. An unknown ``op`` is answered
the same way — ``{"ok": false, "error": "...", "supported_ops":
[...]}`` — so a client talking to an older daemon can discover what it
actually speaks.

Version 3 changes no operation vocabulary; it changes the *failure
shape* and the *transport*:

* every failure response to a v3 request carries the typed error
  envelope ``{"ok": false, "error": {code, message, retryable[,
  retry_after]}}`` (see :mod:`repro.service.errors`); v1/v2 requests
  keep the historical bare-string ``error`` byte-for-byte;
* v3 connections may speak the length-prefixed binary framing of
  :mod:`repro.service.framing` — the async server sniffs the first
  byte of each connection, so framed and line clients share one port;
* the HTTP/REST gateway (:mod:`repro.service.gateway`) translates
  ``POST /v1/place`` &c. onto these same operations at version 3.

Operations
----------
``place``
    ``{"op": "place", "vm": {vm_id, type, cpu, memory, start, end[,
    phases][, cpu_radius, mem_radius]}}`` — route one request through
    the allocator. The optional ``cpu_radius``/``mem_radius`` fields
    (uncertain demand, for Γ-robust placement) require ``"v": 3``; a
    v1/v2 request carrying them is rejected with ``bad_request``
    rather than silently treated as exact. The response
    reports ``decision`` (``"placed"`` or ``"rejected"``), the chosen
    ``server_id``, any admission ``delay``, the analytic
    ``energy_delta`` (Eq. 17) and the service-side ``latency_ms``.
    With the opt-in ``"explain": true`` field the response additionally
    carries ``explanation`` — the serialized
    :class:`~repro.obs.explain.PlacementExplanation` listing every
    candidate server with its feasibility verdict and cost terms.
``place_batch`` (v2)
    ``{"op": "place_batch", "v": 2, "vms": [record, ...]}`` — place a
    whole batch in one round trip. Records with demand radii require
    ``"v": 3``, as for ``place``. The response carries ``decisions``
    (one object per VM, *in request order*, each with ``vm_id``,
    ``decision``, and for placements ``server_id``/``delay``/
    ``energy_delta``), the aggregate ``energy_delta``, and ``placed``/
    ``count`` totals. The daemon journals the batch as one group, so a
    restore replays it atomically and bit-exact.
``tick``
    ``{"op": "tick", "now": T}`` — advance the cluster clock to ``T``,
    retiring expired VMs and powering down idle servers.
``fail_server`` (v2)
    ``{"op": "fail_server", "v": 2, "server_id": S[, "time": T]}`` —
    the server crashed at tick ``T`` (default: the daemon's clock).
    Affected VMs are split at the failure tick and their remainders
    re-placed through the active allocator; the response carries the
    resolved ``time``, ``killed``/``replaced``/``lost`` counts, the
    fleet-wide ``energy_delta`` and one record per re-placement (with
    its own Eq.-17 delta, including any forced wake on the target).
    The whole episode is journaled as one atomic group.
``recover_server`` (v2)
    ``{"op": "recover_server", "v": 2, "server_id": S}`` — the server
    is back; it returns to power-saving and becomes placeable again
    (its next wake pays the transition cost ``alpha``).
``consolidate`` (v2)
    ``{"op": "consolidate", "v": 2[, "time": T]}`` — run one live
    consolidation episode at tick ``T`` (default: the daemon's clock):
    rank drainable servers, split each spanning resident at ``T`` and
    migrate its remainder wherever the Eq.-17 saving beats the per-move
    migration cost. The response carries ``migrations``,
    ``servers_freed``, ``energy_saved``, ``migration_energy`` and one
    record per move. The whole episode is journaled as one atomic
    group (the same guarantee as ``fail_server``).
``stats``
    Counters, clock and energy accounting as JSON.
``metrics``
    The Prometheus text exposition as a ``text`` field (also served
    over HTTP, see :func:`repro.service.daemon.start_metrics_server`).
``telemetry`` (v2)
    ``{"op": "telemetry", "v": 2[, "last": N]}`` — the daemon's
    per-tick fleet telemetry ring (see
    :class:`repro.obs.telemetry.TelemetryRing`): the newest ``N``
    samples (all of them when ``last`` is absent) as a ``samples``
    array, plus the current SLO ``slo`` report. Read-only; this is
    what ``repro top`` and ``repro slo`` poll.
``dump_debug`` (v2)
    ``{"op": "dump_debug", "v": 2}`` — the daemon's flight recorder
    (the last N request/response tuples) as a ``records`` array, for
    live debugging. Read-only; the same ring is dumped to a file
    automatically on an unhandled daemon error.
``snapshot``
    Force a checkpoint now; responds with the snapshot path.
``ping`` / ``shutdown``
    Liveness probe / orderly stop (final snapshot, journal close).

Trace context
-------------
Any request may carry ``trace_id`` and ``request_id`` strings (the
protocol-v2 envelope; :class:`~repro.obs.context.TraceContext`).
:class:`~repro.service.client.AllocationClient` stamps both on every
request — retries resend the *same* ids — and the daemon echoes them
on the response, stamps them on the request's span tree, its journal
(group) entry and its structured log line. Requests without ids are
correlated daemon-side (ids are minted, attached to spans/journal/
logs) but the response stays byte-compatible for id-less v1 clients.

Backpressure: when the daemon's bounded ingest queue is full, mutating
operations are answered with ``{"ok": false, "error": "overloaded",
"retry_after": seconds}`` instead of queueing without bound; clients
should wait ``retry_after`` and resend.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.exceptions import (
    ProtocolVersionError,
    ServiceError,
    UnknownOperationError,
)
from repro.model.vm import VM
from repro.workload.trace import vm_from_record, vm_to_record

__all__ = ["PROTOCOL_VERSION", "SUPPORTED_VERSIONS", "OPS",
           "negotiate_version", "parse_request", "parse_response",
           "encode", "place_request", "place_batch_request",
           "fail_server_request", "recover_server_request",
           "consolidate_request", "telemetry_request",
           "dump_debug_request", "vm_to_record", "vm_from_record"]

#: The newest protocol version this build speaks.
PROTOCOL_VERSION = 3

#: Every version the daemon accepts; requests without ``"v"`` are v1.
SUPPORTED_VERSIONS = (1, 2, 3)

#: Every operation the daemon understands (``place_batch``,
#: ``fail_server``, ``recover_server``, ``consolidate``, ``telemetry``
#: and ``dump_debug`` need v2).
OPS = ("place", "place_batch", "tick", "fail_server", "recover_server",
       "consolidate", "stats", "metrics", "telemetry", "dump_debug",
       "snapshot", "ping", "shutdown")


def encode(message: Mapping[str, object]) -> str:
    """One protocol line: compact JSON plus the terminating newline."""
    return json.dumps(message, separators=(",", ":")) + "\n"


def place_request(vm: VM, *, explain: bool = False) -> dict[str, object]:
    """The ``place`` request for one VM (optionally explain-enabled).

    Exact-demand VMs keep the original (version-less, v1) shape so the
    wire bytes are unchanged; a VM with demand radii stamps ``"v": 3``
    because the radius fields are a protocol-3 extension.
    """
    record = vm_to_record(vm)
    request: dict[str, object] = {"op": "place", "vm": record}
    if "cpu_radius" in record or "mem_radius" in record:
        request["v"] = PROTOCOL_VERSION
    if explain:
        request["explain"] = True
    return request


def place_batch_request(vms: Iterable[VM]) -> dict[str, object]:
    """The v2 ``place_batch`` request for a whole batch of VMs."""
    return {"op": "place_batch", "v": PROTOCOL_VERSION,
            "vms": [vm_to_record(vm) for vm in vms]}


def fail_server_request(server_id: int,
                        time: int | None = None) -> dict[str, object]:
    """The v2 ``fail_server`` request (``time`` defaults to the
    daemon's current tick)."""
    request: dict[str, object] = {"op": "fail_server",
                                  "v": PROTOCOL_VERSION,
                                  "server_id": server_id}
    if time is not None:
        request["time"] = time
    return request


def recover_server_request(server_id: int) -> dict[str, object]:
    """The v2 ``recover_server`` request."""
    return {"op": "recover_server", "v": PROTOCOL_VERSION,
            "server_id": server_id}


def consolidate_request(time: int | None = None) -> dict[str, object]:
    """The v2 ``consolidate`` request (``time`` defaults to the
    daemon's current tick)."""
    request: dict[str, object] = {"op": "consolidate",
                                  "v": PROTOCOL_VERSION}
    if time is not None:
        request["time"] = time
    return request


def telemetry_request(last: int | None = None) -> dict[str, object]:
    """The v2 ``telemetry`` request (``last`` limits the sample count)."""
    request: dict[str, object] = {"op": "telemetry",
                                  "v": PROTOCOL_VERSION}
    if last is not None:
        request["last"] = last
    return request


def dump_debug_request() -> dict[str, object]:
    """The v2 ``dump_debug`` request (flight-recorder dump)."""
    return {"op": "dump_debug", "v": PROTOCOL_VERSION}


def negotiate_version(message: Mapping[str, object]) -> int:
    """The effective protocol version of one request.

    A missing ``"v"`` means version 1 (pre-versioning clients).

    Raises
    ------
    ProtocolVersionError
        When ``v`` is not an integer in :data:`SUPPORTED_VERSIONS`; the
        exception carries the supported tuple for the structured error
        response.
    """
    version = message.get("v", 1)
    if isinstance(version, bool) or not isinstance(version, int) \
            or version not in SUPPORTED_VERSIONS:
        raise ProtocolVersionError(
            f"unsupported protocol version {version!r}; this daemon "
            f"speaks versions {list(SUPPORTED_VERSIONS)}",
            version=version, supported=SUPPORTED_VERSIONS)
    return version


def parse_request(line: str) -> dict[str, object]:
    """Decode and validate one request line.

    Raises :class:`ServiceError` on malformed JSON, a non-object
    payload, an unknown ``op``, or (as the
    :class:`~repro.exceptions.ProtocolVersionError` subclass) an
    unsupported protocol version.
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed request line: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceError(
            f"request must be a JSON object, got {type(message).__name__}")
    version = negotiate_version(message)
    op = message.get("op")
    if op not in OPS:
        raise UnknownOperationError(
            f"unknown op {op!r}; this daemon supports: {list(OPS)}",
            op=op, supported=OPS)
    if op == "place":
        record = message.get("vm")
        if not isinstance(record, dict):
            raise ServiceError("place request needs a 'vm' record object")
        _check_radius_fields(record, version, "vm")
        try:
            message["_vm"] = vm_from_record(record)
        except (TypeError, KeyError, ValueError) as exc:
            raise ServiceError(f"malformed vm record: {exc}") from exc
        if not isinstance(message.get("explain", False), bool):
            raise ServiceError(
                f"place request field 'explain' must be a boolean, "
                f"got {message.get('explain')!r}")
    elif op == "place_batch":
        if version < 2:
            raise ServiceError(
                'place_batch requires protocol version 2; send "v": 2')
        message["_vms"] = parse_batch_records(message.get("vms"),
                                              version=version)
    elif op == "tick":
        now = message.get("now")
        if isinstance(now, bool) or not isinstance(now, int) or now < 0:
            raise ServiceError(
                f"tick request needs a non-negative integer 'now', "
                f"got {message.get('now')!r}")
    elif op in ("fail_server", "recover_server"):
        if version < 2:
            raise ServiceError(
                f'{op} requires protocol version 2; send "v": 2')
        server_id = message.get("server_id")
        if isinstance(server_id, bool) or not isinstance(server_id, int) \
                or server_id < 0:
            raise ServiceError(
                f"{op} request needs a non-negative integer 'server_id', "
                f"got {server_id!r}")
        if op == "fail_server" and "time" in message:
            time = message.get("time")
            if isinstance(time, bool) or not isinstance(time, int) \
                    or time < 1:
                raise ServiceError(
                    f"fail_server field 'time' must be a positive "
                    f"integer, got {time!r}")
    elif op == "consolidate":
        if version < 2:
            raise ServiceError(
                'consolidate requires protocol version 2; send "v": 2')
        if "time" in message:
            time = message.get("time")
            if isinstance(time, bool) or not isinstance(time, int) \
                    or time < 1:
                raise ServiceError(
                    f"consolidate field 'time' must be a positive "
                    f"integer, got {time!r}")
    elif op in ("telemetry", "dump_debug"):
        if version < 2:
            raise ServiceError(
                f'{op} requires protocol version 2; send "v": 2')
        if op == "telemetry" and "last" in message:
            last = message.get("last")
            if isinstance(last, bool) or not isinstance(last, int) \
                    or last < 1:
                raise ServiceError(
                    f"telemetry field 'last' must be a positive "
                    f"integer, got {last!r}")
    return message


def parse_batch_records(records: object, *,
                        version: int = PROTOCOL_VERSION) -> list[VM]:
    """Validate and decode the ``vms`` array of a ``place_batch``."""
    if not isinstance(records, list):
        raise ServiceError(
            f"place_batch request needs a 'vms' array, got "
            f"{type(records).__name__}")
    vms: list[VM] = []
    for position, record in enumerate(records):
        if not isinstance(record, dict):
            raise ServiceError(
                f"place_batch vms[{position}] must be a VM record object")
        _check_radius_fields(record, version, f"vms[{position}]")
        try:
            vms.append(vm_from_record(record))
        except (TypeError, KeyError, ValueError) as exc:
            raise ServiceError(
                f"malformed vm record at vms[{position}]: {exc}") from exc
    return vms


def _check_radius_fields(record: Mapping[str, object], version: int,
                         where: str) -> None:
    """Reject demand-radius fields on pre-v3 requests.

    The radii are a protocol-3 extension; a v1/v2 client sending them
    is answered with the typed ``bad_request`` envelope (projected to
    the legacy bare-string ``error`` for those versions by
    :func:`repro.service.errors.attach_error`) instead of silently
    dropping the uncertainty the client asked for.
    """
    if version >= 3:
        return
    present = [key for key in ("cpu_radius", "mem_radius")
               if key in record]
    if present:
        raise ServiceError(
            f"{where} record fields {present} (uncertain demand) require "
            f'protocol version 3; send "v": 3')


def parse_response(line: str) -> dict[str, object]:
    """Decode one response line (client side)."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed response line: {exc}") from exc
    if not isinstance(message, dict) or "ok" not in message:
        raise ServiceError(f"malformed response: {line!r}")
    return message
