"""The JSON-lines wire protocol of the allocation service.

Every message is one JSON object per line, UTF-8, newline-terminated —
the same framing over stdin/stdout and TCP. Requests carry an ``op``
field; responses always carry ``ok`` (and ``error`` when ``ok`` is
false). The VM payload of a ``place`` request uses the canonical trace
record shape (:func:`repro.workload.trace.vm_to_record`), so a saved
trace streams to a daemon without translation.

Operations
----------
``place``
    ``{"op": "place", "vm": {vm_id, type, cpu, memory, start, end[,
    phases]}}`` — route one request through the allocator. The response
    reports ``decision`` (``"placed"`` or ``"rejected"``), the chosen
    ``server_id``, any admission ``delay``, the analytic
    ``energy_delta`` (Eq. 17) and the service-side ``latency_ms``.
    With the opt-in ``"explain": true`` field the response additionally
    carries ``explanation`` — the serialized
    :class:`~repro.obs.explain.PlacementExplanation` listing every
    candidate server with its feasibility verdict and cost terms.
``tick``
    ``{"op": "tick", "now": T}`` — advance the cluster clock to ``T``,
    retiring expired VMs and powering down idle servers.
``stats``
    Counters, clock and energy accounting as JSON.
``metrics``
    The Prometheus text exposition as a ``text`` field (also served
    over HTTP, see :func:`repro.service.daemon.start_metrics_server`).
``snapshot``
    Force a checkpoint now; responds with the snapshot path.
``ping`` / ``shutdown``
    Liveness probe / orderly stop (final snapshot, journal close).
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.exceptions import ServiceError
from repro.model.vm import VM
from repro.workload.trace import vm_from_record, vm_to_record

__all__ = ["PROTOCOL_VERSION", "OPS", "parse_request", "parse_response",
           "encode", "place_request", "vm_to_record", "vm_from_record"]

#: Bumped on incompatible wire changes; daemons reject newer requests.
PROTOCOL_VERSION = 1

#: Every operation the daemon understands.
OPS = ("place", "tick", "stats", "metrics", "snapshot", "ping", "shutdown")


def encode(message: Mapping[str, object]) -> str:
    """One protocol line: compact JSON plus the terminating newline."""
    return json.dumps(message, separators=(",", ":")) + "\n"


def place_request(vm: VM, *, explain: bool = False) -> dict[str, object]:
    """The ``place`` request for one VM (optionally explain-enabled)."""
    request: dict[str, object] = {"op": "place", "vm": vm_to_record(vm)}
    if explain:
        request["explain"] = True
    return request


def parse_request(line: str) -> dict[str, object]:
    """Decode and validate one request line.

    Raises :class:`ServiceError` on malformed JSON, a non-object
    payload, an unknown ``op``, or an unsupported protocol version.
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed request line: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceError(
            f"request must be a JSON object, got {type(message).__name__}")
    version = message.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ServiceError(
            f"unsupported protocol version {version!r} "
            f"(this daemon speaks {PROTOCOL_VERSION})")
    op = message.get("op")
    if op not in OPS:
        raise ServiceError(f"unknown op {op!r}; supported: {OPS}")
    if op == "place":
        record = message.get("vm")
        if not isinstance(record, dict):
            raise ServiceError("place request needs a 'vm' record object")
        try:
            message["_vm"] = vm_from_record(record)
        except (TypeError, KeyError, ValueError) as exc:
            raise ServiceError(f"malformed vm record: {exc}") from exc
        if not isinstance(message.get("explain", False), bool):
            raise ServiceError(
                f"place request field 'explain' must be a boolean, "
                f"got {message.get('explain')!r}")
    elif op == "tick":
        now = message.get("now")
        if isinstance(now, bool) or not isinstance(now, int) or now < 0:
            raise ServiceError(
                f"tick request needs a non-negative integer 'now', "
                f"got {message.get('now')!r}")
    return message


def parse_response(line: str) -> dict[str, object]:
    """Decode one response line (client side)."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed response line: {exc}") from exc
    if not isinstance(message, dict) or "ok" not in message:
        raise ServiceError(f"malformed response: {line!r}")
    return message
